"""ABL-FSD — flow size distribution: MRAC accuracy vs counter memory.

The intro's flow-size-distribution metric [29], measured: WMRD of the
MRAC EM estimate against the exact distribution over a counter-array
sweep, with the raw (collision-corrupted) counter histogram as the
no-inference baseline.  Expected shape: EM beats the raw histogram at
every load factor, and both converge as the array grows (load factor
-> 0 means no collisions to undo).
"""

from conftest import QUICK, RUNS, workload, write_result

import numpy as np

from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import generate_trace
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import wmrd
from repro.eval.runner import format_table, run_sweep
from repro.sketches.mrac import MRACSketch

COUNTERS = (1024, 4096, 16384) if QUICK else (1024, 2048, 4096, 8192, 16384)
MAX_SIZE = 40


def _trial_factory(spec):
    def trial(counters: float, seed: int):
        trace = generate_trace(spec.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)
        true_phi = truth.flow_size_distribution(MAX_SIZE)

        sketch = MRACSketch(counters=int(counters), seed=seed,
                            max_size=MAX_SIZE, em_iterations=15)
        sketch.update_array(keys)
        phi = sketch.estimate_distribution()
        raw = np.zeros(MAX_SIZE + 1)
        for value, count in sketch.observed_histogram().items():
            raw[min(value, MAX_SIZE)] += count

        return {
            "em_wmrd": wmrd(phi[1:], true_phi[1:]),
            "raw_wmrd": wmrd(raw[1:], true_phi[1:]),
            "load_factor": sketch.load_factor(),
            "memory_kb": sketch.memory_bytes() / 1024.0,
        }
    return trial


def test_ablation_flow_size_distribution(benchmark):
    runs = max(5, RUNS // 4)
    points = benchmark.pedantic(
        run_sweep, args=(COUNTERS, _trial_factory(workload())),
        kwargs=dict(runs=runs), rounds=1, iterations=1)
    table = format_table(
        points, ["em_wmrd", "raw_wmrd", "load_factor", "memory_kb"],
        x_label="counters",
        title=f"Ablation — flow size distribution via MRAC ({runs} runs)")
    write_result("ablation_fsd.txt", table, points,
                 ["em_wmrd", "raw_wmrd"], x_label="counters")

    for point in points:
        # EM must beat the raw histogram wherever collisions exist.
        if point.metrics["load_factor"].median > 0.2:
            assert point.metrics["em_wmrd"].median < \
                point.metrics["raw_wmrd"].median
    # And the EM error must shrink as memory grows.
    assert points[-1].metrics["em_wmrd"].median < \
        points[0].metrics["em_wmrd"].median
    assert points[-1].metrics["em_wmrd"].median < 0.25
