"""ABL-TOPK — G-sum accuracy vs per-level heap size k.

DESIGN.md design choice 2: Algorithm 2 only sums over the tracked
``Q_j`` sets, so k controls the truncation error of the recursion (and
the control-plane state).  Expected: error shrinks as k grows, with
diminishing returns once the deepest substreams fit entirely.
"""

from conftest import QUICK, RUNS, workload, write_result

from repro.eval.experiments import ablation_heap_size
from repro.eval.runner import format_table

HEAPS = (8, 16, 32, 64, 128) if not QUICK else (8, 32, 128)


def test_ablation_heap_size(benchmark):
    runs = max(5, RUNS // 2)
    points = benchmark.pedantic(
        ablation_heap_size,
        kwargs=dict(heap_sizes=HEAPS, runs=runs, workload=workload()),
        rounds=1, iterations=1)
    table = format_table(points, ["f0_err", "entropy_err", "memory_kb"],
                         x_label="heap_size",
                         title=f"Ablation — per-level top-k ({runs} runs)")
    write_result("ablation_topk.txt", table, points,
                 ["f0_err", "entropy_err"], x_label="heap_size",
                 log_x=False)

    small, large = points[0].metrics, points[-1].metrics
    assert large["f0_err"].median <= small["f0_err"].median + 0.05
    assert large["entropy_err"].median < 0.1
