"""FIG4 — Heavy hitters: FP/FN vs memory, UnivMon vs OpenSketch.

Regenerates Figure 4's series (alpha = 0.5% of traffic, src-IP key,
median ± std over independent runs) and checks the paper's shape: both
systems reach low error at the top of the memory sweep, with OpenSketch
never decisively better once past ~1 MB.
"""

from conftest import RUNS, memory_sweep, workload, write_result

from repro.eval.experiments import fig4_heavy_hitters
from repro.eval.runner import format_table

METRICS = ["univmon_fp", "univmon_fn", "opensketch_fp", "opensketch_fn"]


def test_fig4_heavy_hitters(benchmark):
    points = benchmark.pedantic(
        fig4_heavy_hitters,
        kwargs=dict(memory_kb=memory_sweep(), runs=RUNS,
                    workload=workload(), alpha=0.005),
        rounds=1, iterations=1)
    table = format_table(
        points, METRICS,
        title=f"Figure 4 — heavy hitters (alpha=0.5%, {RUNS} runs)")
    write_result("fig4_heavy_hitters.txt", table, points, METRICS)

    top = points[-1].metrics
    # Shape check 1: at the largest memory both systems are accurate.
    assert top["univmon_fn"].median <= 0.1
    assert top["univmon_fp"].median <= 0.1
    assert top["opensketch_fn"].median <= 0.1
    # Shape check 2: error is non-increasing-ish across the sweep
    # (compare first vs last point).
    first = points[0].metrics
    assert top["univmon_fp"].median <= first["univmon_fp"].median + 0.05
    assert top["univmon_fn"].median <= first["univmon_fn"].median + 0.05
