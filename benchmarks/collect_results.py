#!/usr/bin/env python3
"""Splice the latest benchmark tables into EXPERIMENTS.md.

After ``pytest benchmarks/ --benchmark-only`` has written its tables to
``benchmarks/results/``, run

    python benchmarks/collect_results.py

to replace each ``<!-- RESULT:name -->`` marker in EXPERIMENTS.md with a
fenced code block holding the corresponding table.  Markers survive the
splice (they are kept on the line above the block and any previously
spliced block is replaced), so the script is idempotent.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(__file__).resolve().parent / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

#: marker name -> results file
SOURCES = {
    "fig4": "fig4_heavy_hitters.txt",
    "fig5": "fig5_ddos.txt",
    "fig6": "fig6_change.txt",
    "fig7": "fig7_entropy.txt",
    "overhead": "overhead_cycles.txt",
    "ablation-levels": "ablation_levels.txt",
    "ablation-topk": "ablation_topk.txt",
    "ablation-sampling": "ablation_sampling.txt",
    "ablation-fsd": "ablation_fsd.txt",
}

_MARKER = re.compile(
    r"<!-- RESULT:(?P<name>[\w-]+) -->(?:\n```text\n.*?\n```)?",
    re.DOTALL)


def splice(text: str) -> str:
    def replace(match: re.Match) -> str:
        name = match.group("name")
        source = SOURCES.get(name)
        if source is None:
            return match.group(0)
        path = RESULTS / source
        if not path.exists():
            return (f"<!-- RESULT:{name} -->\n```text\n"
                    f"(run pytest benchmarks/ --benchmark-only to "
                    f"generate {source})\n```")
        table = path.read_text().rstrip("\n")
        return f"<!-- RESULT:{name} -->\n```text\n{table}\n```"

    return _MARKER.sub(replace, text)


def main() -> int:
    if not EXPERIMENTS.exists():
        print("EXPERIMENTS.md not found", file=sys.stderr)
        return 1
    original = EXPERIMENTS.read_text()
    updated = splice(original)
    EXPERIMENTS.write_text(updated)
    spliced = sum(1 for name, src in SOURCES.items()
                  if (RESULTS / src).exists())
    print(f"spliced {spliced}/{len(SOURCES)} result tables into "
          f"{EXPERIMENTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
