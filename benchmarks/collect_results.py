#!/usr/bin/env python3
"""Splice the latest benchmark tables into EXPERIMENTS.md.

After ``pytest benchmarks/ --benchmark-only`` has written its tables to
``benchmarks/results/``, run

    python benchmarks/collect_results.py

to replace each ``<!-- RESULT:name -->`` marker in EXPERIMENTS.md with a
fenced code block holding the corresponding table.  Markers survive the
splice (they are kept on the line above the block and any previously
spliced block is replaced), so the script is idempotent.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(__file__).resolve().parent / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

#: marker name -> results file (ASCII table, spliced as ```text)
SOURCES = {
    "fig4": "fig4_heavy_hitters.txt",
    "fig5": "fig5_ddos.txt",
    "fig6": "fig6_change.txt",
    "fig7": "fig7_entropy.txt",
    "overhead": "overhead_cycles.txt",
    "ablation-levels": "ablation_levels.txt",
    "ablation-topk": "ablation_topk.txt",
    "ablation-sampling": "ablation_sampling.txt",
    "ablation-fsd": "ablation_fsd.txt",
    "network-scale-figure": "network_scale.txt",
    "scenario-sweep": "scenarios.txt",
}

#: marker name -> speedup-floor artifact (JSON, spliced as ```json)
JSON_SOURCES = {
    "bench-throughput": "BENCH_throughput.json",
    "bench-query": "BENCH_query.json",
    "bench-network": "BENCH_network.json",
    "bench-scenarios": "BENCH_scenarios.json",
    "bench-detect": "BENCH_detect.json",
    "bench-service": "BENCH_service.json",
}

_MARKER = re.compile(
    r"<!-- RESULT:(?P<name>[\w-]+) -->(?:\n```(?:text|json)\n.*?\n```)?",
    re.DOTALL)


def splice(text: str) -> str:
    def replace(match: re.Match) -> str:
        name = match.group("name")
        if name in JSON_SOURCES:
            source, lang = JSON_SOURCES[name], "json"
            hint = "pytest benchmarks/ -k speedup"
        elif name in SOURCES:
            source, lang = SOURCES[name], "text"
            hint = "pytest benchmarks/ --benchmark-only"
        else:
            return match.group(0)
        path = RESULTS / source
        if not path.exists():
            return (f"<!-- RESULT:{name} -->\n```{lang}\n"
                    f"(run {hint} to generate {source})\n```")
        table = path.read_text().rstrip("\n")
        return f"<!-- RESULT:{name} -->\n```{lang}\n{table}\n```"

    return _MARKER.sub(replace, text)


def main() -> int:
    if not EXPERIMENTS.exists():
        print("EXPERIMENTS.md not found", file=sys.stderr)
        return 1
    original = EXPERIMENTS.read_text()
    updated = splice(original)
    EXPERIMENTS.write_text(updated)
    all_sources = {**SOURCES, **JSON_SOURCES}
    spliced = sum(1 for name, src in all_sources.items()
                  if (RESULTS / src).exists())
    print(f"spliced {spliced}/{len(all_sources)} result tables into "
          f"{EXPERIMENTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
