"""Benchmark configuration.

Every figure bench regenerates its table at paper-like settings (20 runs
per point, median ± std) and writes it to ``benchmarks/results/`` for
EXPERIMENTS.md.  Set ``REPRO_BENCH_RUNS`` / ``REPRO_BENCH_QUICK=1`` to
trade fidelity for speed during development.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Independent runs per sweep point (paper: 20).
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "20"))

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def workload():
    from repro.eval.experiments import DEFAULT_WORKLOAD, WorkloadSpec
    if QUICK:
        return WorkloadSpec(packets=6_000, flows=1_200)
    return DEFAULT_WORKLOAD


def memory_sweep():
    from repro.eval.experiments import DEFAULT_MEMORY_KB
    if QUICK:
        return (32, 128, 512)
    return DEFAULT_MEMORY_KB


def write_result(name: str, text: str, points=None, metrics=None,
                 x_label: str = "memory_kb", log_x: bool = True) -> None:
    """Persist a figure's table (plus an ASCII chart of the series when
    sweep points are provided) and echo it into the test log."""
    if points is not None and metrics is not None:
        from repro.eval.asciichart import chart_sweep
        try:
            text = text + "\n\n" + chart_sweep(
                points, metrics, x_label=x_label, log_x=log_x)
        except Exception:
            pass  # charts are decoration; never fail the bench for one
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_trace():
    """A shared 30k-packet trace for the update-path throughput benches."""
    from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
    return generate_trace(SyntheticTraceConfig(
        packets=30_000, flows=5_000, zipf_skew=1.1, duration=5.0, seed=1234))
