"""NETWORK — bytes-on-wire and merge time across the aggregation tree.

Sweeps switch count over a simulated fleet (no sockets, no drops) and
records, per point:

- **flat vs tree**: root merge seconds per epoch (a flat fan-in makes
  the root decode and merge every leaf; the tree amortises the fold
  across rack/pod aggregators so the root does ``fanout`` merges);
- **raw vs delta**: steady-state bytes on the wire per epoch for the
  same Zipf traffic, raw = uncompressed full frames end to end,
  delta = the codec's per-frame minimum of (compressed) delta and
  full encodings against each hop's acked base.

The release floor is ``raw_bytes / delta_bytes >= 3`` at every swept
switch count (ISSUE 7 acceptance: "at least 3x fewer bytes than raw
on steady-state Zipf traffic").  A sealed-and-reset epoch stream shares
no baseline between epochs, so the winning encoding is the *compressed
full frame* (DESIGN.md §11); genuine DELTA frames are exercised
separately on a cumulative counter stream and recorded alongside.

Results go to ``benchmarks/results/BENCH_network.json`` plus an ASCII
bytes-vs-switch-count figure in ``network_scale.txt``; both are spliced
into EXPERIMENTS.md by ``collect_results.py``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.eval.asciichart import render_chart
from repro.network.codec import DeltaDecoder, DeltaEncoder, frame_info
from repro.network.faults import SimLink, SimulatedSwitch, zipf_keys
from repro.network.hierarchy import HierarchicalCoordinator, TreePlan
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.core.universal import UniversalSketch

from conftest import QUICK

_RESULTS = {}

SWITCH_COUNTS = (25, 50) if QUICK else (50, 100, 200)
FANOUT = 8
PACKETS_PER_SWITCH = 120
FLOWS = 512
EPOCHS = 4  # steady state: measure the last epoch


def factory():
    return UniversalSketch(levels=6, rows=2, width=256, heap_size=16,
                           seed=9)


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if _RESULTS:
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "BENCH_network.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


class Fleet:
    """A dropless simulated fleet under one coordinator."""

    def __init__(self, n, transfer, fanout=FANOUT, seed=0):
        on = transfer == "delta"
        names = [f"sw{i:03d}" for i in range(n)]
        self.switches = {
            name: SimulatedSwitch(name, factory, delta=on, compress=on)
            for name in names}
        links = {name: SimLink(self.switches[name], drop_rate=0.0,
                               seed=seed + i)
                 for i, name in enumerate(names)}
        self.coord = HierarchicalCoordinator(
            links, factory, fanout=fanout, transfer=transfer)
        self.rng = np.random.default_rng(seed)

    def feed(self):
        for switch in self.switches.values():
            switch.feed(zipf_keys(self.rng, PACKETS_PER_SWITCH,
                                  flows=FLOWS))

    def epoch(self):
        self.feed()
        report = self.coord.run_epoch()
        return report.results["coverage"]


def steady_state(n, transfer, fanout=FANOUT):
    """Per-epoch wire bytes and timings once codec bases are warm."""
    fleet = Fleet(n, transfer, fanout=fanout)
    with use_registry(MetricsRegistry()) as registry:
        for _ in range(EPOCHS - 1):
            fleet.epoch()
        merge_before = registry.get("univmon_tree_merge_seconds")
        merged_s = merge_before.sum if merge_before else 0.0
        t0 = time.perf_counter()
        cov = fleet.epoch()
        wall_s = time.perf_counter() - t0
        merge_s = registry.get("univmon_tree_merge_seconds").sum \
            - merged_s
    assert cov["coverage"] == 1.0
    return {
        "bytes_wire": cov["bytes_wire"],
        "frames_full": cov["frames_full"],
        "frames_delta": cov["frames_delta"],
        "root_merge_ms": round(merge_s * 1e3, 4),
        "epoch_wall_ms": round(wall_s * 1e3, 4),
        "tiers": fleet.coord.plan.depth,
    }


def test_bytes_on_wire_raw_vs_delta():
    """The codec floor: >= 3x fewer bytes than raw at every scale."""
    sweep = {}
    for n in SWITCH_COUNTS:
        raw = steady_state(n, "raw")
        delta = steady_state(n, "delta")
        ratio = raw["bytes_wire"] / delta["bytes_wire"]
        sweep[str(n)] = {
            "raw_bytes": raw["bytes_wire"],
            "delta_bytes": delta["bytes_wire"],
            "ratio": round(ratio, 2),
            "frames_full": delta["frames_full"],
            "frames_delta": delta["frames_delta"],
        }
        assert ratio >= 3.0, (
            f"delta transfer at {n} switches is only {ratio:.2f}x "
            f"smaller than raw (need >= 3x)")
    _RESULTS["bytes_on_wire"] = {
        "fanout": FANOUT,
        "packets_per_switch": PACKETS_PER_SWITCH,
        "flows": FLOWS,
        "by_switches": sweep,
    }

    series = {
        "raw": [(int(n), row["raw_bytes"]) for n, row in sweep.items()],
        "delta": [(int(n), row["delta_bytes"])
                  for n, row in sweep.items()],
    }
    chart = render_chart(series, x_label="switches", y_label="bytes/epoch",
                         title="steady-state wire bytes per epoch "
                               "(raw vs delta transfer)")
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "network_scale.txt").write_text(chart + "\n")
    print("\n" + chart)


def test_merge_time_flat_vs_tree():
    """The root of a flat fan-in folds every leaf itself; the tree's
    root folds ``fanout`` pre-merged subtrees.  Record both."""
    sweep = {}
    for n in SWITCH_COUNTS:
        tree = steady_state(n, "delta")
        flat = steady_state(n, "delta", fanout=max(2, n))
        sweep[str(n)] = {
            "flat_root_merge_ms": flat["root_merge_ms"],
            "tree_root_merge_ms": tree["root_merge_ms"],
            "flat_epoch_ms": flat["epoch_wall_ms"],
            "tree_epoch_ms": tree["epoch_wall_ms"],
            "tree_tiers": tree["tiers"],
        }
    _RESULTS["merge_time"] = {"fanout": FANOUT, "by_switches": sweep}
    largest = sweep[str(SWITCH_COUNTS[-1])]
    # The tree must not cost more root merge time than the flat fold.
    assert largest["tree_root_merge_ms"] <= \
        largest["flat_root_merge_ms"] * 1.5


def test_delta_frames_engage_on_cumulative_stream():
    """On a cumulative counter stream (bases shared between epochs)
    genuine DELTA frames win; record their steady-state size."""
    enc, dec = DeltaEncoder(), DeltaDecoder()
    full_only = DeltaEncoder(delta=False, compress=True)
    cumulative = factory()
    rng = np.random.default_rng(3)
    kinds, delta_bytes, full_bytes = [], [], []
    for epoch in range(6):
        cumulative.update_array(
            zipf_keys(rng, PACKETS_PER_SWITCH, flows=FLOWS))
        frame = enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)
        dec.decode(frame)
        kinds.append(frame_info(frame).kind)
        delta_bytes.append(len(frame))
        full_bytes.append(len(full_only.encode(cumulative.copy())))
    assert kinds[0] == "full" and "delta" in kinds[1:]
    steady = [b for kind, b in zip(kinds, delta_bytes)
              if kind == "delta"]
    _RESULTS["cumulative_delta"] = {
        "frame_kinds": kinds,
        "delta_frame_bytes": steady,
        "compressed_full_bytes": full_bytes[-1],
        "savings_vs_full": round(full_bytes[-1] / steady[-1], 2),
    }
