"""DETECT — rule-evaluation overhead of the detection pipeline.

The pipeline's promise is that declarative rules ride the epoch loop
essentially for free: all rule metrics resolve through **one** batched
``evaluate_many`` over the epoch's cached :class:`QuerySnapshot`, and
each rule's condition + state machine is pure Python over those few
scalars.  This bench holds it to the ISSUE floor: with 10 active
rules, per-epoch rule evaluation must cost **<= 5% of the epoch's
ingest time** (the ``update_array`` sweep that builds the sketch).

The snapshot itself is warmed before the timed region — the controller
builds exactly one snapshot per sealed epoch for *all* registered apps
(see ``test_one_snapshot_build_per_epoch_regardless_of_apps``), so the
pipeline's marginal cost is evaluation, not the build.  The cold build
time is recorded alongside for context.

Results go to ``benchmarks/results/BENCH_detect.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.dataplane.keys import src_ip_key
from repro.core.query import QueryEngine
from repro.core.universal import UniversalSketch
from repro.detect import DetectionPipeline, Rule

from conftest import QUICK

_RESULTS = {}

#: Acceptance-grade geometry (the 256 KB operating point's shape).
LEVELS = 12
ROWS = 5
WIDTH = 1024
HEAP_SIZE = 64

EPOCHS = 3 if QUICK else 6

#: The ISSUE floor: rule evaluation <= 5% of epoch ingest at 10 rules.
OVERHEAD_CEILING = 0.05

#: Ten rules spanning every metric family the grammar resolves from a
#: snapshot (``total_change`` is excluded on purpose: it subtracts
#: whole sketches, which is change *detection* work, not rule-eval
#: overhead).
TEN_RULES = (
    "cardinality spikes > 2x baseline",
    "entropy drops > 30%",
    "l2 spikes > 2x baseline",
    "packets rises > 50%",
    "l1 spikes > 2x baseline",
    "f2 spikes > 2x baseline",
    "max_share > 0.5",
    "hh_count:0.01 > 100",
    "moment:0.5 spikes > 2x baseline",
    "entropy drops > 30% and cardinality spikes > 2x baseline",
)


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if _RESULTS:
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "BENCH_detect.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def make_pipeline(n_rules):
    rules = [Rule(name=f"r{i}", when=TEN_RULES[i % len(TEN_RULES)],
                  confirm_epochs=2, cooldown_epochs=2, actions=())
             for i in range(n_rules)]
    return DetectionPipeline(rules, keep_events=False)


def run_epochs(bench_trace, n_rules):
    """Per-epoch (ingest, warm build, rule eval) timings in seconds."""
    pipeline = make_pipeline(n_rules)
    keys = bench_trace.key_array(src_ip_key)
    ingest, build, evaluate = [], [], []
    for epoch in range(EPOCHS + 1):
        sketch = UniversalSketch(levels=LEVELS, rows=ROWS, width=WIDTH,
                                 heap_size=HEAP_SIZE, seed=epoch + 1)
        t0 = time.perf_counter()
        sketch.update_array(keys)
        t1 = time.perf_counter()
        QueryEngine(sketch).snapshot()    # the controller's per-epoch warm
        t2 = time.perf_counter()
        pipeline.on_sketch(sketch, epoch)
        t3 = time.perf_counter()
        if epoch == 0:
            continue    # warm-up epoch: first-call numpy/obs setup
        ingest.append(t1 - t0)
        build.append(t2 - t1)
        evaluate.append(t3 - t2)
    return ingest, build, evaluate


def test_rule_eval_within_five_percent_of_ingest(bench_trace):
    ingest, build, evaluate = run_epochs(bench_trace, 10)
    # min-of-epochs, timeit-style: the fastest observation is the one
    # least polluted by scheduler/GC noise on a shared box.
    best_ingest = min(ingest)
    best_eval = min(evaluate)
    ratio = best_eval / best_ingest
    _RESULTS["rule_eval_overhead"] = {
        "rules": 10,
        "epochs": EPOCHS,
        "packets_per_epoch": len(bench_trace),
        "ingest_ms_per_epoch": round(1e3 * best_ingest, 3),
        "snapshot_build_ms_per_epoch": round(1e3 * min(build), 3),
        "rule_eval_ms_per_epoch": round(1e3 * best_eval, 3),
        "eval_over_ingest": round(ratio, 4),
        "ceiling": OVERHEAD_CEILING,
    }
    print(f"\n10-rule evaluation: {1e3 * best_eval:.3f} ms/epoch "
          f"vs ingest {1e3 * best_ingest:.1f} ms/epoch "
          f"({100 * ratio:.2f}% <= {100 * OVERHEAD_CEILING:.0f}%)")
    assert ratio <= OVERHEAD_CEILING, (
        f"rule evaluation is {100 * ratio:.1f}% of ingest "
        f"(floor: {100 * OVERHEAD_CEILING:.0f}%)")


def test_rule_eval_scales_with_rule_count(bench_trace):
    """The batched metric resolution keeps marginal rule cost flat:
    10 rules must cost well under 10x one rule."""
    sweep = {}
    for n_rules in (1, 5, 10):
        _ingest, _build, evaluate = run_epochs(bench_trace, n_rules)
        sweep[n_rules] = 1e3 * min(evaluate)
    _RESULTS["rule_count_sweep_ms_per_epoch"] = {
        str(n): round(ms, 3) for n, ms in sweep.items()}
    print("\nrule-count sweep (ms/epoch): " + ", ".join(
        f"{n}: {ms:.3f}" for n, ms in sweep.items()))
    assert sweep[10] < 5 * sweep[1] + 1.0, (
        f"rule evaluation not amortised: {sweep}")
