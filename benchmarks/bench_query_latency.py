"""QUERY — control-plane latency of the batched multi-statistic engine.

Times the paper's §3.4 task set plus F2 — heavy hitters, cardinality,
L1, entropy, F2 — evaluated against one sealed sketch two ways:

- **scalar baseline**: verbatim copies of the pre-rewrite estimators —
  one Python ``g(w)`` call and one scalar sampling-bit hash per heavy
  hitter per level, re-walked from scratch per statistic (exactly what
  every app did each epoch before the query engine);
- **batched**: ``QueryEngine.evaluate_many`` over a single
  :class:`~repro.core.query.QuerySnapshot`, with the snapshot cache
  invalidated before every timed iteration so each run pays the full
  honest cost of one build + five array-reduction estimates.

The release floor is a >= 5x speedup at the ISSUE geometry (16 levels,
k=200 heaps).  Results go to ``benchmarks/results/BENCH_query.json``.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
from repro.core.gfunctions import ABS, CARDINALITY, ENTROPY_SUM
from repro.core.gsum import estimate_gsum_scalar
from repro.core.query import QueryEngine, Statistic
from repro.core.universal import UniversalSketch

from conftest import QUICK

_RESULTS = {}

#: The ISSUE geometry: deep sampling cascade, large per-level heaps.
LEVELS = 16
HEAP_SIZE = 200
ROWS = 5
WIDTH = 2048
PACKETS = 12_000 if QUICK else 60_000
FLOWS = 4_000 if QUICK else 20_000

STATISTICS = (
    Statistic.heavy_hitters(0.005),
    Statistic.cardinality(),
    Statistic.l1(),
    Statistic.entropy(),
    Statistic.f2(),
)


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if _RESULTS:
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "BENCH_query.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def sketch():
    trace = generate_trace(SyntheticTraceConfig(
        packets=PACKETS, flows=FLOWS, zipf_skew=1.1, duration=5.0,
        seed=1))
    u = UniversalSketch(levels=LEVELS, rows=ROWS, width=WIDTH,
                        heap_size=HEAP_SIZE, seed=1)
    u.update_array(trace.key_array(src_ip_key))
    return u


# --------------------------------------------------------------------- #
# Verbatim pre-rewrite scalar estimators.  Frozen copies of the original
# control-plane code paths (scalar Recursive Sum per statistic, scalar
# heap walk for G-core), so the floor is measured against the real
# thing, not a strawman.  ``estimate_gsum_scalar`` in repro.core.gsum IS
# the original loop, retained as the reference implementation.
# --------------------------------------------------------------------- #


def _baseline_g_core(sketch, fraction, total=None):
    if total is None:
        total = sketch.total_weight
    threshold = fraction * total
    hitters = []
    for key, estimate in sketch.levels[0].heavy_hitters():
        if abs(estimate) >= threshold:
            hitters.append((key, estimate))
    return hitters


def _baseline_entropy(sketch, base=2.0):
    m = float(sketch.total_weight)
    if m <= 0:
        return 0.0
    s = estimate_gsum_scalar(sketch, ENTROPY_SUM)
    h = math.log2(m) - s / m
    return min(max(h, 0.0), math.log2(m))


def _scalar_all(sketch):
    """The five §3.4-plus-F2 estimates, the pre-rewrite way: each one
    re-walks every heap and re-hashes every sampling bit from scratch."""
    return {
        "heavy_hitters": _baseline_g_core(sketch, 0.005),
        "cardinality": max(0.0, estimate_gsum_scalar(sketch, CARDINALITY)),
        "l1": max(0.0, estimate_gsum_scalar(sketch, ABS)),
        "entropy": _baseline_entropy(sketch),
        "f2": sketch.levels[0].sketch.f2_estimate(),
    }


def _batched_all(sketch):
    """One honest batched evaluation: invalidate the cache so the timed
    region includes the full snapshot build, then one evaluate_many."""
    sketch.invalidate_snapshot()
    return QueryEngine(sketch).evaluate_many(STATISTICS)


def _best_seconds(fn, repeats=7):
    """Min-of-N wall time; fn is warmed once before timing."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batched_matches_scalar(sketch):
    """The timed paths must be computing the same numbers."""
    scalar = _scalar_all(sketch)
    batched = _batched_all(sketch)
    assert [(int(k), float(w)) for k, w in scalar["heavy_hitters"]] == \
        batched["heavy_hitters"]
    for name in ("cardinality", "l1", "entropy", "f2"):
        assert math.isclose(scalar[name], batched[name],
                            rel_tol=1e-12, abs_tol=1e-9), \
            (name, scalar[name], batched[name])


def test_speedup_batched_query(sketch):
    """evaluate_many (snapshot rebuilt per call) >= 5x the scalar walk."""
    repeats = 3 if QUICK else 7
    t_scalar = _best_seconds(lambda: _scalar_all(sketch), repeats=repeats)
    t_batched = _best_seconds(lambda: _batched_all(sketch), repeats=repeats)
    # The marginal cost once the epoch's snapshot is already warm (every
    # app after the first): recorded for context, not a floor.
    engine = QueryEngine(sketch)
    engine.warm()
    t_warm = _best_seconds(lambda: engine.evaluate_many(STATISTICS),
                           repeats=repeats)
    speedup = t_scalar / t_batched
    _RESULTS["batched_query"] = {
        "levels": LEVELS,
        "heap_size": HEAP_SIZE,
        "packets": PACKETS,
        "flows": FLOWS,
        "heap_entries": int(sketch.query_snapshot().heap_entries()),
        "statistics": [s.name for s in STATISTICS],
        "scalar_ms": round(t_scalar * 1e3, 4),
        "batched_ms": round(t_batched * 1e3, 4),
        "warm_cache_ms": round(t_warm * 1e3, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 5.0, (
        f"batched query engine is only {speedup:.2f}x the scalar "
        f"estimators (need >= 5x)")


def test_snapshot_build_cost(sketch):
    """Isolate the snapshot build itself (the shared per-epoch cost)."""
    def build():
        sketch.invalidate_snapshot()
        sketch.query_snapshot()
    t_build = _best_seconds(build)
    _RESULTS["snapshot_build"] = {
        "heap_entries": int(sketch.query_snapshot().heap_entries()),
        "build_ms": round(t_build * 1e3, 4),
    }
