"""ABL-LEVELS — G-sum accuracy vs the number of sampling levels.

DESIGN.md design choice 1: the paper prescribes log(n) levels.  This
ablation shows why: with too few levels the deepest substream holds more
distinct keys than its heap, biasing Algorithm 2 for "flat" statistics
(F0), while past ~log2(n/k) extra levels only add memory.
"""

from conftest import QUICK, RUNS, workload, write_result

from repro.eval.experiments import ablation_levels
from repro.eval.runner import format_table

LEVELS = (2, 4, 6, 8, 10, 12) if not QUICK else (2, 6, 10)


def test_ablation_levels(benchmark):
    runs = max(5, RUNS // 2)
    points = benchmark.pedantic(
        ablation_levels,
        kwargs=dict(level_counts=LEVELS, runs=runs, workload=workload()),
        rounds=1, iterations=1)
    table = format_table(points, ["f0_err", "entropy_err", "memory_kb"],
                         x_label="levels",
                         title=f"Ablation — sampling levels ({runs} runs)")
    write_result("ablation_levels.txt", table, points,
                 ["f0_err", "entropy_err"], x_label="levels",
                 log_x=False)

    few, many = points[0].metrics, points[-1].metrics
    # F0 needs enough levels; the error must drop substantially.
    assert many["f0_err"].median < few["f0_err"].median
    assert many["f0_err"].median < 0.3
    # Entropy is heavy-hitter-dominated and tolerant of few levels.
    assert many["entropy_err"].median < 0.1
