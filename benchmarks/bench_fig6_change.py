"""FIG6 — Change detection: FP/FN vs memory (the figure UnivMon wins).

Regenerates Figure 6's series: UnivMon's subtracted universal sketches
vs the k-ary sketch baseline — which even receives the exact union of
epoch keys as candidates.  Shape checks the paper's "interesting reversal
of trends": UnivMon is at least as good as the custom sketch here.
"""

from conftest import RUNS, memory_sweep, workload, write_result

from repro.eval.experiments import fig6_change_detection
from repro.eval.runner import format_table

METRICS = ["univmon_fp", "univmon_fn", "opensketch_fp", "opensketch_fn"]


def test_fig6_change_detection(benchmark):
    points = benchmark.pedantic(
        fig6_change_detection,
        kwargs=dict(memory_kb=memory_sweep(), runs=RUNS,
                    workload=workload(), phi=0.03, num_changes=20,
                    change_factor=10.0),
        rounds=1, iterations=1)
    table = format_table(
        points, METRICS,
        title=f"Figure 6 — heavy change detection (phi=0.03, {RUNS} runs)")
    write_result("fig6_change.txt", table, points, METRICS)

    top = points[-1].metrics
    # Shape: UnivMon reaches low error.
    assert top["univmon_fp"].median <= 0.15
    assert top["univmon_fn"].median <= 0.15
    # Shape: UnivMon's total error is no worse than the custom baseline
    # at the top of the sweep (the paper's reversal).
    univmon_total = top["univmon_fp"].median + top["univmon_fn"].median
    baseline_total = top["opensketch_fp"].median + top["opensketch_fn"].median
    assert univmon_total <= baseline_total + 0.05
