"""FIG5 — DDoS: distinct-source error and detection-error vs memory.

Regenerates Figure 5's series: UnivMon's g(x)=x**0 estimate vs the
OpenSketch bitmap distinct counter, on a trace whose second epoch holds a
DDoS burst of fresh sources.  Shape: both detect reliably at the top of
the sweep; the purpose-built bitmap is the tighter estimator (UnivMon
pays a modest accuracy premium for generality — the paper's takeaway).
"""

from conftest import RUNS, memory_sweep, workload, write_result

from repro.eval.experiments import fig5_ddos
from repro.eval.runner import format_table

METRICS = ["univmon_err", "opensketch_err",
           "univmon_detect_err", "opensketch_detect_err"]


def test_fig5_ddos(benchmark):
    points = benchmark.pedantic(
        fig5_ddos,
        kwargs=dict(memory_kb=memory_sweep(), runs=RUNS,
                    workload=workload(), attack_sources=4000),
        rounds=1, iterations=1)
    table = format_table(
        points, METRICS,
        title=f"Figure 5 — DDoS / distinct sources ({RUNS} runs)")
    write_result("fig5_ddos.txt", table, points, METRICS)

    top = points[-1].metrics
    # Shape: at generous memory both systems detect the attack epoch.
    assert top["univmon_detect_err"].median == 0.0
    assert top["opensketch_detect_err"].median == 0.0
    # Shape: estimation errors are small in absolute terms.
    assert top["univmon_err"].median < 0.25
    assert top["opensketch_err"].median < 0.10
