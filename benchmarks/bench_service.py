"""SERVICE — concurrent query serving over the always-on service.

The service's design center is *serving latency under concurrency
while ingest never stalls*.  This bench holds it to the ISSUE floors
with a client swarm against a live service (real HTTP over loopback,
ingest running the whole time):

- **latency**: p50/p99 of ``POST /query`` across a client-count sweep
  (up to 200 concurrent clients in full mode); p99 at the maximum
  client count must stay under the calibrated ceiling.
- **ingest isolation**: ingest throughput with the swarm hammering
  ``/query`` must be within 10% of the serving-idle rate.
- **memoisation**: identical concurrent queries collapse to one
  evaluation, and snapshot builds equal sealed epochs exactly.

Results go to ``benchmarks/results/BENCH_service.json`` and are
spliced into EXPERIMENTS.md by ``collect_results.py``.
"""

import json
import signal
import statistics
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.core.universal import UniversalSketch
from repro.service import MonitoringService, ServiceConfig

from conftest import QUICK

_RESULTS = {}

#: Acceptance-grade geometry (matches the detect bench).
LEVELS = 12
ROWS = 5
WIDTH = 1024
HEAP_SIZE = 64

#: Concurrent clients per sweep point; the ISSUE floor is >= 200
#: concurrent clients during live ingest (full mode).
CLIENT_SWEEP = (8, 32) if QUICK else (8, 32, 200)
REQUESTS_PER_CLIENT = 3 if QUICK else 5

#: Calibrated p99 ceiling at the maximum client count.  A memo-hit
#: query is sub-millisecond of loop time; the ceiling budgets for 200
#: connections' queueing on one event loop plus scheduler noise on a
#: loaded CI box.
P99_CEILING_SECONDS = 2.0

#: Ingest throughput with the swarm live vs serving-idle.
MAX_INGEST_DEGRADATION = 0.10

QUERY_PAYLOAD = json.dumps(
    {"statistics": ["cardinality", "entropy", "l1", "f2"]}).encode()


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if _RESULTS:
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "BENCH_service.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def sketch_factory():
    return UniversalSketch(levels=LEVELS, rows=ROWS, width=WIDTH,
                           heap_size=HEAP_SIZE, seed=1)


def start_service(trace, **overrides):
    settings = dict(port=0, epoch_seconds=0.25, ring_depth=8,
                    chunk_size=8192)
    settings.update(overrides)
    service = MonitoringService.from_trace(
        trace, ServiceConfig(**settings), sketch_factory=sketch_factory)
    return service.start()


def wait_first_epoch(service, timeout=30.0):
    deadline = time.monotonic() + timeout
    while service.ring.latest() is None:
        assert time.monotonic() < deadline, "no epoch published"
        time.sleep(0.01)


def post_query(port, timeout=30.0, payload=QUERY_PAYLOAD):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/query", data=payload,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        resp.read()
        return resp.status


def swarm(port, clients, requests_per_client, stop=None, interval=0.0,
          payload=QUERY_PAYLOAD):
    """``clients`` threads, each issuing sequential queries (paced by
    ``interval`` seconds between them when set); returns (sorted
    latencies in seconds, error count)."""
    latencies = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client(index):
        mine = []
        barrier.wait()
        if interval:
            # Stagger paced clients so the poll load spreads evenly
            # instead of arriving in phase-locked bursts.
            time.sleep(interval * index / clients)
        for _ in range(requests_per_client):
            if stop is not None and stop.is_set():
                break
            t0 = time.perf_counter()
            try:
                status = post_query(port, payload=payload)
                if status != 200:
                    raise RuntimeError(f"status {status}")
            except Exception as exc:  # noqa: BLE001 - tallied below
                with lock:
                    errors.append(exc)
                continue
            mine.append(time.perf_counter() - t0)
            if interval:
                time.sleep(interval)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return sorted(latencies), len(errors)


def percentile(sorted_values, q):
    assert sorted_values
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def test_query_latency_under_client_swarm(bench_trace):
    """The headline numbers: p50/p99 vs concurrent client count, all
    during live max-rate ingest."""
    with use_registry(MetricsRegistry()):
        service = start_service(bench_trace)
        try:
            wait_first_epoch(service)
            sweep = {}
            for clients in CLIENT_SWEEP:
                lats, errs = swarm(service.port, clients,
                                   REQUESTS_PER_CLIENT)
                assert errs == 0, f"{errs} failed requests at {clients}"
                sweep[clients] = {
                    "requests": len(lats),
                    "p50_ms": round(1e3 * percentile(lats, 0.50), 3),
                    "p99_ms": round(1e3 * percentile(lats, 0.99), 3),
                }
                assert service.ingest.is_alive(), \
                    "ingest died under serving load"
        finally:
            service.stop()
    _RESULTS["query_latency"] = {
        "requests_per_client": REQUESTS_PER_CLIENT,
        "p99_ceiling_ms": 1e3 * P99_CEILING_SECONDS,
        "clients": {str(n): stats for n, stats in sweep.items()},
    }
    print("\nquery latency under swarm (live ingest):")
    for n, stats in sweep.items():
        print(f"  {n:4d} clients: p50 {stats['p50_ms']:8.2f} ms   "
              f"p99 {stats['p99_ms']:8.2f} ms")
    top = max(sweep)
    assert sweep[top]["p99_ms"] <= 1e3 * P99_CEILING_SECONDS, (
        f"p99 at {top} clients is {sweep[top]['p99_ms']:.1f} ms "
        f"(ceiling {1e3 * P99_CEILING_SECONDS:.0f} ms)")


#: Out-of-process poll swarm for the ingest-isolation measurement:
#: in-process client threads would charge their own urllib/JSON work
#: to the service's GIL, so the load generator runs as a subprocess
#: — exactly how real clients arrive.
POLLER_SCRIPT = r"""
import json, sys, threading, time, urllib.request
port, clients, interval = int(sys.argv[1]), int(sys.argv[2]), float(sys.argv[3])
payload = json.dumps(
    {"statistics": ["cardinality", "entropy", "l1", "f2"]}).encode()

def post():
    req = urllib.request.Request(
        "http://127.0.0.1:%d/query" % port, data=payload,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=30) as resp:
        resp.read()

def client(index):
    time.sleep(interval * index / clients)   # spread the poll phase
    while True:
        try:
            post()
        except Exception:
            pass
        time.sleep(interval)

for i in range(clients):
    threading.Thread(target=client, args=(i,), daemon=True).start()
time.sleep(3600)
"""


def _epoch_aligned_rate(service, epochs):
    """Ingest rate over exactly ``epochs`` sealed epochs.

    Aligning the window to seal boundaries removes the dominant noise
    source in wall-clock windows: how many (expensive) epoch seals a
    window happens to straddle.
    """
    ingest = service.ingest
    target = ingest.epochs_sealed + 1
    while ingest.epochs_sealed < target:
        time.sleep(0.005)
    start_packets = ingest.packets_ingested
    t0 = time.perf_counter()
    target += epochs
    while ingest.epochs_sealed < target:
        time.sleep(0.005)
    elapsed = time.perf_counter() - t0
    return (ingest.packets_ingested - start_packets) / elapsed


def test_ingest_throughput_degradation(bench_trace):
    """Serving load must not stall ingest: under a sustained ~25
    queries/sec external poll load the sealed-epoch pipeline keeps
    running within 10% of its serving-idle rate.

    Method notes, tuned for a small shared box (this CI host has one
    core, so the load generator's own CPU competes with ingest no
    matter what):

    - the poll swarm runs as a *subprocess* — in-process client
      threads would charge their urllib/JSON work to the service's
      GIL and measure the harness, not the service;
    - the load is paced (8 staggered clients polling every 300 ms),
      still orders of magnitude past a realistic scrape load (a 15 s
      Prometheus interval is 0.07 qps);
    - each sample covers exactly 4 sealed epochs and idle/loaded
      samples are interleaved per trial, with the median ratio taken
      across trials — wall-clock windows straddle a variable number
      of (expensive) epoch seals, which swamps a 10% floor in noise;
    - the poller boots once and is paused/resumed with
      SIGSTOP/SIGCONT between windows: interpreter startup costs
      ~0.5 s of CPU here and must not be charged to a loaded window.
    """
    window_epochs = 4
    trials = 5 if QUICK else 9
    load_clients = 8
    poll_interval = 0.3
    with use_registry(MetricsRegistry()):
        service = start_service(bench_trace)
        try:
            wait_first_epoch(service)
            poller = subprocess.Popen(
                [sys.executable, "-c", POLLER_SCRIPT,
                 str(service.port), str(load_clients),
                 str(poll_interval)])
            try:
                time.sleep(2.0)  # interpreter boot + swarm steady state
                ratios, idle_rates, loaded_rates = [], [], []
                for _trial in range(trials):
                    poller.send_signal(signal.SIGSTOP)
                    time.sleep(0.2)
                    idle = _epoch_aligned_rate(service, window_epochs)
                    poller.send_signal(signal.SIGCONT)
                    time.sleep(0.3)
                    loaded = _epoch_aligned_rate(service, window_epochs)
                    idle_rates.append(idle)
                    loaded_rates.append(loaded)
                    ratios.append(loaded / idle)
            finally:
                poller.kill()
                poller.wait(timeout=10)
        finally:
            service.stop()
    idle = statistics.median(idle_rates)
    loaded = statistics.median(loaded_rates)
    degradation = max(0.0, 1.0 - statistics.median(ratios))
    query_rate = load_clients / poll_interval
    _RESULTS["ingest_isolation"] = {
        "idle_pps": round(idle),
        "serving_pps": round(loaded),
        "degradation": round(degradation, 4),
        "budget": MAX_INGEST_DEGRADATION,
        "load_clients": load_clients,
        "target_query_rate": query_rate,
        "trials": trials,
    }
    print(f"\ningest: idle {idle / 1e3:.0f} kpps, "
          f"under ~{query_rate:.0f} qps load {loaded / 1e3:.0f} kpps "
          f"({100 * degradation:.1f}% median degradation, "
          f"budget {100 * MAX_INGEST_DEGRADATION:.0f}%)")
    assert degradation <= MAX_INGEST_DEGRADATION, (
        f"serving load degrades ingest by {100 * degradation:.1f}% "
        f"(budget {100 * MAX_INGEST_DEGRADATION:.0f}%)")


def test_memo_collapses_identical_queries(bench_trace):
    """N identical concurrent queries -> one evaluation, and snapshot
    builds == sealed epochs exactly (the acceptance invariant)."""
    clients = 16 if QUICK else 32
    with use_registry(MetricsRegistry()) as registry:
        service = start_service(bench_trace, epoch_seconds=0.15,
                                max_epochs=3)
        try:
            assert service.wait(timeout=60)
            misses_before = registry.counter(
                "univmon_query_memo_misses_total").value
            # A statistic set the epoch pipeline itself never
            # evaluates, so its memo entry is provably ours.
            payload = json.dumps(
                {"statistics": ["entropy:e", "moment:1.5"]}).encode()
            lats, errs = swarm(service.port, clients, 1,
                               payload=payload)
            assert errs == 0
            misses = registry.counter(
                "univmon_query_memo_misses_total").value - misses_before
            hits = registry.counter(
                "univmon_query_memo_hits_total").value
            builds = registry.counter(
                "univmon_query_snapshot_builds_total").value
            epochs = service.ingest.epochs_sealed
        finally:
            service.stop()
    _RESULTS["memoisation"] = {
        "concurrent_identical_queries": clients,
        "evaluations": int(misses),
        "memo_hits": int(hits),
        "snapshot_builds": int(builds),
        "epochs_sealed": int(epochs),
    }
    print(f"\nmemo: {clients} identical concurrent queries -> "
          f"{int(misses)} evaluation(s); "
          f"{int(builds)} snapshot builds over {epochs} epochs")
    assert misses == 1, f"{misses} evaluations for identical queries"
    assert builds == epochs, (
        f"{builds} snapshot builds != {epochs} sealed epochs")
