"""FIG7 — Entropy estimation: relative error vs memory.

Regenerates Figure 7: UnivMon's g(x)=x·log x estimate (the paper reports
UnivMon alone — "OpenSketch does not yet support Entropy"); the Lall
et al. sampled estimator is run alongside as the canonical streaming
competitor.  Shape: UnivMon's error is small even at the low end of the
memory sweep.
"""

from conftest import RUNS, memory_sweep, workload, write_result

from repro.eval.experiments import fig7_entropy
from repro.eval.runner import format_table

METRICS = ["univmon_err", "sampling_err"]


def test_fig7_entropy(benchmark):
    points = benchmark.pedantic(
        fig7_entropy,
        kwargs=dict(memory_kb=memory_sweep(), runs=RUNS,
                    workload=workload()),
        rounds=1, iterations=1)
    table = format_table(
        points, METRICS,
        title=f"Figure 7 — entropy estimation ({RUNS} runs)")
    write_result("fig7_entropy.txt", table, points, METRICS)

    # Shape: "the error of UNIVMON for the entropy estimation task is
    # also quite low even with limited memory."
    assert points[0].metrics["univmon_err"].median < 0.10
    assert points[-1].metrics["univmon_err"].median < 0.05
