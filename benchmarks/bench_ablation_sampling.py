"""ABL-SAMPLING — NetFlow-style packet sampling vs UnivMon.

Section 1/2.1's motivating claim, made measurable: "generic flow
monitoring ... provides poor accuracy for more fine-grained metrics"
unless run at impractically high sampling rates.  A 1-in-N sampled flow
table is swept over sampling rates and compared against a *fixed 64 KB*
universal sketch on heavy hitters (coarse), entropy and distinct count
(fine).  The flow table's own memory (demand-allocated, reported per
rate) stays below 64 KB throughout the sweep, so the comparison never
favours UnivMon on resources.

Expected shape: sampling is competitive on heavy hitters once the rate
is high, but on the fine-grained metrics it stays far from the sketch
at every practical rate — exactly why the sketching literature (and
this paper) exists.
"""

from conftest import QUICK, RUNS, workload, write_result

from repro.dataplane.keys import src_ip_key
from repro.dataplane.netflow import SampledFlowTable
from repro.dataplane.trace import generate_trace
from repro.eval.experiments import _univmon_for
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates, relative_error
from repro.eval.runner import format_table, run_sweep
from repro.core.gsum import estimate_cardinality, estimate_entropy, g_core

RATES = (0.001, 0.01, 0.1) if QUICK else (0.001, 0.005, 0.01, 0.05, 0.1)
ALPHA = 0.005
UNIVMON_BUDGET = 64 * 1024


def _trial_factory(spec):
    def trial(rate: float, seed: int):
        trace = generate_trace(spec.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)

        table = SampledFlowTable(sampling_rate=rate, seed=seed)
        for key in keys.tolist():
            table.update(int(key))

        sketch = _univmon_for(UNIVMON_BUDGET, spec.flows, seed=seed)
        sketch.update_array(keys)

        true_hh = truth.heavy_hitter_keys(ALPHA)
        nf_fp, nf_fn = detection_rates(
            true_hh, {k for k, _ in table.heavy_hitters(ALPHA)})
        um_fp, um_fn = detection_rates(
            true_hh, {k for k, _ in g_core(sketch, ALPHA)})

        return {
            "netflow_hh_err": (nf_fp + nf_fn) / 2,
            "univmon_hh_err": (um_fp + um_fn) / 2,
            "netflow_entropy_err": relative_error(
                table.estimate_entropy(), truth.entropy()),
            "univmon_entropy_err": relative_error(
                estimate_entropy(sketch), truth.entropy()),
            "netflow_f0_err": relative_error(
                table.estimate_cardinality(), truth.distinct),
            "univmon_f0_err": relative_error(
                estimate_cardinality(sketch), truth.distinct),
            "netflow_kb": table.memory_bytes() / 1024.0,
        }
    return trial


def test_ablation_sampling_vs_sketching(benchmark):
    runs = max(5, RUNS // 2)
    points = benchmark.pedantic(
        run_sweep, args=(RATES, _trial_factory(workload())),
        kwargs=dict(runs=runs), rounds=1, iterations=1)
    table = format_table(
        points,
        ["netflow_hh_err", "univmon_hh_err",
         "netflow_entropy_err", "univmon_entropy_err",
         "netflow_f0_err", "univmon_f0_err", "netflow_kb"],
        x_label="sampling_rate",
        title=f"Ablation — NetFlow sampling vs a fixed 64KB UnivMon "
              f"({runs} runs)")
    write_result("ablation_sampling.txt", table, points,
                 ["netflow_f0_err", "univmon_f0_err"],
                 x_label="sampling_rate")

    low_rate = points[0].metrics    # 0.1% sampling
    high_rate = points[-1].metrics  # 10% sampling
    # The paper's claim: fine-grained metrics are poor at practical rates.
    assert low_rate["univmon_entropy_err"].median < \
        low_rate["netflow_entropy_err"].median
    assert low_rate["univmon_f0_err"].median < \
        low_rate["netflow_f0_err"].median
    # Even at 10% sampling, distinct counting stays far off while the
    # sketch is within a few percent.
    assert high_rate["netflow_f0_err"].median > 3 * \
        high_rate["univmon_f0_err"].median
    # But heavy hitters ARE sampling-friendly at high rates (Sekar et
    # al.'s point, which the paper acknowledges).
    assert high_rate["netflow_hh_err"].median < 0.3
