"""TAB-CPU — total cycles: one UnivMon instance vs the OpenSketch suite.

The paper's overhead paragraph, under the op-cost model substitute for
Intel PCM: "UNIVMON takes 1.407e9 total cycles on CPU to support all
simulated applications while OpenSketch needs in total 2.941e9"
(ratio 0.48).  Shape checks: the suite ratio is < 1 (UnivMon wins on the
*suite*) while per single cheap task UnivMon can cost more (the paper's
"in the worst case ... more expensive, in some cases more than 2X more
efficient").
"""

from conftest import QUICK, workload, write_result

from repro.eval.cost import DEFAULT_COST_MODEL
from repro.eval.experiments import overhead_cycles


def test_overhead_cycles(benchmark):
    result = benchmark.pedantic(
        overhead_cycles,
        kwargs=dict(workload=workload(), epochs=3 if QUICK else 12,
                    seed=42, memory_kb=1024),
        rounds=1, iterations=1)

    lines = [
        "Overhead — modelled total cycles (Intel-PCM substitute)",
        f"  packets processed:      {result.packets}",
        f"  UnivMon (all tasks):    {result.univmon_cycles:.3e}",
        f"  OpenSketch suite:       {result.opensketch_suite_cycles:.3e}",
    ]
    for task, cycles in result.opensketch_per_task_cycles.items():
        lines.append(f"    {task:8s}              {cycles:.3e}")
    lines.append(f"  ratio (UnivMon/suite):  {result.ratio:.3f}   "
                 f"[paper: 1.407e9 / 2.941e9 = 0.478]")
    write_result("overhead_cycles.txt", "\n".join(lines))

    # Headline shape: the single universal sketch costs less than the
    # suite of custom sketches it replaces.
    assert result.ratio < 1.0
    # And the per-task spread matches the paper's observation: against
    # the cheapest single custom task UnivMon is more expensive, against
    # the dearest it is cheaper.
    per = result.opensketch_per_task_cycles
    assert result.univmon_cycles > min(per.values())
    assert result.univmon_cycles < max(per.values()) * 1.5
