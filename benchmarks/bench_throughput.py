"""THRPT — wall-clock update throughput of every sketch's hot path.

pytest-benchmark timings for the bulk (vectorised) update path over a
shared 30k-packet trace, plus the per-packet scalar path on a sample.
These are the numbers a deployment would size against; they complement
the op-cost model with real CPython timings.

The ``test_speedup_*`` tests additionally pin the vectorised-ingest
rewrite against verbatim copies of the original ``np.add.at`` bulk
path (sketches constructed *outside* the timed region in both cases)
and enforce the release floors: >= 3x for ``CountSketch.update_array``
and >= 2x for ``UniversalSketch.update_array``.  ``test_sharded_crossover``
sweeps serial vs pooled sharded ingest across stream sizes to locate the
point where the persistent worker pool overtakes one busy core.  Results
are written to ``benchmarks/results/BENCH_throughput.json``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dataplane.keys import src_ip_key
from repro.dataplane.replay import BatchIngest
from repro.core.universal import UniversalSketch
from repro.opensketch.tasks import (
    ChangeDetectionTask,
    DDoSDetectionTask,
    HeavyHitterTask,
    HierarchicalHeavyHitterTask,
)
from repro.sketches.bitmap import LinearCounter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kary import KArySketch


_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    """Persist whatever the speedup/ingest tests measured, even on a
    partial run.  Existing keys survive, so a ``-k``-filtered run (e.g.
    ``make bench-parallel``) refreshes its own entries without dropping
    the rest of the file."""
    yield
    if _RESULTS:
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        out = results_dir / "BENCH_throughput.json"
        merged = {}
        if out.exists():
            try:
                merged = json.loads(out.read_text())
            except ValueError:
                merged = {}
        merged.update(_RESULTS)
        out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def keys(bench_trace):
    return bench_trace.key_array(src_ip_key)


# --------------------------------------------------------------------- #
# Verbatim pre-rewrite bulk paths (the np.add.at baseline).  These are
# frozen copies of the original implementations so the speedup floor is
# measured against the real thing, not a strawman.
# --------------------------------------------------------------------- #


def _baseline_countsketch_update(sketch, keys, weights=None):
    if weights is None:
        weights = np.ones(len(keys), dtype=np.int64)
    for r, h in enumerate(sketch._hashes):
        v = h.hash_array(keys)
        sign = np.where(v >> np.uint64(63), 1, -1).astype(np.int64)
        buckets = (v % np.uint64(sketch.width)).astype(np.intp)
        np.add.at(sketch.table[r], buckets, sign * weights)


def _baseline_deepest_levels(sampler, keys):
    n = len(keys)
    if sampler.levels == 0:
        return np.zeros(n, dtype=np.int64)
    bits = np.empty((sampler.levels, n), dtype=bool)
    for j, h in enumerate(sampler._hashes):
        bits[j] = (h.hash_array(keys) & np.uint64(1)).astype(bool)
    all_true = bits.all(axis=0)
    first_zero = np.argmin(bits, axis=0)
    depth = np.where(all_true, sampler.levels, first_zero)
    return depth.astype(np.int64)


def _baseline_level_update(level, keys):
    _baseline_countsketch_update(level.sketch, keys)
    level.packets += len(keys)
    level.weight += len(keys)
    uniq = np.unique(keys)
    estimates = level.sketch.query_many(uniq)
    order = np.argsort(np.abs(estimates))
    for i in order:
        level.topk.offer(int(uniq[i]), float(estimates[i]))


def _baseline_universal_update(u, keys):
    depths = _baseline_deepest_levels(u.sampler, keys)
    for j, level in enumerate(u.levels):
        mask = depths >= j
        if not mask.any():
            break
        _baseline_level_update(level, keys[mask])
    u.packets += len(keys)


def _best_seconds(fn, repeats=7):
    """Min-of-N wall time; fn is warmed once before timing."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_speedup_countsketch_bulk(keys):
    """Packed-tabulation bincount path must be >= 3x the np.add.at path."""
    new = CountSketch(rows=5, width=2048, seed=1)
    old = CountSketch(rows=5, width=2048, seed=1)
    t_new = _best_seconds(lambda: new.update_array(keys))
    t_old = _best_seconds(lambda: _baseline_countsketch_update(old, keys))
    speedup = t_old / t_new
    _RESULTS["countsketch_bulk"] = {
        "packets": int(len(keys)),
        "new_ms": round(t_new * 1e3, 4),
        "baseline_ms": round(t_old * 1e3, 4),
        "speedup": round(speedup, 2),
        "new_mpps": round(len(keys) / t_new / 1e6, 2),
    }
    assert speedup >= 3.0, (
        f"CountSketch bulk path is only {speedup:.2f}x the np.add.at "
        f"baseline (need >= 3x)")


def test_speedup_universal_bulk(keys):
    """Argsort dispatch + packed sketches + bulk heap merge >= 2x."""
    new = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64, seed=1)
    old = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64, seed=1)
    t_new = _best_seconds(lambda: new.update_array(keys), repeats=5)
    t_old = _best_seconds(lambda: _baseline_universal_update(old, keys),
                          repeats=5)
    speedup = t_old / t_new
    _RESULTS["universal_bulk"] = {
        "packets": int(len(keys)),
        "new_ms": round(t_new * 1e3, 4),
        "baseline_ms": round(t_old * 1e3, 4),
        "speedup": round(speedup, 2),
        "new_mpps": round(len(keys) / t_new / 1e6, 2),
    }
    assert speedup >= 2.0, (
        f"UniversalSketch bulk path is only {speedup:.2f}x the np.add.at "
        f"baseline (need >= 2x)")


def test_batch_ingest_throughput(bench_trace):
    """End-to-end chunked ingest of the bench trace via BatchIngest."""
    rates = {}
    for chunk_size in (2048, 8192, 30_000):
        u = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                            seed=1)
        ingest = BatchIngest(u, chunk_size=chunk_size,
                             key_function=src_ip_key)
        report = ingest.ingest(bench_trace)
        assert report.packets == len(bench_trace)
        assert report.chunks == -(-len(bench_trace) // chunk_size)
        rates[str(chunk_size)] = {
            "packets_per_second": round(report.packets_per_second),
            "chunks": report.chunks,
        }
    _RESULTS["batch_ingest"] = {
        "packets": len(bench_trace),
        "by_chunk_size": rates,
    }


def test_batch_ingest_workers_sweep(keys):
    """Sharded multi-process ingest: exactness check + throughput sweep.

    Every worker count must reproduce the serial level counters bit for
    bit (sketch linearity).  Each point records two rates: the first
    ingest (which pays the one-time pool fork + slab allocation) and a
    second ingest on the now-warm pool — the steady-state rate every
    later epoch sees.
    """
    from repro.dataplane.parallel import ShardedIngest, \
        shared_memory_available

    def factory():
        return UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                               seed=1)

    serial = factory()
    serial.update_array(keys)
    sweep = {}
    for workers in (1, 2, 4):
        with ShardedIngest(factory, workers=workers,
                           chunk_size=8192) as ingest:
            report = ingest.ingest_keys(keys)  # cold: forks the pool
            warm = ingest.ingest_keys(keys)    # warm: pool reused
        for merged in (report.sketch, warm.sketch):
            for ls, lp in zip(serial.levels, merged.levels):
                assert np.array_equal(ls.sketch.table, lp.sketch.table)
                assert ls.packets == lp.packets
                assert ls.weight == lp.weight
        sweep[str(workers)] = {
            "packets_per_second": round(report.packets_per_second),
            "warm_packets_per_second": round(warm.packets_per_second),
            "parallel": report.parallel,
            "merge_ms": round(report.merge_seconds * 1e3, 4),
            "fallback_reason": report.fallback_reason,
        }
    import os
    _RESULTS["sharded_ingest"] = {
        "packets": int(len(keys)),
        "cpus": os.cpu_count(),
        "shared_memory": shared_memory_available(),
        "by_workers": sweep,
    }


def test_speedup_sharded_ingest(bench_trace):
    """>= 2x serial pps with a warm 4-worker pool — needs >= 4 cores.

    The driver is warmed with one throwaway epoch before timing so the
    floor measures the steady state the persistent pool exists for (hot
    workers, slab already mapped), not the one-time fork cost.  On
    smaller hosts the process pool cannot beat one busy core, so the
    floor is skipped (recorded in the results JSON as skipped) instead
    of producing a meaningless failure.
    """
    import os
    from repro.dataplane.parallel import ShardedIngest, \
        shared_memory_available

    cpus = os.cpu_count() or 1
    if cpus < 4 or not shared_memory_available():
        reason = (f"needs >= 4 CPUs and shared memory "
                  f"(host has {cpus} CPU(s), shm="
                  f"{shared_memory_available()})")
        _RESULTS["sharded_speedup"] = {"skipped": reason}
        pytest.skip(reason)

    # A stream large enough that scatter/merge overhead amortises.
    quick = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
    gen = np.random.default_rng(3)
    big = gen.integers(0, 1 << 20,
                       2_000_000 if quick else 10_000_000).astype(np.uint64)

    def factory():
        return UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                               seed=1)

    serial = BatchIngest(factory(), chunk_size=65_536).ingest_keys(big)
    with ShardedIngest(factory, workers=4, chunk_size=65_536,
                       start_method="fork") as driver:
        driver.ingest_keys(big[:200_000])  # fork workers, map the slab
        sharded = driver.ingest_keys(big)  # steady-state epoch
    speedup = sharded.packets_per_second / serial.packets_per_second
    _RESULTS["sharded_speedup"] = {
        "packets": int(len(big)),
        "cpus": cpus,
        "serial_mpps": round(serial.packets_per_second / 1e6, 2),
        "sharded_mpps": round(sharded.packets_per_second / 1e6, 2),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 2.0, (
        f"4-worker sharded ingest is only {speedup:.2f}x serial "
        f"(need >= 2x on a >= 4-core host)")


def test_sharded_crossover():
    """Serial-vs-pooled crossover curve: pps by stream size and workers.

    Every sweep point below reuses one persistent :class:`ShardedIngest`
    per worker count (workers forked once, slab allocated once), so the
    recorded rates measure the per-epoch marginal cost of sharding — the
    quantity that decides where the crossover sits.  On >= 4-core hosts
    the sweep runs at 1M-10M packets and enforces the >= 2x floor at the
    largest size; smaller hosts record a scaled-down curve with no floor
    so BENCH_throughput.json always carries crossover data.  Merged
    counters are checked bit-for-bit against serial at every point.
    """
    import os
    from repro.dataplane.parallel import ShardedIngest, \
        shared_memory_available

    if not shared_memory_available():
        _RESULTS["sharded_crossover"] = {
            "skipped": "POSIX shared memory unavailable"}
        pytest.skip("sharded ingest needs POSIX shared memory")

    cpus = os.cpu_count() or 1
    quick = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
    full = cpus >= 4
    if full:
        sizes = (1_000_000, 4_000_000) if quick \
            else (1_000_000, 4_000_000, 10_000_000)
        worker_counts = (2, 4)
    else:
        sizes = (300_000, 1_000_000)
        worker_counts = (2,)

    def factory():
        return UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                               seed=1)

    chunk = 65_536
    gen = np.random.default_rng(7)
    drivers = {w: ShardedIngest(factory, workers=w, chunk_size=chunk)
               for w in worker_counts}
    warmup = gen.integers(0, 1 << 20, 100_000).astype(np.uint64)
    for driver in drivers.values():
        driver.ingest_keys(warmup)  # fork workers, map the slab

    by_size = {}
    try:
        for size in sizes:
            stream = gen.integers(0, 1 << 20, size).astype(np.uint64)
            serial_sketch = factory()
            serial = BatchIngest(serial_sketch,
                                 chunk_size=chunk).ingest_keys(stream)
            point = {"serial_pps": round(serial.packets_per_second),
                     "by_workers": {}}
            for workers, driver in drivers.items():
                report = driver.ingest_keys(stream)
                assert report.parallel, report.fallback_reason
                for ls, lp in zip(serial_sketch.levels,
                                  report.sketch.levels):
                    assert np.array_equal(ls.sketch.table, lp.sketch.table)
                point["by_workers"][str(workers)] = {
                    "packets_per_second": round(report.packets_per_second),
                    "speedup": round(report.packets_per_second
                                     / serial.packets_per_second, 2),
                }
            by_size[str(size)] = point
    finally:
        for driver in drivers.values():
            driver.close()

    crossover = next(
        (size for size in sizes
         if max(v["packets_per_second"]
                for v in by_size[str(size)]["by_workers"].values())
         >= by_size[str(size)]["serial_pps"]), None)
    _RESULTS["sharded_crossover"] = {
        "cpus": cpus,
        "full_sweep": full,
        "chunk_size": chunk,
        "by_size": by_size,
        "crossover_packets": crossover,
    }
    if full:
        largest = by_size[str(sizes[-1])]
        best = max(v["speedup"] for v in largest["by_workers"].values())
        assert best >= 2.0, (
            f"pooled sharded ingest peaks at {best:.2f}x serial at "
            f"{sizes[-1]} packets (need >= 2x on a >= 4-core host)")


def test_bulk_countsketch(benchmark, keys):
    benchmark(lambda: CountSketch(rows=5, width=2048, seed=1)
              .update_array(keys))


def test_bulk_countmin(benchmark, keys):
    benchmark(lambda: CountMinSketch(rows=3, width=2048, seed=1)
              .update_array(keys))


def test_bulk_kary(benchmark, keys):
    benchmark(lambda: KArySketch(rows=5, width=2048, seed=1)
              .update_array(keys))


def test_bulk_bitmap(benchmark, keys):
    benchmark(lambda: LinearCounter(bits=1 << 16, seed=1)
              .update_array(keys))


def test_bulk_hyperloglog(benchmark, keys):
    benchmark(lambda: HyperLogLog(precision=12, seed=1).update_array(keys))


def test_bulk_universal_sketch(benchmark, keys):
    benchmark(lambda: UniversalSketch(levels=8, rows=5, width=2048,
                                      heap_size=64, seed=1)
              .update_array(keys))


def test_bulk_opensketch_hh_task(benchmark, keys):
    benchmark(lambda: HierarchicalHeavyHitterTask(rows=3, width=2048, seed=1)
              .update_array(keys))


def test_bulk_opensketch_suite(benchmark, keys):
    """All three OpenSketch tasks back to back — the suite UnivMon
    replaces with the single instance above."""
    def run():
        HierarchicalHeavyHitterTask(rows=3, width=2048, seed=1) \
            .update_array(keys)
        ChangeDetectionTask(rows=5, width=2048, seed=1).update_array(keys)
        DDoSDetectionTask(method="bitmap", memory_bytes=1 << 13, seed=1) \
            .update_array(keys)
    benchmark(run)


def test_scalar_universal_sketch(benchmark, keys):
    """Per-packet path on a 2k sample (the non-vectorised deployment)."""
    sample = keys[:2000].tolist()

    def run():
        u = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                            seed=1)
        for k in sample:
            u.update(k)
    benchmark(run)


def test_scalar_cm_heap_task(benchmark, keys):
    sample = keys[:2000].tolist()

    def run():
        t = HeavyHitterTask(rows=3, width=2048, seed=1)
        for k in sample:
            t.update(k)
    benchmark(run)


def test_control_plane_gsum_estimation(benchmark, keys):
    """Offline cost of running Algorithm 2 for all four tasks."""
    u = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64, seed=1)
    u.update_array(keys)

    def estimate_all():
        u.heavy_hitters(0.005)
        u.cardinality()
        u.entropy()
        from repro.core.gsum import estimate_l1
        estimate_l1(u)
    benchmark(estimate_all)
