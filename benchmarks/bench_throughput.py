"""THRPT — wall-clock update throughput of every sketch's hot path.

pytest-benchmark timings for the bulk (vectorised) update path over a
shared 30k-packet trace, plus the per-packet scalar path on a sample.
These are the numbers a deployment would size against; they complement
the op-cost model with real CPython timings.
"""

import numpy as np
import pytest

from repro.dataplane.keys import src_ip_key
from repro.core.universal import UniversalSketch
from repro.opensketch.tasks import (
    ChangeDetectionTask,
    DDoSDetectionTask,
    HeavyHitterTask,
    HierarchicalHeavyHitterTask,
)
from repro.sketches.bitmap import LinearCounter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kary import KArySketch


@pytest.fixture(scope="module")
def keys(bench_trace):
    return bench_trace.key_array(src_ip_key)


def test_bulk_countsketch(benchmark, keys):
    benchmark(lambda: CountSketch(rows=5, width=2048, seed=1)
              .update_array(keys))


def test_bulk_countmin(benchmark, keys):
    benchmark(lambda: CountMinSketch(rows=3, width=2048, seed=1)
              .update_array(keys))


def test_bulk_kary(benchmark, keys):
    benchmark(lambda: KArySketch(rows=5, width=2048, seed=1)
              .update_array(keys))


def test_bulk_bitmap(benchmark, keys):
    benchmark(lambda: LinearCounter(bits=1 << 16, seed=1)
              .update_array(keys))


def test_bulk_hyperloglog(benchmark, keys):
    benchmark(lambda: HyperLogLog(precision=12, seed=1).update_array(keys))


def test_bulk_universal_sketch(benchmark, keys):
    benchmark(lambda: UniversalSketch(levels=8, rows=5, width=2048,
                                      heap_size=64, seed=1)
              .update_array(keys))


def test_bulk_opensketch_hh_task(benchmark, keys):
    benchmark(lambda: HierarchicalHeavyHitterTask(rows=3, width=2048, seed=1)
              .update_array(keys))


def test_bulk_opensketch_suite(benchmark, keys):
    """All three OpenSketch tasks back to back — the suite UnivMon
    replaces with the single instance above."""
    def run():
        HierarchicalHeavyHitterTask(rows=3, width=2048, seed=1) \
            .update_array(keys)
        ChangeDetectionTask(rows=5, width=2048, seed=1).update_array(keys)
        DDoSDetectionTask(method="bitmap", memory_bytes=1 << 13, seed=1) \
            .update_array(keys)
    benchmark(run)


def test_scalar_universal_sketch(benchmark, keys):
    """Per-packet path on a 2k sample (the non-vectorised deployment)."""
    sample = keys[:2000].tolist()

    def run():
        u = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64,
                            seed=1)
        for k in sample:
            u.update(k)
    benchmark(run)


def test_scalar_cm_heap_task(benchmark, keys):
    sample = keys[:2000].tolist()

    def run():
        t = HeavyHitterTask(rows=3, width=2048, seed=1)
        for k in sample:
            t.update(k)
    benchmark(run)


def test_control_plane_gsum_estimation(benchmark, keys):
    """Offline cost of running Algorithm 2 for all four tasks."""
    u = UniversalSketch(levels=8, rows=5, width=2048, heap_size=64, seed=1)
    u.update_array(keys)

    def estimate_all():
        u.heavy_hitters(0.005)
        u.cardinality()
        u.entropy()
        from repro.core.gsum import estimate_l1
        estimate_l1(u)
    benchmark(estimate_all)
