"""SCEN — per-scenario ingest throughput and estimation error.

One bench per workload scenario in the scenario library: generate the
scenario at the acceptance seed, time the bulk-ingest path per epoch at
the 256 KB acceptance budget, and record the end-to-end estimation
error against the scenario's exact ground truth (F0, entropy relative
error; heavy-hitter FN; total-change-D relative error).  These are the
numbers the acceptance matrix ceilings were calibrated from, refreshed
as a benchmark artifact.

Results merge into ``benchmarks/results/BENCH_scenarios.json`` (a
``-k``-filtered run refreshes its own scenarios without dropping the
rest) and the scenario x statistic error table is rewritten to
``scenarios.txt`` for the EXPERIMENTS.md splice.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import QUICK, write_result

from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    g_core,
    heavy_changes,
)
from repro.dataplane.scenarios import make_scenario, scenario_names
from repro.eval.experiments import _univmon_for
from repro.eval.metrics import detection_rates, relative_error

MEMORY_BYTES = 256 * 1024
BASE_FLOWS = 5_000
SEED = 1000
SCALE = 0.25 if QUICK else 1.0
ALPHA = 0.005
PHI = 0.03

_RESULTS = {}


def _table(results):
    rows = [f"scenario x statistic error sweep "
            f"(256 KB budget, seed {SEED}, scale {SCALE})",
            f"{'scenario':16s} {'Mpps':>6s} {'hh_fn':>7s} {'f0':>7s} "
            f"{'entropy':>8s} {'change_D':>9s}"]
    for name in sorted(results):
        r = results[name]
        rows.append(
            f"{name:16s} {r['ingest_mpps']:6.2f} {r['hh_fn_max']:7.3f} "
            f"{r['f0_relerr_max']:7.3f} {r['entropy_relerr_max']:8.3f} "
            f"{r['change_d_relerr_max']:9.3f}")
    return "\n".join(rows)


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    """Merged-JSON persistence (the BENCH_throughput pattern): a
    filtered run updates its own scenarios and the summary table is
    rebuilt from the merged file, not just this run's entries."""
    yield
    if not _RESULTS:
        return
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    out = results_dir / "BENCH_scenarios.json"
    merged = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text())
        except ValueError:
            merged = {}
    merged.update(_RESULTS)
    out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    write_result("scenarios.txt", _table(merged))


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_ingest_and_error(name):
    scenario = make_scenario(name, seed=SEED, scale=SCALE)
    epoch_keys = scenario.epoch_keys()

    sketches = []
    ingested = 0
    elapsed = 0.0
    for keys in epoch_keys:
        sketch = _univmon_for(MEMORY_BYTES, BASE_FLOWS, seed=SEED + 17)
        start = time.perf_counter()
        sketch.update_array(keys)
        elapsed += time.perf_counter() - start
        ingested += len(keys)
        sketches.append(sketch)

    hh_fns, f0_errs, h_errs, d_errs = [], [], [], []
    for e, (truth, sketch) in enumerate(zip(scenario.truths, sketches)):
        true_hh = truth.heavy_hitter_keys(ALPHA)
        _, fn = detection_rates(
            true_hh, {k for k, _ in g_core(sketch, ALPHA)})
        hh_fns.append(fn)
        f0_errs.append(relative_error(
            estimate_cardinality(sketch), truth.distinct))
        h_errs.append(relative_error(
            estimate_entropy(sketch, base=2.0), truth.entropy(base=2.0)))
        if e > 0:
            _, total = heavy_changes(sketch, sketches[e - 1], PHI)
            d_errs.append(relative_error(
                total, truth.total_change(scenario.truths[e - 1])))

    rate = ingested / elapsed if elapsed > 0 else 0.0
    _RESULTS[name] = {
        "scale": SCALE,
        "epochs": scenario.n_epochs,
        "packets": ingested,
        "ingest_pps": round(rate),
        "ingest_mpps": round(rate / 1e6, 3),
        "hh_fn_max": round(float(max(hh_fns)), 4),
        "f0_relerr_max": round(float(max(f0_errs)), 4),
        "f0_relerr_median": round(float(np.median(f0_errs)), 4),
        "entropy_relerr_max": round(float(max(h_errs)), 4),
        "change_d_relerr_max": round(float(max(d_errs)), 4),
    }
    assert ingested == len(scenario.trace)
    assert rate > 0
