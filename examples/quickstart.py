#!/usr/bin/env python3
"""Quickstart: one universal sketch, four monitoring tasks.

Builds a synthetic 5-second backbone epoch, feeds it through a single
:class:`~repro.core.universal.UniversalSketch`, and estimates heavy
hitters, distinct sources, entropy, and total volume from that one
structure — the paper's "RISC" pitch in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import SyntheticTraceConfig, UniversalSketch, generate_trace
from repro.core.gsum import estimate_l1
from repro.dataplane.keys import src_ip_key
from repro.dataplane.packet import format_ipv4
from repro.eval.groundtruth import GroundTruth


def main() -> None:
    # --- a 5-second epoch of synthetic backbone traffic ---------------
    trace = generate_trace(SyntheticTraceConfig(
        packets=50_000, flows=8_000, zipf_skew=1.1, duration=5.0, seed=7))
    print(f"trace: {len(trace)} packets, "
          f"{trace.distinct(src_ip_key)} distinct sources")

    # --- the data plane: ONE generic sketch ---------------------------
    sketch = UniversalSketch.for_memory_budget(
        512 * 1024,                       # 512 KB budget, like a switch SRAM slice
        levels=UniversalSketch.levels_for(8_000),
        rows=5, heap_size=64, seed=1)
    sketch.update_array(trace.key_array(src_ip_key))
    print(f"sketch: {sketch.num_levels + 1} Count Sketch levels, "
          f"{sketch.memory_bytes() / 1024:.0f} KB")

    # --- the control plane: many tasks, zero data-plane changes -------
    truth = GroundTruth(trace, src_ip_key)

    print("\nheavy hitters (> 0.5% of traffic):")
    for key, estimate in sketch.heavy_hitters(0.005):
        true = truth.frequency(key)
        print(f"  {format_ipv4(key):15s}  est {estimate:8.0f}  true {true}")

    distinct = sketch.cardinality()
    print(f"\ndistinct sources : est {distinct:8.0f}   "
          f"true {truth.distinct}")

    entropy = sketch.entropy()
    print(f"source entropy   : est {entropy:8.3f}   "
          f"true {truth.entropy():.3f} bits")

    volume = estimate_l1(sketch)
    print(f"total volume (L1): est {volume:8.0f}   true {truth.total}")


if __name__ == "__main__":
    main()
