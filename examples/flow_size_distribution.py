#!/usr/bin/env python3
"""Flow size distribution from a counter array (intro metric [29]).

MRAC (Kumar et al.): the data plane is just ``m`` counters and one hash;
an offline EM de-convolves hash collisions from the counter-value
histogram to recover "how many flows sent exactly s packets".  This
example compares the EM estimate against the raw (collision-corrupted)
histogram and the exact distribution, at a load factor where the
difference is visible.

Run:  python examples/flow_size_distribution.py
"""

import numpy as np

from repro import SyntheticTraceConfig, generate_trace
from repro.dataplane.keys import src_ip_key
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import wmrd
from repro.sketches.mrac import MRACSketch

MAX_SIZE = 30


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(
        packets=25_000, flows=4_000, zipf_skew=1.1, duration=5.0, seed=13))
    truth = GroundTruth(trace, src_ip_key)
    true_phi = truth.flow_size_distribution(MAX_SIZE)

    sketch = MRACSketch(counters=4096, seed=17, max_size=MAX_SIZE,
                        em_iterations=20)
    sketch.update_array(trace.key_array(src_ip_key))
    print(f"{truth.distinct} flows hashed into {sketch.m} counters "
          f"(load factor {sketch.load_factor():.2f}, "
          f"{sketch.memory_bytes() / 1024:.0f} KB)\n")

    phi = sketch.estimate_distribution()
    raw = np.zeros(MAX_SIZE + 1)
    for value, count in sketch.observed_histogram().items():
        raw[min(value, MAX_SIZE)] += count

    print(f"{'size':>4} {'true':>7} {'raw hist':>9} {'EM est':>8}")
    for s in list(range(1, 9)) + [10, 15, 20]:
        print(f"{s:>4} {true_phi[s]:>7.0f} {raw[s]:>9.0f} {phi[s]:>8.0f}")

    print(f"\nWMRD  raw histogram vs truth : "
          f"{wmrd(raw[1:], true_phi[1:]):.3f}")
    print(f"WMRD  EM estimate vs truth   : "
          f"{wmrd(phi[1:], true_phi[1:]):.3f}   (lower is better)")
    print(f"flow count: true {truth.distinct}, "
          f"EM {sketch.estimate_flow_count():.0f}")


if __name__ == "__main__":
    main()
