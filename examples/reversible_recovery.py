#!/usr/bin/env python3
"""Recovering *which* key changed, with a reversible sketch (§5
"Reversibility").

Small-memory sketches hash keys away; after detecting that *something*
changed, operators want to know *what*.  The paper points at reversible
hashing (Schweller et al.) as the answer.  This example sketches two
epochs with a reversible sketch (modular hashing), subtracts them, and
recovers the culprit IPs of the heavy changes from the difference
sketch alone — no candidate list, no flow table.

Run:  python examples/reversible_recovery.py
"""

import numpy as np

from repro.dataplane.packet import format_ipv4
from repro.sketches.reversible import ReversibleSketch

CULPRITS = {
    0xC0A80164: +8_000,   # 192.168.1.100 surges
    0x0A141E28: -6_000,   # 10.20.30.40 goes dark
}


def main() -> None:
    rng = np.random.default_rng(3)
    background = rng.integers(0, 1 << 32, size=30_000, dtype=np.uint64)

    epoch_a = ReversibleSketch(rows=5, chunk_bits=8,
                               bucket_bits_per_chunk=3, seed=9)
    epoch_b = ReversibleSketch(rows=5, chunk_bits=8,
                               bucket_bits_per_chunk=3, seed=9)

    # Shared background traffic in both epochs (slightly resampled).
    epoch_a.update_array(background)
    epoch_b.update_array(rng.permutation(background))
    # Epoch A additionally carries the soon-to-vanish flow; epoch B the
    # surge.
    epoch_a.update(0x0A141E28, 6_000)
    epoch_b.update(0x0A141E28, 0)
    epoch_b.update(0xC0A80164, 8_000)

    diff = epoch_b.subtract(epoch_a)
    print(f"sketch: {diff.rows} rows x {diff.width} buckets "
          f"({diff.memory_bytes() / 1024:.0f} KB), keys never stored\n")

    print("recovered heavy-change keys (threshold |delta| >= 3000):")
    for key, delta in diff.recover_heavy_keys(threshold=3000):
        expected = CULPRITS.get(key)
        verdict = (f"expected {expected:+d}" if expected is not None
                   else "FALSE POSITIVE")
        print(f"  {format_ipv4(key):15s} delta {delta:+9.0f}   [{verdict}]")

    print("\nboth culprit addresses are recovered bit-for-bit from the\n"
          "difference sketch.  (Modular hashing can admit rare aliases —\n"
          "keys agreeing with a culprit's chunk hashes in every row; more\n"
          "rows suppress them exponentially.)")


if __name__ == "__main__":
    main()
