#!/usr/bin/env python3
"""Network-wide monitoring across four switches (§5 "Distributed
monitoring").

A star topology's edge switches each sketch the traffic entering through
them (source-prefix ingress assignment); the controller merges the
per-switch universal sketches — exact, by linearity — and answers
network-wide queries no single switch could.

Run:  python examples/distributed_monitoring.py
"""

from repro import (
    DistributedMonitor,
    NetworkTopology,
    SyntheticTraceConfig,
    UniversalSketch,
    generate_trace,
)
from repro.dataplane.keys import src_ip_key
from repro.dataplane.packet import format_ipv4
from repro.eval.groundtruth import GroundTruth


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(
        packets=60_000, flows=8_000, zipf_skew=1.1, duration=5.0, seed=17))

    topology = NetworkTopology.star(leaves=4)
    monitor = DistributedMonitor(
        topology,
        sketch_factory=lambda: UniversalSketch(
            levels=9, rows=5, width=2048, heap_size=64, seed=23),
        key_function=src_ip_key)

    monitor.process_trace(trace)

    print("per-switch load (packets sketched at ingress):")
    for switch, packets in sorted(monitor.load_per_switch().items()):
        print(f"  {switch:6s} {packets:7d}")

    truth = GroundTruth(trace, src_ip_key)
    print("\nnetwork-wide view from merged sketches:")
    print(f"  total packets     : {monitor.network_sketch().total_weight} "
          f"(true {truth.total})")
    print(f"  distinct sources  : {monitor.cardinality():.0f} "
          f"(true {truth.distinct})")
    print(f"  source entropy    : {monitor.entropy():.3f} "
          f"(true {truth.entropy():.3f}) bits")

    print("\nnetwork-wide heavy hitters (> 0.5%):")
    true_keys = truth.heavy_hitter_keys(0.005)
    for key, estimate in monitor.heavy_hitters(0.005):
        flag = "ok" if key in true_keys else "??"
        print(f"  {format_ipv4(key):15s} est {estimate:8.0f} [{flag}]")


if __name__ == "__main__":
    main()
