#!/usr/bin/env python3
"""DDoS victim detection with the controller poll loop (§3.4 "DDoS").

Simulates 30 seconds of traffic with a DDoS burst in the middle: 6000
spoofed sources flood one destination during seconds 10-20.  The
controller polls a universal sketch every 5 seconds and flags epochs
whose estimated distinct-source count (G-sum with g(x) = x**0) exceeds
the threshold k.

Run:  python examples/ddos_detection.py
"""

from repro import (
    CardinalityApp,
    Controller,
    DDoSApp,
    SyntheticTraceConfig,
    UniversalSketch,
    generate_trace,
)
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import DDoSEvent

THRESHOLD_K = 4_500  # alarm when an epoch sees more distinct sources
# (baseline epochs carry ~2300 distinct sources, attack epochs ~6800)


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(
        packets=90_000, flows=5_000, zipf_skew=1.1, duration=30.0, seed=3,
        ddos_events=(
            DDoSEvent(start=10.0, end=20.0, num_sources=6_000,
                      packets_per_source=2),
        )))

    controller = Controller(
        sketch_factory=lambda: UniversalSketch.for_memory_budget(
            512 * 1024, levels=9, rows=5, heap_size=64, seed=11),
        key_function=src_ip_key,
        epoch_seconds=5.0)
    controller.register(DDoSApp(threshold_k=THRESHOLD_K))
    controller.register(CardinalityApp())

    print(f"monitoring 30s of traffic, k = {THRESHOLD_K} distinct sources\n")
    print(f"{'epoch':>5} {'window':>14} {'pkts':>7} "
          f"{'est distinct':>12} {'true':>7}  alarm")
    for report, epoch_trace in zip(controller.run_trace(trace),
                                   trace.epochs(5.0)):
        ddos = report["ddos"]
        true_distinct = epoch_trace.distinct(src_ip_key)
        alarm = "  *** DDoS ***" if ddos["victim"] else ""
        window = f"[{report.start_time:4.1f}, {report.end_time:4.1f}]s"
        print(f"{report.epoch_index:>5} {window:>14} {report.packets:>7} "
              f"{ddos['distinct_sources']:>12.0f} {true_distinct:>7}{alarm}")

    print("\nepochs 2-3 (the attack window) should carry the alarm.")


if __name__ == "__main__":
    main()
