#!/usr/bin/env python3
"""Hierarchical heavy hitters (§5 "Multidimensional data").

A single elephant host, a diffuse hot /16 (no single heavy host inside
it), and background noise.  Plain heavy hitters see only the elephant;
the hierarchical monitor — one universal sketch per prefix granularity —
also surfaces the /16, and *discounting* keeps the report non-redundant
(the elephant does not promote its ancestors).

Run:  python examples/hierarchical_heavy_hitters.py
"""

import numpy as np

from repro.controlplane.hhh import HierarchicalHeavyHitterMonitor
from repro.dataplane.keys import src_ip_key
from repro.dataplane.packet import format_ipv4
from repro.dataplane.trace import Trace
from repro.core.universal import UniversalSketch


def build_trace() -> Trace:
    rng = np.random.default_rng(7)
    elephant = np.full(5_000, 0xC0A80164, dtype=np.uint32)   # 192.168.1.100
    hot_subnet = (0x0B160000 | rng.integers(0, 1 << 16, size=5_000)) \
        .astype(np.uint32)                                   # 11.22.0.0/16
    noise = rng.integers(0x20000000, 0xDF000000, size=8_000,
                         dtype=np.uint32)
    src = np.concatenate([elephant, hot_subnet, noise])
    rng.shuffle(src)
    n = len(src)
    return Trace(
        np.linspace(0, 5.0, n), src,
        rng.integers(0x0A000000, 0xDF000000, size=n, dtype=np.uint32),
        rng.integers(1024, 65535, size=n, dtype=np.uint16),
        np.full(n, 443, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8),
    )


def main() -> None:
    trace = build_trace()
    factory = lambda: UniversalSketch(  # noqa: E731
        levels=9, rows=5, width=2048, heap_size=64, seed=3)

    # Plain (host-level) heavy hitters: only the elephant crosses 10%.
    flat = factory()
    flat.update_array(trace.key_array(src_ip_key))
    print("flat heavy hitters (>10% of traffic):")
    for key, weight in flat.heavy_hitters(0.10):
        print(f"  {format_ipv4(int(key)):15s} est {weight:7.0f}")

    # Hierarchical: the diffuse /16 appears too.
    monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
    monitor.process_trace(trace)
    print(f"\nhierarchical heavy hitters (>10%), "
          f"{monitor.memory_bytes() / 1024:.0f} KB across the ladder:")
    for item in monitor.hierarchical_heavy_hitters(0.10):
        print(f"  {item.cidr():20s} est {item.estimate:7.0f}   "
              f"discounted {item.discounted:7.0f}")

    print("\nexpected: 192.168.1.100/32 (the elephant) and 11.22.0.0/16 "
          "(the diffuse subnet); no /8 survives discounting.")


if __name__ == "__main__":
    main()
