#!/usr/bin/env python3
"""Heavy change detection by sketch subtraction (§3.4 "Change Detection").

Two adjacent 5-second epochs share a flow table, but 20 mid-rank flows
shift volume by 10x between them (half surge, half go quiet).  Both
epochs are sketched with the *same-seed* universal sketch; subtracting
the sketches (Count Sketch linearity) yields a sketch of the difference
stream, whose G-core lists the heavy-change keys and whose G-sum with
g(x) = |x| estimates the total change D.

The same task is run through the k-ary sketch baseline (Krishnamurthy et
al.) for comparison — note it needs to be *given* candidate keys, which
UnivMon's heaps provide for free.

Run:  python examples/change_detection.py
"""

from repro import UniversalSketch
from repro.core.gsum import heavy_changes
from repro.dataplane.keys import src_ip_key
from repro.dataplane.packet import format_ipv4
from repro.dataplane.trace import generate_epoch_pair
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates
from repro.opensketch.tasks import ChangeDetectionTask

PHI = 0.03          # a heavy change holds >= 3% of the total change
BUDGET = 256 * 1024  # per epoch sketch


def main() -> None:
    epoch_a, epoch_b = generate_epoch_pair(
        packets=40_000, flows=5_000, zipf_skew=1.1,
        num_changes=20, change_factor=10.0, seed=9,
        rank_lo=10, rank_hi=100)

    truth_a = GroundTruth(epoch_a, src_ip_key)
    truth_b = GroundTruth(epoch_b, src_ip_key)
    true_changes = truth_b.heavy_change_keys(truth_a, PHI)
    true_d = truth_b.total_change(truth_a)
    print(f"ground truth: D = {true_d}, "
          f"{len(true_changes)} heavy-change keys\n")

    # ---- UnivMon: sketch both epochs, subtract, threshold ------------
    sketch_a = UniversalSketch.for_memory_budget(BUDGET, levels=8, rows=5,
                                                 heap_size=64, seed=5)
    sketch_b = UniversalSketch.for_memory_budget(BUDGET, levels=8, rows=5,
                                                 heap_size=64, seed=5)
    sketch_a.update_array(epoch_a.key_array(src_ip_key))
    sketch_b.update_array(epoch_b.key_array(src_ip_key))
    changes, estimated_d = heavy_changes(sketch_b, sketch_a, PHI)
    print(f"UnivMon: estimated D = {estimated_d:.0f}")
    for key, delta in changes[:10]:
        marker = "+" if delta > 0 else "-"
        verdict = "true" if key in true_changes else "FALSE POSITIVE"
        print(f"  {marker} {format_ipv4(key):15s} delta {delta:+9.0f}  "
              f"[{verdict}]")
    fp, fn = detection_rates(true_changes, {k for k, _ in changes})
    print(f"UnivMon detection: FP rate {fp:.2f}, FN rate {fn:.2f}\n")

    # ---- k-ary baseline (given the true candidate key union) ---------
    task = ChangeDetectionTask(rows=5, width=BUDGET // (5 * 4), seed=5)
    task.update_array(epoch_a.key_array(src_ip_key))
    task.advance_epoch()
    task.update_array(epoch_b.key_array(src_ip_key))
    kary_changes, kary_d = task.heavy_changes(
        PHI, truth_b.union_keys(truth_a))
    fp, fn = detection_rates(true_changes, {k for k, _ in kary_changes})
    print(f"k-ary baseline: estimated D = {kary_d:.0f}, "
          f"FP rate {fp:.2f}, FN rate {fn:.2f}")


if __name__ == "__main__":
    main()
