#!/usr/bin/env python3
"""Adaptive zoom-in monitoring (§5 "Dynamic monitoring adjustments").

Epoch 1 watches source /8 prefixes; when one region turns hot the
monitor refines it to /16, then /24 — the data-plane primitive (the
universal sketch) never changes, only the key function does.  A sliding
three-epoch window (§5's sliding-window direction) is kept alongside for
"recent history" queries.

Run:  python examples/adaptive_zoom.py
"""

import numpy as np

from repro import SyntheticTraceConfig, UniversalSketch, generate_trace
from repro.core.windowed import SlidingWindowUniversalSketch
from repro.dataplane.packet import format_ipv4
from repro.dataplane.trace import Trace
from repro.network.zoom import ZoomMonitor


def epoch_trace(seed: int, hot_share: float) -> Trace:
    """Background traffic plus a hot 11.22.0.0/16 region."""
    base = generate_trace(SyntheticTraceConfig(
        packets=20_000, flows=3_000, duration=5.0, seed=seed))
    n_hot = int(len(base) * hot_share)
    rng = np.random.default_rng(seed + 1000)
    hot = Trace(
        np.sort(rng.uniform(0, 5.0, size=n_hot)),
        (0x0B160000 | rng.integers(0, 1 << 16, size=n_hot)).astype(np.uint32),
        rng.integers(0x0A000000, 0xDF000000, size=n_hot, dtype=np.uint32),
        rng.integers(1024, 65535, size=n_hot, dtype=np.uint16),
        np.full(n_hot, 80, dtype=np.uint16),
        np.full(n_hot, 6, dtype=np.uint8),
    )
    return Trace.concat([base, hot])


def main() -> None:
    factory = lambda: UniversalSketch(  # noqa: E731
        levels=9, rows=5, width=1024, heap_size=64, seed=41)
    zoom = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.10)
    window = SlidingWindowUniversalSketch(
        window_epochs=3, levels=9, rows=5, width=1024, heap_size=64, seed=43)

    for epoch_index in range(4):
        trace = epoch_trace(seed=epoch_index, hot_share=0.35)
        sealed = zoom.process_epoch(trace)
        window.update_array(zoom.keys_for(trace))
        window.advance_epoch()

        print(f"epoch {epoch_index}: {sealed.total_weight} packets")
        print("  hot keys at current granularity:")
        for key, weight in sealed.heavy_hitters(0.10)[:4]:
            print(f"    {format_ipv4(int(key)):15s} est {weight:7.0f}")
        regions = zoom.monitored_regions()
        if regions:
            rendered = ", ".join(f"{format_ipv4(v)}/{l}" for v, l in regions)
            print(f"  refined regions for next epoch: {rendered}")
        else:
            print("  no refined regions (coarse /8 everywhere)")

    print("\nsliding 3-epoch window (merged universal sketch):")
    print(f"  packets in window : {window.window_sketch().total_weight}")
    print(f"  distinct keys     : {window.cardinality():.0f}")
    print(f"  entropy           : {window.entropy():.3f} bits")
    print("\nexpected: the hot 11.22.0.0/16 is found at /8 in epoch 0, "
          "refined to /16, then /24 keys appear in later epochs.")


if __name__ == "__main__":
    main()
