#!/usr/bin/env python3
"""Entropy-based anomaly detection (§3.4 "Entropy Estimation").

Source-address entropy is a classic anomaly signal: a DDoS flood of
spoofed sources *raises* it sharply; a single heavy scanner *lowers* it.
This example tracks per-epoch entropy with the universal sketch
(g(x) = x·log x, H = log m − S/m) over a trace containing both kinds of
event, and flags epochs whose entropy leaves a trailing baseline band.

Run:  python examples/entropy_anomaly.py
"""

import numpy as np

from repro import SyntheticTraceConfig, UniversalSketch, generate_trace
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import DDoSEvent, Trace
from repro.eval.groundtruth import GroundTruth

BAND = 0.6  # alarm when |H - trailing mean| exceeds this many bits


def build_trace() -> Trace:
    """40 s of traffic: DDoS flood in [10, 15), scanner burst in [25, 30)."""
    base = generate_trace(SyntheticTraceConfig(
        packets=80_000, flows=6_000, zipf_skew=1.1, duration=40.0, seed=29,
        ddos_events=(DDoSEvent(start=10.0, end=15.0, num_sources=8_000,
                               packets_per_source=2),)))
    # Scanner: ONE source emitting a large burst (entropy collapses).
    n = 20_000
    rng = np.random.default_rng(31)
    scanner = Trace(
        np.sort(rng.uniform(25.0, 30.0, size=n)),
        np.full(n, 0xDEAD0001, dtype=np.uint32),
        rng.integers(0x0A000000, 0xDF000000, size=n, dtype=np.uint32),
        np.full(n, 40000, dtype=np.uint16),
        rng.integers(1, 1024, size=n, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8),
    )
    return Trace.concat([base, scanner])


def main() -> None:
    trace = build_trace()
    history = []
    print(f"{'epoch':>5} {'window':>16} {'H est':>7} {'H true':>7}  verdict")
    for index, epoch in enumerate(trace.epochs(5.0)):
        sketch = UniversalSketch.for_memory_budget(
            256 * 1024, levels=9, rows=5, heap_size=64, seed=37)
        sketch.update_array(epoch.key_array(src_ip_key))
        h = sketch.entropy()
        true_h = GroundTruth(epoch, src_ip_key).entropy()

        verdict = ""
        if len(history) >= 2:
            baseline = float(np.mean(history))
            if h > baseline + BAND:
                verdict = "ANOMALY: entropy surge (DDoS-like)"
            elif h < baseline - BAND:
                verdict = "ANOMALY: entropy collapse (scanner-like)"
        if not verdict:
            history.append(h)  # only calm epochs extend the baseline

        window = f"[{index * 5:4.1f}, {index * 5 + 5:4.1f}]s"
        print(f"{index:>5} {window:>16} {h:7.3f} {true_h:7.3f}  {verdict}")

    print("\nexpected: surge alarms in epochs 2, collapse alarms in epoch 5.")


if __name__ == "__main__":
    main()
