"""Documentation hygiene: the docs must reference real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _exists(relpath: str) -> bool:
    return (ROOT / relpath).exists()


class TestDesignDoc:
    def test_every_module_in_inventory_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(repro/[\w/]+\.py)`", text):
            assert _exists("src/" + match.group(1)), match.group(1)

    def test_every_bench_target_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(benchmarks/[\w]+\.py)`", text):
            assert _exists(match.group(1)), match.group(1)

    def test_paper_identity_check_present(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper-identity check" in text


class TestReadme:
    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.finditer(r"python (examples/[\w]+\.py)", text):
            assert _exists(match.group(1)), match.group(1)

    def test_bench_files_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.finditer(r"`(bench_[\w]+\.py)`", text):
            assert _exists("benchmarks/" + match.group(1)), match.group(1)

    def test_docs_referenced_exist(self):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/algorithms.md"):
            assert _exists(doc), doc


class TestExperimentsDoc:
    def test_result_files_referenced_are_generated_names(self):
        """Every results path mentioned must be produced by some bench."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        bench_sources = " ".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py"))
        for match in re.finditer(r"benchmarks/results/([\w]+\.txt)", text):
            assert match.group(1) in bench_sources, match.group(1)

    def test_every_figure_has_a_section(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Figure 4", "Figure 5", "Figure 6", "Figure 7",
                       "Overhead"):
            assert figure in text, figure


class TestExamplesRunnable:
    def test_examples_have_main_guard_and_docstring(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert text.lstrip().startswith(("#!", '"""')), path.name
