"""Tests for simple tabulation hashing."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.tabulation import TabulationHash

KEYS64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestTabulationHash:
    def test_deterministic_given_seed(self):
        a, b = TabulationHash(seed=1), TabulationHash(seed=1)
        for x in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            assert a(x) == b(x)

    def test_seeds_differ(self):
        a, b = TabulationHash(seed=1), TabulationHash(seed=2)
        assert [a(x) for x in range(64)] != [b(x) for x in range(64)]

    def test_output_is_64_bit(self):
        h = TabulationHash(seed=3)
        for x in range(200):
            assert 0 <= h(x) < (1 << 64)

    def test_handles_keys_above_64_bits_by_masking(self):
        h = TabulationHash(seed=4)
        assert h(1 << 64) == h(0)
        assert h((1 << 64) + 5) == h(5)

    def test_array_matches_scalar(self):
        h = TabulationHash(seed=5)
        xs = np.array([0, 1, 255, 256, 0xFFFFFFFFFFFFFFFF, 12345678901234],
                      dtype=np.uint64)
        assert [h(int(x)) for x in xs] == h.hash_array(xs).tolist()

    @given(KEYS64)
    @settings(max_examples=150)
    def test_property_array_matches_scalar(self, x):
        h = TabulationHash(seed=6)
        arr = np.array([x], dtype=np.uint64)
        assert h.hash_array(arr)[0] == h(x)

    def test_bucket_in_range(self):
        h = TabulationHash(seed=7)
        assert all(0 <= h.bucket(x, 13) < 13 for x in range(300))

    def test_sign_in_pm_one(self):
        h = TabulationHash(seed=8)
        values = {h.sign(x) for x in range(300)}
        assert values == {-1, 1}

    def test_avalanche_single_byte_change(self):
        """Changing one input byte should flip about half the output bits."""
        h = TabulationHash(seed=9)
        flips = []
        for x in range(500):
            diff = h(x) ^ h(x ^ 0xFF)
            flips.append(bin(diff).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 < mean < 40  # ideal: 32

    def test_uniform_buckets(self):
        h = TabulationHash(seed=10)
        width = 32
        counts = np.bincount([h.bucket(x, width) for x in range(width * 300)],
                             minlength=width)
        assert counts.min() > 180 and counts.max() < 440

    def test_shared_rng_yields_distinct_functions(self):
        rng = random.Random(0)
        h1, h2 = TabulationHash(rng=rng), TabulationHash(rng=rng)
        assert any(h1(x) != h2(x) for x in range(16))
