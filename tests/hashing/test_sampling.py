"""Tests for the UnivMon level sampler (Algorithm 1's hash stack)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.sampling import LevelSampler

KEYS = st.integers(min_value=0, max_value=(1 << 62) - 1)


class TestLevelSampler:
    def test_zero_levels_everything_at_zero(self):
        sampler = LevelSampler(0, seed=1)
        assert sampler.deepest_level(42) == 0

    def test_negative_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            LevelSampler(-1)

    def test_depth_in_range(self):
        sampler = LevelSampler(10, seed=2)
        for key in range(500):
            assert 0 <= sampler.deepest_level(key) <= 10

    def test_deterministic(self):
        a, b = LevelSampler(8, seed=3), LevelSampler(8, seed=3)
        assert [a.deepest_level(k) for k in range(200)] == \
               [b.deepest_level(k) for k in range(200)]

    def test_depth_is_first_zero_bit(self):
        """deepest_level must equal the definition via per-level bits."""
        sampler = LevelSampler(6, seed=4)
        for key in range(300):
            depth = 0
            for level in range(1, 7):
                if sampler.bit(level, key) == 1:
                    depth += 1
                else:
                    break
            assert sampler.deepest_level(key) == depth

    def test_bit_bounds_checked(self):
        sampler = LevelSampler(4, seed=5)
        with pytest.raises(ConfigurationError):
            sampler.bit(0, 1)
        with pytest.raises(ConfigurationError):
            sampler.bit(5, 1)

    def test_array_matches_scalar(self):
        sampler = LevelSampler(12, seed=6)
        keys = np.arange(1000, dtype=np.uint64)
        depths = sampler.deepest_level_array(keys)
        for k, d in zip(keys.tolist(), depths.tolist()):
            assert sampler.deepest_level(int(k)) == d

    def test_array_with_zero_levels(self):
        sampler = LevelSampler(0, seed=7)
        keys = np.arange(10, dtype=np.uint64)
        assert sampler.deepest_level_array(keys).tolist() == [0] * 10

    @given(KEYS)
    @settings(max_examples=100)
    def test_property_array_matches_scalar(self, key):
        sampler = LevelSampler(9, seed=8)
        arr = np.array([key], dtype=np.uint64)
        assert sampler.deepest_level_array(arr)[0] == sampler.deepest_level(key)

    def test_substream_sizes_halve(self):
        """|D_j| should be ~ n / 2**j — the construction's core property."""
        sampler = LevelSampler(8, seed=9)
        keys = np.arange(40_000, dtype=np.uint64)
        depths = sampler.deepest_level_array(keys)
        n = len(keys)
        for j in range(1, 6):
            in_level = int((depths >= j).sum())
            expected = n / 2 ** j
            assert 0.8 * expected < in_level < 1.2 * expected

    def test_membership_is_prefix_closed(self):
        """A key in D_j is by construction in D_{j-1} (depth semantics)."""
        sampler = LevelSampler(8, seed=10)
        # depth >= j implies depth >= j-1 trivially; check bits directly:
        for key in range(200):
            bits = [sampler.bit(level, key) for level in range(1, 9)]
            depth = sampler.deepest_level(key)
            assert all(b == 1 for b in bits[:depth])
            if depth < 8:
                assert bits[depth] == 0

    def test_compatible_with(self):
        a = LevelSampler(8, seed=1)
        b = LevelSampler(8, seed=1)
        c = LevelSampler(8, seed=2)
        d = LevelSampler(6, seed=1)
        assert a.compatible_with(b)
        assert not a.compatible_with(c)
        assert not a.compatible_with(d)
        assert not LevelSampler(8).compatible_with(LevelSampler(8))


class TestBitArray:
    """The bulk sampling-bit path (one packed gather for all levels)
    must match the scalar ``bit`` walk, including past the 63-level
    packing boundary where it falls back to per-level hashing."""

    @pytest.mark.parametrize("levels", [1, 8, 63, 64, 70])
    def test_bit_array_matches_scalar(self, levels):
        sampler = LevelSampler(levels, seed=21)
        keys = (np.arange(200, dtype=np.uint64)
                * np.uint64(0x9E3779B97F4A7C15))
        for level in range(1, min(levels, 5) + 1):
            bits = sampler.bit_array(level, keys)
            assert bits.dtype == np.int64
            assert bits.tolist() == [sampler.bit(level, int(k))
                                     for k in keys.tolist()]

    def test_bit_array_bounds_checked(self):
        sampler = LevelSampler(4, seed=22)
        keys = np.arange(5, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            sampler.bit_array(0, keys)
        with pytest.raises(ConfigurationError):
            sampler.bit_array(5, keys)

    def test_bit_array_empty_keys(self):
        sampler = LevelSampler(6, seed=23)
        assert sampler.bit_array(
            3, np.array([], dtype=np.uint64)).tolist() == []

    def test_parity_words_pack_every_level(self):
        sampler = LevelSampler(12, seed=24)
        keys = np.arange(300, dtype=np.uint64)
        words = sampler.parity_words(keys)
        assert words is not None
        for level in range(1, 13):
            extracted = ((words >> np.int64(level - 1)) & np.int64(1))
            assert extracted.tolist() == \
                sampler.bit_array(level, keys).tolist()

    def test_parity_words_unpackable_past_63_levels(self):
        sampler = LevelSampler(64, seed=25)
        assert sampler.parity_words(np.arange(4, dtype=np.uint64)) is None


class TestPackedDepthParity:
    """The fused parity-table fast path must match the scalar depth walk,
    including at the 63-level packing boundary and past it (fallback)."""

    @pytest.mark.parametrize("levels", [1, 7, 63, 64, 70])
    def test_array_matches_scalar(self, levels):
        sampler = LevelSampler(levels, seed=31)
        keys = (np.arange(300, dtype=np.uint64)
                * np.uint64(0x9E3779B97F4A7C15))
        vec = sampler.deepest_level_array(keys)
        assert vec.dtype == np.int64
        scalar = [sampler.deepest_level(int(k)) for k in keys.tolist()]
        assert vec.tolist() == scalar
        assert np.all(vec >= 0) and np.all(vec <= levels)
