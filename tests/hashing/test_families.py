"""Unit + statistical tests for the polynomial hash families."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.families import (
    MERSENNE_PRIME_61,
    BucketHash,
    PairwiseHash,
    PolynomialHash,
    SignHash,
    _mod_mersenne,
)

KEYS = st.integers(min_value=0, max_value=MERSENNE_PRIME_61 - 1)


class TestModMersenne:
    def test_small_values_unchanged(self):
        assert _mod_mersenne(0) == 0
        assert _mod_mersenne(12345) == 12345

    def test_prime_maps_to_zero(self):
        assert _mod_mersenne(MERSENNE_PRIME_61) == 0

    def test_matches_builtin_mod(self):
        rng = random.Random(0)
        for _ in range(200):
            x = rng.getrandbits(120)
            assert _mod_mersenne(x) == x % MERSENNE_PRIME_61

    @given(st.integers(min_value=0, max_value=(1 << 122) - 1))
    @settings(max_examples=200)
    def test_property_matches_builtin(self, x):
        assert _mod_mersenne(x) == x % MERSENNE_PRIME_61


class TestPolynomialHash:
    def test_deterministic_given_seed(self):
        a, b = PolynomialHash(k=3, seed=7), PolynomialHash(k=3, seed=7)
        for x in (0, 1, 42, 1 << 40):
            assert a(x) == b(x)

    def test_different_seeds_differ(self):
        a, b = PolynomialHash(k=2, seed=1), PolynomialHash(k=2, seed=2)
        outputs_a = [a(x) for x in range(64)]
        outputs_b = [b(x) for x in range(64)]
        assert outputs_a != outputs_b

    def test_output_in_field(self):
        h = PolynomialHash(k=4, seed=3)
        for x in range(100):
            assert 0 <= h(x) < MERSENNE_PRIME_61

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            PolynomialHash(k=0)

    def test_hash_many_matches_scalar(self):
        h = PolynomialHash(k=2, seed=5)
        xs = [3, 1 << 33, 999]
        assert h.hash_many(xs) == [h(x) for x in xs]

    def test_hash_array_matches_scalar(self):
        h = PolynomialHash(k=3, seed=11)
        xs = np.array([0, 1, 2, 1 << 50, 123456789], dtype=np.uint64)
        out = h.hash_array(xs)
        assert out.dtype == np.uint64
        for x, v in zip(xs.tolist(), out.tolist()):
            assert h(int(x)) == int(v)

    def test_degree_matches_k(self):
        h = PolynomialHash(k=5, seed=9)
        assert len(h.coefficients) == 5
        assert h.coefficients[-1] != 0

    @given(KEYS, KEYS)
    @settings(max_examples=100)
    def test_property_pairwise_collision_unlikely(self, x, y):
        # For a fixed random function, distinct inputs rarely collide.
        h = PairwiseHash(seed=13)
        if x != y:
            # p(collision) = 1/p; treat any collision as failure.
            assert h(x) != h(y)


class TestPairwiseIndependence:
    def test_uniformity_of_low_bit(self):
        """The low bit of a pairwise hash should be ~ Bernoulli(1/2)."""
        h = PairwiseHash(seed=21)
        bits = [h(x) & 1 for x in range(4000)]
        mean = sum(bits) / len(bits)
        assert 0.45 < mean < 0.55

    def test_pairwise_joint_distribution_over_draws(self):
        """True pairwise independence: over random function draws, the
        joint low-bit distribution of two fixed points is uniform on
        {0,1}**2 (each cell probability ~= 1/4)."""
        x, y = 17, 961748941
        joint = np.zeros((2, 2), dtype=int)
        for seed in range(2000):
            h = PairwiseHash(seed=seed)
            joint[h(x) & 1, h(y) & 1] += 1
        fractions = joint / joint.sum()
        assert np.all(np.abs(fractions - 0.25) < 0.04)


class TestBucketHash:
    def test_range(self):
        h = BucketHash(width=17, seed=1)
        assert all(0 <= h(x) < 17 for x in range(500))

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            BucketHash(width=0)

    def test_roughly_uniform(self):
        width = 16
        h = BucketHash(width=width, seed=2)
        counts = np.bincount([h(x) for x in range(width * 500)],
                             minlength=width)
        # Each bucket expects 500; allow generous slack.
        assert counts.min() > 350 and counts.max() < 650

    def test_array_matches_scalar(self):
        h = BucketHash(width=101, seed=3)
        xs = np.arange(50, dtype=np.uint64)
        assert [h(int(x)) for x in xs] == h.hash_array(xs).tolist()


class TestSignHash:
    def test_values_are_signs(self):
        s = SignHash(seed=4)
        assert set(s(x) for x in range(200)) <= {-1, 1}

    def test_balanced(self):
        s = SignHash(seed=5)
        total = sum(s(x) for x in range(5000))
        assert abs(total) < 300  # ~ sqrt(5000) * 4

    def test_array_matches_scalar(self):
        s = SignHash(seed=6)
        xs = np.arange(100, dtype=np.uint64)
        assert [s(int(x)) for x in xs] == s.hash_array(xs).tolist()

    def test_deterministic(self):
        a, b = SignHash(seed=8), SignHash(seed=8)
        assert [a(x) for x in range(50)] == [b(x) for x in range(50)]


class TestSharedRng:
    def test_functions_from_one_rng_are_distinct(self):
        rng = random.Random(0)
        h1 = PairwiseHash(rng=rng)
        h2 = PairwiseHash(rng=rng)
        assert [h1(x) for x in range(32)] != [h2(x) for x in range(32)]
