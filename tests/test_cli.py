"""Tests for the ``univmon`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "univmon" in capsys.readouterr().out

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestGenerate:
    def test_csv_generation(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        code = main(["generate", "--out", str(out), "--packets", "500",
                     "--flows", "50", "--duration", "2", "--seed", "1"])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_pcap_generation(self, tmp_path):
        out = tmp_path / "trace.pcap"
        assert main(["generate", "--out", str(out), "--packets", "200",
                     "--flows", "30"]) == 0
        from repro.dataplane.pcap import load_pcap
        assert len(load_pcap(out)) == 200

    def test_ddos_injection(self, tmp_path):
        out = tmp_path / "ddos.csv"
        assert main(["generate", "--out", str(out), "--packets", "500",
                     "--flows", "50", "--duration", "10",
                     "--ddos-at", "5", "--ddos-sources", "300"]) == 0
        from repro.dataplane.csvtrace import load_csv
        from repro.dataplane.keys import src_ip_key
        trace = load_csv(out)
        assert trace.slice_time(5, 10).distinct(src_ip_key) > 250


class TestRun:
    def test_end_to_end_monitoring(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "2000",
              "--flows", "200", "--duration", "4", "--seed", "2"])
        code = main(["run", "--trace", str(out), "--epoch", "2",
                     "--tasks", "hh,ddos,change,entropy,cardinality",
                     "--memory-kb", "256"])
        assert code == 0
        output = capsys.readouterr().out
        assert "epoch 0" in output and "epoch 1" in output
        assert "entropy:" in output
        assert "ddos:" in output
        assert "cardinality:" in output

    def test_unknown_task_rejected(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "100",
              "--flows", "10"])
        assert main(["run", "--trace", str(out), "--tasks", "magic"]) == 2

    def test_workers_flag_parses(self):
        args = build_parser().parse_args(["run", "--trace", "t.csv",
                                          "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["run", "--trace", "t.csv"])
        assert args.workers == 1

    def test_sharded_run_covers_same_epochs(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "2000",
              "--flows", "200", "--duration", "4", "--seed", "5"])
        capsys.readouterr()
        base = ["run", "--trace", str(out), "--epoch", "2",
                "--tasks", "hh,cardinality", "--memory-kb", "256"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # Level counters are bit-identical (see test_switch.py), but
        # heap-derived estimates may differ: serial chunked ingest keeps
        # stale heap estimates, the sharded merge recomputes from final
        # tables.  The epoch structure must match exactly.
        epoch_lines = [l for l in serial.splitlines()
                       if l.startswith("epoch ")]
        assert epoch_lines == [l for l in sharded.splitlines()
                               if l.startswith("epoch ")]
        assert len(epoch_lines) == 2
        assert "cardinality:" in sharded


class TestScenarioRun:
    def test_run_scenario_end_to_end(self, capsys):
        code = main(["run", "--scenario", "ddos_ramp", "--scale", "0.1",
                     "--tasks", "cardinality,entropy",
                     "--memory-kb", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario 'ddos_ramp'" in output
        assert "epoch 0" in output and "epoch 4" in output
        assert "cardinality:" in output

    def test_scenario_and_trace_are_exclusive(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "100",
              "--flows", "10"])
        capsys.readouterr()
        assert main(["run", "--trace", str(out),
                     "--scenario", "ddos_ramp"]) == 2
        assert main(["run"]) == 2

    def test_scenario_list(self, capsys):
        assert main(["run", "--scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("ddos_ramp", "port_scan", "websearch_mix"):
            assert name in output

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["run", "--scenario", "slowloris"]) == 2

    def test_generate_scenario_csv(self, tmp_path, capsys):
        out = tmp_path / "scan.csv"
        assert main(["generate", "--out", str(out),
                     "--scenario", "port_scan", "--scale", "0.05",
                     "--seed", "3"]) == 0
        from repro.dataplane.csvtrace import load_csv
        trace = load_csv(out)
        assert len(trace) > 0

    def test_scenario_determinism_across_invocations(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            out = tmp_path / f"{tag}.csv"
            assert main(["generate", "--out", str(out), "--scenario",
                         "heavy_churn", "--scale", "0.05",
                         "--seed", "11"]) == 0
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestExperimentCommand:
    def test_quick_fig7(self, capsys):
        assert main(["experiment", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "univmon_err" in out

    def test_quick_overhead(self, capsys):
        assert main(["experiment", "overhead", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out


class TestPollCommand:
    def test_poll_against_live_agent(self, tmp_path, capsys):
        """End-to-end: agent thread + `univmon poll` over a real socket."""
        from repro.controlplane.rpc import SwitchAgent
        from repro.dataplane.keys import src_ip_key
        from repro.dataplane.switch import MonitoredSwitch
        from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
        from repro.core.universal import UniversalSketch

        switch = MonitoredSwitch("s1")
        switch.attach(
            "univmon",
            lambda: UniversalSketch(levels=5, rows=3, width=256,
                                    heap_size=16, seed=3),
            src_ip_key)
        trace = generate_trace(SyntheticTraceConfig(
            packets=800, flows=100, duration=1.0, seed=5))
        switch.process_trace(trace)
        with SwitchAgent(switch) as agent:
            host, port = agent.address
            code = main(["poll", "--host", host, "--port", str(port),
                         "--alpha", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "distinct sources" in out
        assert "entropy" in out


class TestQueryCommand:
    def _trace(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "3000",
              "--flows", "300", "--duration", "2", "--seed", "9"])
        return out

    def test_local_trace_batch(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        code = main(["query", "--trace", str(trace),
                     "--stats", "hh:0.01,cardinality,l1,entropy,f2",
                     "--memory-kb", "128"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("heavy_hitters", "cardinality", "l1", "entropy",
                     "f2"):
            assert name in out
        assert "3000 packets" in out

    def test_json_output_parses(self, tmp_path, capsys):
        import json
        trace = self._trace(tmp_path)
        capsys.readouterr()  # flush the generate-step output
        assert main(["query", "--trace", str(trace),
                     "--stats", "cardinality,entropy:e,moment:1.5",
                     "--memory-kb", "128", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["packets"] == 3000
        results = payload["results"]
        assert set(results) == {"cardinality", "entropy", "moment_1.5"}
        assert results["cardinality"] > 0

    def test_query_against_live_agent(self, tmp_path, capsys):
        from repro.controlplane.rpc import SwitchAgent
        from repro.dataplane.keys import src_ip_key
        from repro.dataplane.switch import MonitoredSwitch
        from repro.dataplane.trace import (SyntheticTraceConfig,
                                           generate_trace)
        from repro.core.universal import UniversalSketch

        switch = MonitoredSwitch("s1")
        switch.attach(
            "univmon",
            lambda: UniversalSketch(levels=5, rows=3, width=256,
                                    heap_size=16, seed=3),
            src_ip_key)
        switch.process_trace(generate_trace(SyntheticTraceConfig(
            packets=800, flows=100, duration=1.0, seed=5)))
        with SwitchAgent(switch) as agent:
            host, port = agent.address
            code = main(["query", "--host", host, "--port", str(port),
                         "--stats", "hh,cardinality,entropy"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cardinality" in out and "entropy" in out

    def test_needs_exactly_one_source(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["query", "--stats", "l1"]) == 2
        assert main(["query", "--trace", str(trace), "--host",
                     "127.0.0.1", "--stats", "l1"]) == 2
        err = capsys.readouterr().err
        assert "exactly one sketch source" in err

    def test_bad_stats_rejected(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["query", "--trace", str(trace),
                     "--stats", "bogus"]) == 2
        assert main(["query", "--trace", str(trace),
                     "--stats", "moment"]) == 2
        assert main(["query", "--trace", str(trace), "--stats", ","]) == 2
        assert "bad --stats" in capsys.readouterr().err


class TestPlotFlag:
    def test_experiment_plot_renders_chart(self, capsys):
        assert main(["experiment", "fig7", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o=univmon_err" in out  # the chart legend
        assert "|" in out              # the chart frame


class TestMetricsCommand:
    def test_text_exposition_to_stdout(self, capsys):
        assert main(["metrics", "--packets", "3000", "--flows", "300",
                     "--duration", "4", "--epoch", "2",
                     "--memory-kb", "64", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE univmon_epochs_total counter" in out
        assert 'univmon_level_heap_occupancy{level="0"}' in out
        assert "univmon_epoch_ingest_seconds_bucket" in out
        from repro.obs import parse_text
        snapshot = parse_text(out)
        assert snapshot["counters"]["univmon_epochs_total"] == 2

    def test_json_export_to_file(self, tmp_path, capsys):
        import json
        out = tmp_path / "metrics.json"
        assert main(["metrics", "--packets", "2000", "--flows", "200",
                     "--duration", "2", "--epoch", "2", "--memory-kb", "64",
                     "--format", "json", "--out", str(out)]) == 0
        assert "wrote json metrics export" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["univmon_epochs_total"] == 1
        assert "univmon_sketch_update_seconds" in snapshot["histograms"]

    def test_global_registry_restored_after_run(self):
        from repro.obs import NULL_REGISTRY, get_registry
        assert main(["metrics", "--packets", "500", "--flows", "50",
                     "--duration", "1", "--epoch", "1",
                     "--memory-kb", "32"]) == 0
        assert get_registry() is NULL_REGISTRY


class TestRunMetricsJson:
    def test_run_emits_acceptance_snapshot(self, tmp_path, capsys):
        """The snapshot the issue's acceptance criterion names: per-level
        occupancy, TopK eviction counts, epoch coverage, and ingest
        latency histograms, from one `univmon run`."""
        import json
        trace = tmp_path / "trace.csv"
        main(["generate", "--out", str(trace), "--packets", "2000",
              "--flows", "200", "--duration", "4", "--seed", "2"])
        snap_path = tmp_path / "metrics.json"
        assert main(["run", "--trace", str(trace), "--epoch", "2",
                     "--tasks", "hh,entropy", "--memory-kb", "64",
                     "--metrics-json", str(snap_path)]) == 0
        assert "wrote metrics snapshot" in capsys.readouterr().out
        snapshot = json.loads(snap_path.read_text())
        gauges, counters = snapshot["gauges"], snapshot["counters"]
        assert 'univmon_level_heap_occupancy{level="0"}' in gauges
        assert 'univmon_topk_evictions_total{level="0"}' in counters
        assert counters["univmon_epochs_total"] == 2
        assert counters["univmon_epoch_packets_total"] == 2000
        hist = snapshot["histograms"]["univmon_epoch_ingest_seconds"]
        assert hist["count"] == 2
        queries = snapshot["histograms"][
            'univmon_sketch_query_seconds{op="heavy_hitters"}']
        assert queries["count"] == 2  # one HH estimate per epoch


class TestServeCommand:
    def _trace(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(["generate", "--out", str(out), "--packets", "3000",
              "--flows", "300", "--duration", "4", "--seed", "5"])
        return out

    def test_requires_exactly_one_input(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one input" in capsys.readouterr().err
        assert main(["serve", "--trace", "x.csv",
                     "--scenario", "ddos_ramp"]) == 2

    def test_scenario_help_lists_and_exits(self, capsys):
        assert main(["serve", "--scenario", "help"]) == 0
        assert "ddos_ramp" in capsys.readouterr().out

    def test_bad_rules_path_rejected(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["serve", "--trace", str(trace),
                     "--rules", str(tmp_path / "missing.toml")]) == 2
        assert "bad rules" in capsys.readouterr().err

    def test_bad_epoch_rejected(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["serve", "--trace", str(trace),
                     "--epoch", "0"]) == 2

    def test_bounded_run_seals_and_exits(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        code = main(["serve", "--trace", str(trace), "--port", "0",
                     "--epoch", "0.1", "--epochs", "2",
                     "--memory-kb", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "univmon service on http://127.0.0.1:" in output
        assert "service stopped: 2 epochs" in output

    def test_bounded_run_with_detection(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        code = main(["serve", "--trace", str(trace), "--port", "0",
                     "--epoch", "0.1", "--epochs", "2",
                     "--memory-kb", "64", "--detect"])
        assert code == 0
        assert "service stopped: 2 epochs" in capsys.readouterr().out

    def test_global_registry_restored(self, tmp_path):
        from repro.obs import NULL_REGISTRY, get_registry
        trace = self._trace(tmp_path)
        assert main(["serve", "--trace", str(trace), "--port", "0",
                     "--epoch", "0.1", "--epochs", "1",
                     "--memory-kb", "64"]) == 0
        assert get_registry() is NULL_REGISTRY
