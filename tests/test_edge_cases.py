"""Edge-case and robustness tests that cut across modules."""

import numpy as np
import pytest

from repro.controlplane import CardinalityApp, Controller, EntropyApp
from repro.core.gsum import estimate_cardinality, estimate_entropy
from repro.core.universal import UniversalSketch
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import (
    SyntheticTraceConfig,
    Trace,
    generate_trace,
)


class TestEmptyAndTinyInputs:
    def test_controller_with_gappy_trace(self):
        """Epochs with zero packets must produce valid (empty) reports."""
        early = generate_trace(SyntheticTraceConfig(
            packets=200, flows=30, duration=1.0, seed=1))
        late = generate_trace(SyntheticTraceConfig(
            packets=200, flows=30, duration=1.0, seed=2))
        late = Trace(late.timestamps + 5.0, late.src, late.dst,
                     late.sport, late.dport, late.proto, late.size)
        gappy = Trace.concat([early, late])
        controller = Controller(
            sketch_factory=lambda: UniversalSketch(
                levels=4, rows=3, width=64, heap_size=8, seed=1),
            epoch_seconds=1.0)
        controller.register(CardinalityApp())
        reports = controller.run_trace(gappy)
        assert sum(r.packets for r in reports) == 400
        empty = [r for r in reports if r.packets == 0]
        assert empty, "expected gap epochs"
        for report in empty:
            assert report["cardinality"]["distinct"] == 0.0

    def test_single_packet_trace(self):
        sketch = UniversalSketch(levels=4, rows=3, width=64, heap_size=8,
                                 seed=1)
        sketch.update(42)
        assert sketch.heavy_hitters(0.5) == [(42, pytest.approx(1.0))]
        assert estimate_cardinality(sketch) == pytest.approx(1.0, abs=0.1)
        assert estimate_entropy(sketch) == pytest.approx(0.0, abs=0.01)

    def test_zero_weight_update_is_noop_on_counters(self):
        a = UniversalSketch(levels=3, rows=3, width=64, heap_size=8, seed=2)
        b = UniversalSketch(levels=3, rows=3, width=64, heap_size=8, seed=2)
        a.update(5, 0)
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)


class TestKeySpaceExtremes:
    def test_max_uint32_keys(self):
        sketch = UniversalSketch(levels=4, rows=3, width=64, heap_size=8,
                                 seed=3)
        sketch.update(0xFFFFFFFF, 10)
        assert sketch.levels[0].sketch.query(0xFFFFFFFF) == \
            pytest.approx(10.0)

    def test_64_bit_keys_supported(self):
        """src-dst pair keys use the full 64-bit space."""
        sketch = UniversalSketch(levels=4, rows=3, width=64, heap_size=8,
                                 seed=4)
        big_key = (0xFFFFFFFF << 32) | 0xFFFFFFFE
        sketch.update(big_key, 7)
        assert sketch.levels[0].sketch.query(big_key) == pytest.approx(7.0)

    def test_key_zero_is_a_valid_key(self):
        sketch = UniversalSketch(levels=4, rows=3, width=64, heap_size=8,
                                 seed=5)
        sketch.update(0, 5)
        assert sketch.levels[0].sketch.query(0) == pytest.approx(5.0)
        assert (0, pytest.approx(5.0)) in sketch.heavy_hitters(0.5)


class TestMemoryBudgetHonesty:
    @pytest.mark.parametrize("kb", [32, 64, 256, 1024])
    def test_for_memory_budget_never_exceeds(self, kb):
        sketch = UniversalSketch.for_memory_budget(
            kb * 1024, levels=8, rows=5, heap_size=32, seed=1)
        assert sketch.memory_bytes() <= kb * 1024

    def test_experiment_sizer_never_exceeds(self):
        from repro.eval.experiments import _univmon_for
        for kb in (32, 128, 512, 2048):
            sketch = _univmon_for(kb * 1024, flows=5000, seed=1)
            assert sketch.memory_bytes() <= kb * 1024


class TestDeterminismAcrossProcessBoundaries:
    def test_sketch_state_depends_only_on_seed_and_stream(self):
        """Two sketches built in different orders but same seed/stream
        must be byte-identical — the property remote polling relies on."""
        keys = np.arange(500, dtype=np.uint64)
        a = UniversalSketch(levels=5, rows=3, width=128, heap_size=16,
                            seed=77)
        other = UniversalSketch(levels=9, rows=5, width=64, heap_size=8,
                                seed=1)  # interleaved unrelated work
        other.update_array(keys)
        b = UniversalSketch(levels=5, rows=3, width=128, heap_size=16,
                            seed=77)
        a.update_array(keys)
        b.update_array(keys)
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)
