"""End-to-end service tests over real HTTP: queries, epochs, SSE,
memoisation, and graceful shutdown."""

import json
import socket
import threading
import time

import pytest

from repro.dataplane.parallel import shared_memory_available
from repro.service import ServiceConfig

from tests.service.conftest import http_get, http_post


def wait_for_epochs(service, n, timeout=30.0):
    deadline = time.monotonic() + timeout
    while service.ingest.epochs_sealed < n:
        assert time.monotonic() < deadline, \
            f"only {service.ingest.epochs_sealed}/{n} epochs in {timeout}s"
        time.sleep(0.01)


class TestEndpoints:
    def test_bounded_run_serves_everything(self, make_service, registry):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=0.1, ring_depth=4, max_epochs=3))
        assert service.wait(timeout=30)
        port = service.port

        status, health = http_get(port, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["epochs_sealed"] == 3
        assert health["packets_ingested"] > 0

        status, listing = http_get(port, "/epochs")
        assert status == 200
        indices = [e["epoch"] for e in listing["epochs"]]
        assert indices == [0, 1, 2]

        status, detail = http_get(port, f"/epochs/{indices[-1]}")
        assert status == 200
        assert detail["statistics"]["cardinality"] > 0
        assert "entropy" in detail["statistics"]

        status, result = http_post(port, "/query",
                                   {"statistics": ["cardinality",
                                                   "entropy",
                                                   "hh:0.01"]})
        assert status == 200
        assert result["epoch"] == 2
        assert result["results"]["cardinality"] > 0
        assert isinstance(result["results"]["heavy_hitters"], list)

        status, text = http_get(port, "/metrics")
        assert status == 200
        assert "univmon_epochs_total 3" in text
        assert "univmon_service_request_seconds" in text

        # The acceptance invariant: exactly one snapshot build per
        # sealed epoch, no matter how many queries were served.
        builds = registry.counter(
            "univmon_query_snapshot_builds_total").value
        assert builds == 3

    def test_error_paths(self, make_service):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=0.1, max_epochs=2))
        assert service.wait(timeout=30)
        port = service.port

        status, body = http_get(port, "/nope")
        assert status == 404
        status, body = http_get(port, "/epochs/999")
        assert status == 404
        status, body = http_get(port, "/epochs/abc")
        assert status == 400
        status, body = http_post(port, "/query",
                                 {"statistics": ["bogus_stat"]})
        assert status == 400
        assert "bogus_stat" in body["error"]
        status, body = http_post(port, "/query", {"statistics": []})
        assert status == 400
        status, body = http_post(port, "/query", {"epoch": 999})
        assert status == 404
        status, body = http_get(port, "/query")  # GET on a POST route
        assert status == 405

    def test_query_before_first_epoch_is_404(self, make_service):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=3600.0, chunk_sleep=0.05))
        status, body = http_post(service.port, "/query", {})
        assert status == 404
        assert "no epoch" in body["error"]


class TestQueryMemo:
    def test_concurrent_identical_queries_collapse(self, make_service,
                                                   registry):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=0.1, max_epochs=2))
        assert service.wait(timeout=30)
        port = service.port
        # A statistic set nothing else (epoch events, other tests)
        # evaluates, so its memo entry is provably ours.
        payload = {"statistics": ["entropy:e", "moment:1.5"]}

        misses_before = registry.counter(
            "univmon_query_memo_misses_total").value
        hits_before = registry.counter(
            "univmon_query_memo_hits_total").value

        results, errors = [], []

        def client():
            try:
                results.append(http_post(port, "/query", payload))
            except Exception as exc:  # noqa: BLE001 - surface in assert
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == 8
        assert all(status == 200 for status, _ in results)
        values = [json.dumps(body["results"], sort_keys=True)
                  for _, body in results]
        assert len(set(values)) == 1          # identical answers

        misses = registry.counter(
            "univmon_query_memo_misses_total").value - misses_before
        hits = registry.counter(
            "univmon_query_memo_hits_total").value - hits_before
        assert misses == 1                    # evaluated exactly once
        assert hits == 7                      # everyone else collapsed


class TestServerSentEvents:
    def read_sse_events(self, port, n, timeout=30.0):
        """Collect ``n`` data events from a raw /events stream."""
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=timeout) as sock:
            sock.sendall(b"GET /events HTTP/1.1\r\n"
                         b"Host: localhost\r\n\r\n")
            sock.settimeout(timeout)
            buffer = b""
            events = []
            deadline = time.monotonic() + timeout
            while len(events) < n and time.monotonic() < deadline:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    for line in frame.splitlines():
                        if line.startswith(b"data: "):
                            events.append(json.loads(line[6:]))
            return events

    def test_epoch_events_stream(self, make_service):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=0.15, ring_depth=4))
        events = self.read_sse_events(service.port, 2)
        service.stop()
        assert len(events) >= 2
        assert all(e["type"] == "epoch" for e in events)
        assert events[1]["epoch"] > events[0]["epoch"]
        assert "cardinality" in events[0]["statistics"]


class TestGracefulShutdown:
    def test_stop_drains_everything(self, make_service):
        service = make_service(ServiceConfig(
            port=0, epoch_seconds=0.1, ring_depth=4))
        wait_for_epochs(service, 2)
        port = service.port
        service.stop()
        assert not service.ingest.is_alive()
        assert service.ingest.error is None
        assert not service._loop_thread.is_alive()
        # The listener is gone: a fresh connection must be refused.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)
        service.stop()  # idempotent

    @pytest.mark.skipif(not shared_memory_available(),
                        reason="no shared memory for worker pool")
    def test_stop_closes_worker_pool(self, small_trace, registry):
        from repro.service import MonitoringService
        from tests.service.conftest import small_sketch_factory

        service = MonitoringService.from_trace(
            small_trace,
            ServiceConfig(port=0, epoch_seconds=0.2, max_epochs=2),
            sketch_factory=small_sketch_factory, workers=2)
        with service:
            assert service.wait(timeout=60)
            assert service.controller.switch._shard_pool is not None
        assert service.controller.switch._shard_pool is None
        assert not service.ingest.is_alive()
