"""IngestLoop: timer sealing, bounded runs, drain-on-stop, errors."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.controlplane.controller import Controller
from repro.dataplane.replay import LoopingChunkSource
from repro.service.ingest import IngestLoop

from tests.service.conftest import small_sketch_factory


def make_controller():
    return Controller(sketch_factory=small_sketch_factory,
                      epoch_seconds=1.0)


class TestIngestLoop:
    def test_parameters_validated(self):
        controller = make_controller()
        with pytest.raises(ConfigurationError):
            IngestLoop(controller, [], epoch_seconds=0.0,
                       on_epoch=lambda *a: None)
        with pytest.raises(ConfigurationError):
            IngestLoop(controller, [], epoch_seconds=1.0,
                       on_epoch=lambda *a: None, max_epochs=0)

    def test_finite_source_seals_remainder(self, small_trace):
        sealed = []
        loop = IngestLoop(
            make_controller(),
            small_trace.epochs(1.0),         # finite chunk list
            epoch_seconds=3600.0,            # timer never fires
            on_epoch=lambda sk, rep, tr: sealed.append((sk, rep, tr)))
        loop.start()
        loop.join(timeout=30)
        assert not loop.is_alive()
        assert loop.error is None
        assert len(sealed) == 1              # one epoch at exhaustion
        _, report, trace = sealed[0]
        assert report.packets == len(small_trace)
        assert loop.packets_ingested == len(small_trace)
        assert len(trace) == len(small_trace)

    def test_max_epochs_bounds_endless_source(self, small_trace):
        sealed = []
        loop = IngestLoop(
            make_controller(),
            LoopingChunkSource(small_trace, chunk_size=1000),
            epoch_seconds=0.05,
            on_epoch=lambda sk, rep, tr: sealed.append(rep),
            max_epochs=3)
        loop.start()
        loop.join(timeout=30)
        assert not loop.is_alive()
        assert loop.epochs_sealed == 3
        assert len(sealed) == 3
        assert [r.epoch_index for r in sealed] == [0, 1, 2]

    def test_stop_drains_partial_epoch(self, small_trace):
        sealed = []
        loop = IngestLoop(
            make_controller(),
            LoopingChunkSource(small_trace, chunk_size=500),
            epoch_seconds=3600.0,            # only the drain can seal
            on_epoch=lambda sk, rep, tr: sealed.append(rep))
        loop.start()
        deadline = time.monotonic() + 20
        while loop.packets_ingested == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        loop.stop()
        loop.join(timeout=30)
        assert not loop.is_alive()
        assert len(sealed) == 1
        assert sealed[0].packets == loop.packets_ingested > 0

    def test_callback_error_is_captured(self, small_trace, registry):
        def boom(*args):
            raise RuntimeError("publication failed")

        loop = IngestLoop(
            make_controller(),
            LoopingChunkSource(small_trace, chunk_size=1000),
            epoch_seconds=0.01, on_epoch=boom)
        loop.start()
        loop.join(timeout=30)
        assert not loop.is_alive()
        assert isinstance(loop.error, RuntimeError)
        assert registry.counter(
            "univmon_service_ingest_errors_total").value == 1


class TestLoopingChunkSource:
    def test_validation(self, small_trace):
        from repro.dataplane.trace import Trace
        with pytest.raises(ConfigurationError):
            LoopingChunkSource(Trace.empty())
        with pytest.raises(ConfigurationError):
            LoopingChunkSource(small_trace, chunk_size=0)

    def test_chunks_cover_trace_then_wrap(self, tiny_trace):
        source = LoopingChunkSource(tiny_trace, chunk_size=128)
        chunks = []
        for chunk in source:
            chunks.append(chunk)
            if source.wraps >= 2:
                break
        per_pass = -(-len(tiny_trace) // 128)  # ceil division
        first_pass = chunks[:per_pass]
        assert sum(len(c) for c in first_pass) == len(tiny_trace)
        # Timestamps advance monotonically across the wrap boundary.
        last_of_pass1 = float(first_pass[-1].timestamps[-1])
        first_of_pass2 = float(chunks[per_pass].timestamps[0])
        assert first_of_pass2 > last_of_pass1
