"""Concurrency regression tests for the shared mutation paths.

These are the pre-fix-failing stress tests for the PR that made the
metrics primitives and the sketch snapshot cache thread-safe: with the
locks removed, ``Counter.inc``'s read-modify-write loses updates under
contention and ``query_snapshot`` builds the snapshot more than once —
both reproducibly with the switch interval lowered.
"""

import sys
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, use_registry
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.core.universal import UniversalSketch

from tests.service.conftest import small_sketch_factory


@pytest.fixture()
def contended():
    """Force frequent thread switches so lost updates reproduce."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def hammer(n_threads, work):
    barrier = threading.Barrier(n_threads)

    def runner():
        barrier.wait()
        work()

    threads = [threading.Thread(target=runner) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricPrimitives:
    def test_counter_concurrent_increments_exact(self, contended):
        counter = Counter("c")
        hammer(8, lambda: [counter.inc() for _ in range(10_000)])
        assert counter.value == 80_000

    def test_gauge_concurrent_add_exact(self, contended):
        gauge = Gauge("g")
        hammer(8, lambda: [gauge.inc(1.0) for _ in range(5_000)])
        assert gauge.value == 40_000.0

    def test_histogram_concurrent_observes_consistent(self, contended):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        hammer(8, lambda: [hist.observe(5.0) for _ in range(5_000)])
        assert hist.count == 40_000
        assert hist.sum == pytest.approx(200_000.0)
        assert hist.cumulative_counts()[-1] == 40_000


class TestRegistryRaces:
    def test_get_or_create_returns_one_metric(self, contended):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work():
            for i in range(200):
                metric = registry.counter("univmon_race_total",
                                          help="x", shard=str(i % 4))
                metric.inc()
                with lock:
                    seen.append(id(metric))

        hammer(8, work)
        # 4 label sets -> exactly 4 distinct metric objects, and no
        # increment was lost to a torn create.
        assert len({id(m) for m in [registry.counter(
            "univmon_race_total", shard=str(i)) for i in range(4)]}) == 4
        total = sum(registry.counter("univmon_race_total",
                                     shard=str(i)).value
                    for i in range(4))
        assert total == 8 * 200

    def test_type_conflict_still_raises_on_fast_path(self):
        registry = MetricsRegistry()
        registry.counter("univmon_conflict", help="x")
        with pytest.raises(ConfigurationError):
            registry.gauge("univmon_conflict")
        # and again once the family exists in the fast-path dict
        with pytest.raises(ConfigurationError):
            registry.gauge("univmon_conflict")


class TestSnapshotCache:
    def test_concurrent_readers_build_once(self, contended):
        # Pre-fix, unsynchronised readers racing through the cache miss
        # each built their own snapshot (~40% of trials at this
        # geometry — the build is long enough to be preempted
        # mid-flight); several trials make a silent pass vanishingly
        # unlikely.  Post-fix: exactly one build per trial, ever.
        import numpy as np
        for trial in range(6):
            with use_registry(MetricsRegistry()) as registry:
                sketch = UniversalSketch(levels=12, rows=5, width=2048,
                                         heap_size=64, seed=1)
                keys = np.random.default_rng(trial).integers(
                    1, 200_000, 100_000).astype(np.uint64)
                sketch.update_array(keys)
                snapshots = []
                lock = threading.Lock()

                def work():
                    snap = sketch.query_snapshot()
                    with lock:
                        snapshots.append(snap)

                hammer(16, work)
                assert len({id(s) for s in snapshots}) == 1
                builds = registry.counter(
                    "univmon_query_snapshot_builds_total").value
                assert builds == 1, f"trial {trial}: {builds} builds"

    def test_invalidation_under_concurrent_reads(self, contended):
        import numpy as np
        sketch = small_sketch_factory()
        sketch.update_array(np.arange(1, 1001, dtype="uint64"))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                snap = sketch.query_snapshot()
                if snap is None:
                    errors.append("got None snapshot")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(50):  # writer keeps mutating + invalidating
            sketch.update(int(i) + 1_000_000)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        final = sketch.query_snapshot()
        assert final.version == sketch._version
