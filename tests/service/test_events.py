"""EventBroker backpressure: bounded queues, drop-oldest, isolation."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, use_registry
from repro.service.events import EventBroker


class TestBrokerBackpressure:
    def test_queue_size_validated(self):
        with pytest.raises(ConfigurationError):
            EventBroker(queue_size=0)

    def test_drop_oldest_keeps_newest(self):
        async def scenario():
            broker = EventBroker(queue_size=4)
            broker.bind(asyncio.get_running_loop())
            sub = broker.subscribe()
            for i in range(10):
                broker.deliver({"i": i})
            got = []
            while not sub.queue.empty():
                got.append(sub.queue.get_nowait()["i"])
            return got, sub.dropped

        got, dropped = asyncio.run(scenario())
        assert got == [6, 7, 8, 9]   # oldest dropped, newest kept
        assert dropped == 6

    def test_slow_client_never_grows_and_fast_client_unaffected(self):
        async def scenario():
            broker = EventBroker(queue_size=8)
            broker.bind(asyncio.get_running_loop())
            fast = broker.subscribe()
            slow = broker.subscribe()
            received = []
            for i in range(200):
                broker.deliver({"i": i})
                received.append(fast.queue.get_nowait()["i"])  # drains
                # the slow client never reads
            return received, slow.queue.qsize(), slow.dropped

        received, slow_depth, slow_dropped = asyncio.run(scenario())
        assert received == list(range(200))       # fast client: lossless
        assert slow_depth <= 8                    # bounded, not 200
        assert slow_dropped == 200 - 8

    def test_drop_metric_counted(self):
        with use_registry(MetricsRegistry()) as reg:
            async def scenario():
                broker = EventBroker(queue_size=2)
                broker.bind(asyncio.get_running_loop())
                broker.subscribe()
                for i in range(5):
                    broker.deliver({"i": i})

            asyncio.run(scenario())
            assert reg.counter(
                "univmon_service_events_dropped_total").value == 3
            assert reg.counter(
                "univmon_service_events_total").value == 5

    def test_unsubscribe_stops_delivery(self):
        async def scenario():
            broker = EventBroker(queue_size=4)
            broker.bind(asyncio.get_running_loop())
            sub = broker.subscribe()
            assert broker.subscribers == 1
            broker.unsubscribe(sub)
            broker.unsubscribe(sub)  # idempotent
            assert broker.subscribers == 0
            broker.deliver({"i": 1})
            return sub.queue.qsize()

        assert asyncio.run(scenario()) == 0


class TestCrossThreadPublish:
    def test_unbound_broker_discards(self):
        broker = EventBroker()
        assert broker.publish_from_thread({"x": 1}) is False

    def test_publish_from_thread_delivers_on_loop(self):
        async def scenario():
            broker = EventBroker(queue_size=4)
            broker.bind(asyncio.get_running_loop())
            sub = broker.subscribe()
            loop = asyncio.get_running_loop()
            # run the producer in a worker thread, as the service does
            ok = await loop.run_in_executor(
                None, broker.publish_from_thread, {"x": 42})
            assert ok
            event = await asyncio.wait_for(sub.queue.get(), timeout=5)
            return event

        assert asyncio.run(scenario()) == {"x": 42}
