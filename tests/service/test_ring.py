"""Publication-ring semantics: eviction, lookup, and reader atomicity."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, use_registry
from repro.service.ring import EpochRecord, EpochRing


def record(index, packets=100):
    return EpochRecord(epoch_index=index, sealed_at=float(index),
                       packets=packets, sketch=None, snapshot=None,
                       report=None)


class TestRingBasics:
    def test_depth_validated(self):
        with pytest.raises(ConfigurationError):
            EpochRing(depth=0)

    def test_empty_ring(self):
        ring = EpochRing(depth=4)
        assert len(ring) == 0
        assert ring.latest() is None
        assert ring.get(0) is None
        assert ring.records() == ()

    def test_publish_and_lookup(self):
        ring = EpochRing(depth=4)
        for i in range(3):
            ring.publish(record(i))
        assert len(ring) == 3
        assert ring.latest().epoch_index == 2
        assert ring.get(1).epoch_index == 1
        assert ring.get(7) is None
        assert [r.epoch_index for r in ring.records()] == [0, 1, 2]

    def test_eviction_keeps_newest(self):
        ring = EpochRing(depth=3)
        for i in range(10):
            ring.publish(record(i))
        assert len(ring) == 3
        assert [r.epoch_index for r in ring.records()] == [7, 8, 9]
        assert ring.get(6) is None          # evicted
        assert ring.get(7) is not None

    def test_eviction_metric(self):
        with use_registry(MetricsRegistry()) as reg:
            ring = EpochRing(depth=2)
            for i in range(5):
                ring.publish(record(i))
            evictions = reg.counter(
                "univmon_service_ring_evictions_total")
            assert evictions.value == 3
            assert reg.gauge("univmon_service_ring_epochs").value == 2

    def test_summary_is_jsonable(self):
        rec = record(4, packets=17)
        summary = rec.summary()
        assert summary["epoch"] == 4
        assert summary["packets"] == 17


class TestRingAtomicity:
    """Readers racing a fast writer must always see a consistent view:
    contiguous ascending epochs, never more than ``depth``, and a
    ``latest()`` that never goes backwards."""

    def test_concurrent_readers_see_consistent_views(self):
        ring = EpochRing(depth=5)
        stop = threading.Event()
        failures = []

        def reader():
            last_seen = -1
            while not stop.is_set():
                view = ring.records()
                if len(view) > ring.depth:
                    failures.append(f"over-deep view: {len(view)}")
                    return
                indices = [r.epoch_index for r in view]
                if indices != sorted(indices) or (
                        indices and indices
                        != list(range(indices[0], indices[-1] + 1))):
                    failures.append(f"torn view: {indices}")
                    return
                latest = ring.latest()
                if latest is not None:
                    if latest.epoch_index < last_seen:
                        failures.append(
                            f"latest went backwards: "
                            f"{latest.epoch_index} < {last_seen}")
                        return
                    last_seen = latest.epoch_index

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        for i in range(20_000):  # the writer: publish as fast as possible
            ring.publish(record(i))
        stop.set()
        for t in readers:
            t.join()
        assert failures == []
        assert ring.latest().epoch_index == 19_999
