"""Shared fixtures for the always-on service tests."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.core.universal import UniversalSketch
from repro.service import MonitoringService, ServiceConfig


@pytest.fixture()
def registry():
    """A fresh live registry installed for the duration of the test."""
    with use_registry(MetricsRegistry()) as reg:
        yield reg


def small_sketch_factory():
    """A small-geometry sketch keeping service tests fast."""
    return UniversalSketch(levels=8, rows=3, width=512, heap_size=32,
                           seed=1)


@pytest.fixture()
def make_service(small_trace, registry):
    """Factory for started services over the shared small trace;
    everything it starts is stopped at teardown."""
    started = []

    def make(config=None, **config_kwargs):
        if config is None:
            config = ServiceConfig(port=0, **config_kwargs)
        service = MonitoringService.from_trace(
            small_trace, config, sketch_factory=small_sketch_factory)
        started.append(service)
        return service.start()

    yield make
    for service in started:
        service.stop()


def http_get(port, path, timeout=5.0):
    """GET a service endpoint, returning (status, parsed-or-text)."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as err:
        body = err.read()
        status = err.code
    text = body.decode("utf-8")
    try:
        return status, json.loads(text)
    except ValueError:
        return status, text


def http_post(port, path, payload, timeout=5.0):
    """POST JSON to a service endpoint, returning (status, parsed)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))
