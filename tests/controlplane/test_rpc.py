"""Integration tests for the TCP poll protocol (real sockets)."""

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.controlplane.rpc import (
    FRAME_VERSION,
    RemoteSwitchClient,
    RetryPolicy,
    RpcError,
    STATUS_BAD_FRAME,
    SwitchAgent,
)
from repro.errors import ConfigurationError, FrameError, TransportError
from repro.core.gsum import estimate_cardinality
from repro.core.universal import UniversalSketch
from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch

FAIL_FAST = RetryPolicy(max_attempts=1)


def make_switch():
    switch = MonitoredSwitch("s1")
    switch.attach(
        "univmon",
        lambda: UniversalSketch(levels=5, rows=3, width=256, heap_size=16,
                                seed=3),
        src_ip_key)
    return switch


@pytest.fixture()
def agent():
    agent = SwitchAgent(make_switch()).start()
    yield agent
    agent.stop()


@pytest.fixture()
def client(agent):
    host, port = agent.address
    with RemoteSwitchClient(host, port) as client:
        yield client


class TestProtocol:
    def test_ping(self, client):
        assert client.ping()

    def test_memory(self, agent, client):
        assert client.memory_bytes() == agent.switch.memory_bytes()

    def test_stats(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        stats = client.stats()
        assert stats["packets"] == len(tiny_trace)
        assert stats["programs"] == 1

    def test_poll_returns_queryable_sketch(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        sketch = client.poll("univmon")
        assert isinstance(sketch, UniversalSketch)
        assert sketch.total_weight == len(tiny_trace)
        true_distinct = tiny_trace.distinct(src_ip_key)
        assert abs(estimate_cardinality(sketch) - true_distinct) \
            / true_distinct < 0.6

    def test_poll_resets_the_epoch(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        client.poll("univmon")
        fresh = client.poll("univmon")
        assert fresh.total_weight == 0

    def test_unknown_program_is_remote_error(self, client):
        with pytest.raises(RpcError):
            client.poll("nope")

    def test_unknown_command_is_remote_error(self, agent):
        host, port = agent.address
        with RemoteSwitchClient(host, port) as client:
            with pytest.raises(RpcError):
                client._call("FROBNICATE")

    def test_multiple_requests_same_connection(self, agent, client,
                                               tiny_trace):
        for _ in range(3):
            agent.switch.process_trace(tiny_trace)
            sketch = client.poll("univmon")
            assert sketch.total_weight == len(tiny_trace)

    def test_two_concurrent_clients(self, agent, tiny_trace):
        host, port = agent.address
        agent.switch.process_trace(tiny_trace)
        with RemoteSwitchClient(host, port) as c1, \
                RemoteSwitchClient(host, port) as c2:
            assert c1.ping() and c2.ping()
            assert c1.stats()["packets"] == c2.stats()["packets"]


def _v2_frame(payload: bytes) -> bytes:
    return struct.pack("<BII", FRAME_VERSION, len(payload),
                       zlib.crc32(payload) & 0xFFFFFFFF) + payload


def one_shot_server(responder):
    """Serve exactly one connection with ``responder(conn)``; returns addr."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def run():
        conn, _ = listener.accept()
        try:
            responder(conn)
        finally:
            conn.close()
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return listener.getsockname()


def _drain_request(conn) -> None:
    version, length, crc = struct.unpack("<BII", conn.recv(9))
    while length:
        length -= len(conn.recv(length))


class TestErrorPaths:
    def test_malformed_poll_is_remote_error(self, client):
        with pytest.raises(RpcError, match="usage"):
            client._call("POLL")
        with pytest.raises(RpcError, match="usage"):
            client._call("POLL univmon extra")

    def test_truncated_response_mid_payload(self):
        """A frame cut inside the payload is a short read, not a hang."""
        def responder(conn):
            _drain_request(conn)
            header = struct.pack("<BII", FRAME_VERSION, 100, 0)
            conn.sendall(header + b"only ten b")  # 10 of 100 bytes

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(TransportError, match="mid-frame|failed"):
                client.ping()

    def test_v1_response_frame_rejected(self):
        """A server speaking the old bare-length format is refused."""
        def responder(conn):
            _drain_request(conn)
            conn.sendall(struct.pack("<I", 5) + b"\x00pong")  # v1 framing

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(TransportError, match="frame version"):
                client.ping()

    def test_v1_request_frame_rejected_with_clear_error(self, agent):
        """The agent answers a v1 request with a bad-frame status."""
        host, port = agent.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", 4) + b"PING")  # v1 framing
            version, length, crc = struct.unpack("<BII", sock.recv(9))
            assert version == FRAME_VERSION
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
        assert body[0] == STATUS_BAD_FRAME
        assert b"frame version" in body[1:]
        # ...and the connection is then closed: the stream is untrusted.
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", 4) + b"PING")
            while sock.recv(4096):
                pass  # drain the error frame until EOF

    def test_checksum_mismatch_rejected(self):
        def responder(conn):
            _drain_request(conn)
            payload = b"\x00pong"
            header = struct.pack("<BII", FRAME_VERSION, len(payload),
                                 0xDEADBEEF)
            conn.sendall(header + payload)

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(TransportError, match="checksum"):
                client.ping()

    def test_oversized_frame_rejected_before_allocation(self):
        """A hostile length prefix raises instead of allocating 4 GiB."""
        def responder(conn):
            _drain_request(conn)
            conn.sendall(struct.pack("<BII", FRAME_VERSION,
                                     0xFFFFFFF0, 0) + b"x")

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(TransportError, match="exceeds"):
                client.ping()

    def test_client_side_frame_limit(self, agent, tiny_trace):
        """The per-client max_frame_bytes guard applies to responses."""
        agent.switch.process_trace(tiny_trace)
        host, port = agent.address
        with RemoteSwitchClient(host, port, retry=FAIL_FAST,
                                max_frame_bytes=64) as client:
            with pytest.raises(TransportError, match="exceeds"):
                client.poll("univmon")

    def test_malformed_stats_payload(self):
        def responder(conn):
            _drain_request(conn)
            conn.sendall(_v2_frame(b"\x00packets=12 garbage programs=1"))

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(RpcError, match="malformed STATS"):
                client.stats()

    def test_stats_missing_fields(self):
        def responder(conn):
            _drain_request(conn)
            conn.sendall(_v2_frame(b"\x00packets=12"))

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(RpcError, match="missing"):
                client.stats()

    def test_malformed_memory_payload(self):
        def responder(conn):
            _drain_request(conn)
            conn.sendall(_v2_frame(b"\x00not-a-number"))

        host, port = one_shot_server(responder)
        with RemoteSwitchClient(host, port, timeout=5.0,
                                retry=FAIL_FAST) as client:
            with pytest.raises(RpcError, match="malformed MEMORY"):
                client.memory_bytes()

    def test_server_error_is_not_retried(self, agent):
        """Application errors must not burn the retry budget."""
        host, port = agent.address
        with RemoteSwitchClient(host, port,
                                retry=RetryPolicy(max_attempts=5,
                                                  base_delay=0.0),
                                sleep=lambda s: None) as client:
            with pytest.raises(RpcError):
                client.poll("nope")
            assert client.counters["retries"] == 0


class TestResilience:
    def test_agent_restart_between_calls(self, tiny_trace):
        """The client reconnects transparently across an agent restart."""
        agent = SwitchAgent(make_switch()).start()
        host, port = agent.address
        with RemoteSwitchClient(
                host, port,
                retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                  jitter=0.0),
                sleep=lambda s: None) as client:
            agent.switch.process_trace(tiny_trace)
            assert client.poll("univmon").total_weight == len(tiny_trace)

            agent.stop()
            agent = SwitchAgent(make_switch(), port=port).start()
            try:
                agent.switch.process_trace(tiny_trace)
                sketch = client.poll("univmon")
                assert sketch.total_weight == len(tiny_trace)
                assert client.counters["retries"] >= 1
                assert client.counters["connects"] >= 2
            finally:
                agent.stop()

    def test_stopped_agent_severs_live_connections(self, tiny_trace):
        """stop() kills established connections, not just the listener —
        otherwise a 'crashed' agent would keep answering old peers."""
        agent = SwitchAgent(make_switch()).start()
        host, port = agent.address
        with RemoteSwitchClient(host, port, retry=FAIL_FAST) as client:
            assert client.ping()
            agent.stop()
            with pytest.raises(TransportError):
                client.ping()

    def test_lazy_connection(self):
        """No socket is opened until the first call (resilient startup)."""
        client = RemoteSwitchClient("127.0.0.1", 65000, retry=FAIL_FAST)
        assert not client.connected
        with pytest.raises(TransportError):
            client.ping()
        client.close()


class TestRetryPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_backoff_caps_at_max_delay(self, py_rng):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                             jitter=0.0)
        assert policy.backoff(0, py_rng) == 1.0
        assert policy.backoff(5, py_rng) == 3.0

    def test_fail_fast_keeps_other_fields(self):
        policy = RetryPolicy(max_attempts=9, base_delay=0.5)
        fast = policy.fail_fast()
        assert fast.max_attempts == 1
        assert fast.base_delay == 0.5

    def test_frame_error_is_transport_error(self):
        assert issubclass(FrameError, TransportError)
        assert issubclass(TransportError, RpcError)


class TestEndToEndPollLoop:
    def test_epoch_loop_over_the_wire(self, agent, small_trace):
        """The full Figure-2 loop with a real socket in the middle."""
        host, port = agent.address
        distincts = []
        with RemoteSwitchClient(host, port) as client:
            for epoch in small_trace.epochs(1.0):
                agent.switch.process_trace(epoch)
                sealed = client.poll("univmon")
                distincts.append(estimate_cardinality(sealed))
        assert len(distincts) == len(small_trace.epochs(1.0))
        assert all(d >= 0 for d in distincts)

    def test_polled_sketches_merge_into_trace_view(self, agent, small_trace):
        host, port = agent.address
        merged = None
        with RemoteSwitchClient(host, port) as client:
            for epoch in small_trace.epochs(1.0):
                agent.switch.process_trace(epoch)
                sealed = client.poll("univmon")
                merged = sealed if merged is None else merged.merge(sealed)
        assert merged.total_weight == len(small_trace)
