"""Integration tests for the TCP poll protocol (real sockets)."""

import numpy as np
import pytest

from repro.controlplane.rpc import RemoteSwitchClient, RpcError, SwitchAgent
from repro.core.gsum import estimate_cardinality
from repro.core.universal import UniversalSketch
from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch


def make_switch():
    switch = MonitoredSwitch("s1")
    switch.attach(
        "univmon",
        lambda: UniversalSketch(levels=5, rows=3, width=256, heap_size=16,
                                seed=3),
        src_ip_key)
    return switch


@pytest.fixture()
def agent():
    agent = SwitchAgent(make_switch()).start()
    yield agent
    agent.stop()


@pytest.fixture()
def client(agent):
    host, port = agent.address
    with RemoteSwitchClient(host, port) as client:
        yield client


class TestProtocol:
    def test_ping(self, client):
        assert client.ping()

    def test_memory(self, agent, client):
        assert client.memory_bytes() == agent.switch.memory_bytes()

    def test_stats(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        stats = client.stats()
        assert stats["packets"] == len(tiny_trace)
        assert stats["programs"] == 1

    def test_poll_returns_queryable_sketch(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        sketch = client.poll("univmon")
        assert isinstance(sketch, UniversalSketch)
        assert sketch.total_weight == len(tiny_trace)
        true_distinct = tiny_trace.distinct(src_ip_key)
        assert abs(estimate_cardinality(sketch) - true_distinct) \
            / true_distinct < 0.6

    def test_poll_resets_the_epoch(self, agent, client, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        client.poll("univmon")
        fresh = client.poll("univmon")
        assert fresh.total_weight == 0

    def test_unknown_program_is_remote_error(self, client):
        with pytest.raises(RpcError):
            client.poll("nope")

    def test_unknown_command_is_remote_error(self, agent):
        host, port = agent.address
        with RemoteSwitchClient(host, port) as client:
            with pytest.raises(RpcError):
                client._call("FROBNICATE")

    def test_multiple_requests_same_connection(self, agent, client,
                                               tiny_trace):
        for _ in range(3):
            agent.switch.process_trace(tiny_trace)
            sketch = client.poll("univmon")
            assert sketch.total_weight == len(tiny_trace)

    def test_two_concurrent_clients(self, agent, tiny_trace):
        host, port = agent.address
        agent.switch.process_trace(tiny_trace)
        with RemoteSwitchClient(host, port) as c1, \
                RemoteSwitchClient(host, port) as c2:
            assert c1.ping() and c2.ping()
            assert c1.stats()["packets"] == c2.stats()["packets"]


class TestEndToEndPollLoop:
    def test_epoch_loop_over_the_wire(self, agent, small_trace):
        """The full Figure-2 loop with a real socket in the middle."""
        host, port = agent.address
        distincts = []
        with RemoteSwitchClient(host, port) as client:
            for epoch in small_trace.epochs(1.0):
                agent.switch.process_trace(epoch)
                sealed = client.poll("univmon")
                distincts.append(estimate_cardinality(sealed))
        assert len(distincts) == len(small_trace.epochs(1.0))
        assert all(d >= 0 for d in distincts)

    def test_polled_sketches_merge_into_trace_view(self, agent, small_trace):
        host, port = agent.address
        merged = None
        with RemoteSwitchClient(host, port) as client:
            for epoch in small_trace.epochs(1.0):
                agent.switch.process_trace(epoch)
                sealed = client.poll("univmon")
                merged = sealed if merged is None else merged.merge(sealed)
        assert merged.total_weight == len(small_trace)
