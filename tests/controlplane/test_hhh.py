"""Tests for hierarchical heavy hitters over universal sketches."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.controlplane.hhh import HierarchicalHeavyHitterMonitor
from repro.dataplane.keys import src_prefix_key
from repro.dataplane.trace import Trace
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=6, rows=5, width=1024, heap_size=32,
                           seed=9)


def trace_from_sources(sources):
    n = len(sources)
    src = np.asarray(sources, dtype=np.uint32)
    return Trace(
        np.linspace(0, 1, n), src,
        np.full(n, 0x0A000001, dtype=np.uint32),
        np.full(n, 1000, dtype=np.uint16),
        np.full(n, 80, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8),
    )


class TestPrefixKeys:
    def test_truncation(self):
        from repro.dataplane.packet import FiveTuple
        flow = FiveTuple(0x0B16212C, 1, 2, 3, 6)
        assert src_prefix_key(8)(flow) == 0x0B000000
        assert src_prefix_key(16)(flow) == 0x0B160000
        assert src_prefix_key(32)(flow) == 0x0B16212C

    def test_vector_matches_scalar(self):
        trace = trace_from_sources(
            np.array([0x0B16212C, 0xC0A80101], dtype=np.uint32))
        kf = src_prefix_key(16)
        vec = kf.of_trace(trace)
        assert int(vec[0]) == 0x0B160000
        assert int(vec[1]) == 0xC0A80000

    def test_bad_prefix_len(self):
        with pytest.raises(ValueError):
            src_prefix_key(0)
        with pytest.raises(ValueError):
            src_prefix_key(33)


class TestConstruction:
    def test_ladder_validated(self):
        with pytest.raises(ConfigurationError):
            HierarchicalHeavyHitterMonitor(ladder=())
        with pytest.raises(ConfigurationError):
            HierarchicalHeavyHitterMonitor(ladder=(16, 8))
        with pytest.raises(ConfigurationError):
            HierarchicalHeavyHitterMonitor(ladder=(8, 40))


class TestDetection:
    def test_host_heavy_hitter_reported_once(self):
        """An elephant host must appear as a /32 HHH, and its ancestors
        must NOT be reported (discounting removes them)."""
        rng = np.random.default_rng(1)
        elephant = np.full(4000, 0xC0A80164, dtype=np.uint32)
        noise = rng.integers(0x10000000, 0xDF000000, size=4000,
                             dtype=np.uint32)
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        monitor.process_trace(trace_from_sources(
            np.concatenate([elephant, noise])))
        items = monitor.hierarchical_heavy_hitters(0.2)
        assert items, "elephant not found"
        assert items[0].prefix == 0xC0A80164
        assert items[0].prefix_len == 32
        # No coarser prefix should survive discounting.
        assert all(item.prefix_len == 32 for item in items)

    def test_diffuse_subnet_reported_at_prefix_level(self):
        """Many small sources inside one /16: no single /32 is heavy,
        but the /16 aggregate is — the case HHH exists for."""
        rng = np.random.default_rng(2)
        subnet = (0x0B160000 | rng.integers(0, 1 << 16, size=4000)) \
            .astype(np.uint32)
        noise = rng.integers(0x20000000, 0xDF000000, size=4000,
                             dtype=np.uint32)
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        monitor.process_trace(trace_from_sources(
            np.concatenate([subnet, noise])))
        items = monitor.hierarchical_heavy_hitters(0.2)
        found = {(i.prefix, i.prefix_len) for i in items}
        assert (0x0B160000, 16) in found
        assert all(p != 32 or (v >> 16) != 0x0B16 for v, p in found)

    def test_mixed_scenario(self):
        """An elephant host inside an otherwise-hot /16: both the host
        (/32) and the residual subnet (/16, discounted) are reported."""
        rng = np.random.default_rng(3)
        elephant = np.full(3000, 0x0B16212C, dtype=np.uint32)
        subnet = (0x0B160000 | rng.integers(0, 1 << 16, size=3000)) \
            .astype(np.uint32)
        noise = rng.integers(0x20000000, 0xDF000000, size=4000,
                             dtype=np.uint32)
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        monitor.process_trace(trace_from_sources(
            np.concatenate([elephant, subnet, noise])))
        items = monitor.hierarchical_heavy_hitters(0.15)
        found = {(i.prefix, i.prefix_len) for i in items}
        assert (0x0B16212C, 32) in found
        assert (0x0B160000, 16) in found
        # The /16's discounted mass excludes the elephant.
        for item in items:
            if (item.prefix, item.prefix_len) == (0x0B160000, 16):
                assert item.discounted < item.estimate - 2000

    def test_empty_monitor(self):
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        assert monitor.hierarchical_heavy_hitters(0.1) == []

    def test_cidr_rendering(self):
        rng = np.random.default_rng(4)
        elephant = np.full(2000, 0xC0A80164, dtype=np.uint32)
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        monitor.process_trace(trace_from_sources(elephant))
        items = monitor.hierarchical_heavy_hitters(0.5)
        assert items[0].cidr() == "192.168.1.100/32"

    def test_memory_sums_ladder(self):
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        assert monitor.memory_bytes() == 4 * factory().memory_bytes()

    def test_per_packet_path(self):
        monitor = HierarchicalHeavyHitterMonitor(sketch_factory=factory)
        trace = trace_from_sources(np.full(100, 0x01020304,
                                           dtype=np.uint32))
        for packet in trace:
            monitor.update_packet(packet)
        items = monitor.hierarchical_heavy_hitters(0.5)
        assert items and items[0].prefix == 0x01020304
