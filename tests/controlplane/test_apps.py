"""Tests for the estimation apps (one per monitoring task)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.controlplane.apps.cardinality import CardinalityApp
from repro.controlplane.apps.change import ChangeDetectionApp
from repro.controlplane.apps.ddos import DDoSApp
from repro.controlplane.apps.entropy import EntropyApp
from repro.controlplane.apps.heavy_hitters import HeavyHitterApp
from repro.controlplane.apps.moments import MomentsApp
from repro.core.universal import UniversalSketch


def sketch_of(keys, seed=3):
    u = UniversalSketch(levels=6, rows=5, width=512, heap_size=32, seed=seed)
    u.update_array(np.asarray(keys, dtype=np.uint64))
    return u


@pytest.fixture()
def skewed_sketch():
    keys = np.concatenate([
        np.full(2000, 10, dtype=np.uint64),
        np.arange(100, 600, dtype=np.uint64),
    ])
    return sketch_of(keys)


class TestHeavyHitterApp:
    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            HeavyHitterApp(alpha=0.0)
        with pytest.raises(ConfigurationError):
            HeavyHitterApp(alpha=1.0)

    def test_reports_hitters_and_threshold(self, skewed_sketch):
        result = HeavyHitterApp(alpha=0.5).on_sketch(skewed_sketch, 0)
        assert result["keys"] == [10]
        assert result["threshold"] == pytest.approx(0.5 * 2500)

    def test_no_hitters_when_flat(self):
        result = HeavyHitterApp(alpha=0.1).on_sketch(
            sketch_of(np.arange(1000)), 0)
        assert result["keys"] == []


class TestDDoSApp:
    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            DDoSApp(threshold_k=0)

    def test_victim_flag(self):
        sketch = sketch_of(np.arange(2000))
        assert DDoSApp(threshold_k=1000).on_sketch(sketch, 0)["victim"]
        assert not DDoSApp(threshold_k=5000).on_sketch(sketch, 0)["victim"]

    def test_distinct_estimate_reported(self):
        result = DDoSApp(threshold_k=10).on_sketch(
            sketch_of(np.arange(500)), 0)
        assert abs(result["distinct_sources"] - 500) / 500 < 0.4


class TestChangeDetectionApp:
    def test_phi_validated(self):
        with pytest.raises(ConfigurationError):
            ChangeDetectionApp(phi=0.0)

    def test_first_epoch_not_ready(self, skewed_sketch):
        app = ChangeDetectionApp(phi=0.1)
        result = app.on_sketch(skewed_sketch, 0)
        assert result["ready"] is False

    def test_detects_change_across_epochs(self):
        app = ChangeDetectionApp(phi=0.3)
        base = np.arange(300, dtype=np.uint64)
        app.on_sketch(sketch_of(base, seed=9), 0)
        surged = np.concatenate([base, np.full(2000, 777, dtype=np.uint64)])
        result = app.on_sketch(sketch_of(surged, seed=9), 1)
        assert result["ready"]
        assert 777 in result["keys"]
        assert result["total_change"] > 1000

    def test_reset_clears_state(self, skewed_sketch):
        app = ChangeDetectionApp(phi=0.1)
        app.on_sketch(skewed_sketch, 0)
        app.reset()
        assert app.on_sketch(skewed_sketch, 1)["ready"] is False

    def test_previous_epoch_immune_to_later_mutation(self):
        """Regression: the app must not alias the live epoch sketch.

        Holding a live reference means any post-epoch mutation of the
        sealed sketch (hosts recycling buffers, callers reusing the
        object) silently corrupts the next difference.  The app should
        snapshot via ``copy()`` instead.
        """
        app = ChangeDetectionApp(phi=0.3)
        base = np.arange(300, dtype=np.uint64)
        first = sketch_of(base, seed=9)
        app.on_sketch(first, 0)
        # Mutate the sealed sketch after the epoch ended.
        first.update_array(np.full(5000, 424242, dtype=np.uint64))
        # The next epoch replays the *same* traffic as the original
        # epoch 0, so the true difference is zero.
        result = app.on_sketch(sketch_of(base, seed=9), 1)
        assert 424242 not in result["keys"]
        assert result["total_change"] < 500


class TestEntropyApp:
    def test_reports_entropy_and_m(self):
        keys = np.repeat(np.arange(16, dtype=np.uint64), 50)
        result = EntropyApp().on_sketch(sketch_of(keys), 0)
        assert result["packets"] == 800
        assert abs(result["entropy"] - 4.0) < 0.3  # uniform over 16 keys


class TestCardinalityApp:
    def test_reports_distinct(self):
        result = CardinalityApp().on_sketch(sketch_of(np.arange(400)), 0)
        assert abs(result["distinct"] - 400) / 400 < 0.4


class TestMomentsApp:
    def test_p_range_validated(self):
        with pytest.raises(ConfigurationError):
            MomentsApp(fractional_ps=[2.5])

    def test_l1_close_to_truth(self, skewed_sketch):
        result = MomentsApp().on_sketch(skewed_sketch, 0)
        assert abs(result["l1"] - result["true_l1"]) / result["true_l1"] < 0.2
        assert result["f2"] > 0

    def test_fractional_reported(self, skewed_sketch):
        result = MomentsApp(fractional_ps=(0.5,)).on_sketch(skewed_sketch, 0)
        assert "f0.5" in result
