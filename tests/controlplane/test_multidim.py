"""Tests for multidimensional (per-projection) monitoring."""

import pytest

from repro.errors import ConfigurationError
from repro.controlplane.multidim import MultidimensionalMonitor
from repro.dataplane.keys import dst_ip_key, src_dst_key, src_ip_key
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=5, rows=3, width=256, heap_size=16, seed=2)


class TestConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(ConfigurationError):
            MultidimensionalMonitor([])

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            MultidimensionalMonitor([src_ip_key, src_ip_key])

    def test_all_dimensions_helper(self):
        mon = MultidimensionalMonitor.all_dimensions(sketch_factory=factory)
        assert set(mon.sketches) == {"src_ip", "dst_ip", "src_dst",
                                     "five_tuple"}


class TestMonitoring:
    def test_each_dimension_sees_all_packets(self, tiny_trace):
        mon = MultidimensionalMonitor([src_ip_key, dst_ip_key],
                                      sketch_factory=factory)
        mon.process_trace(tiny_trace)
        assert mon.sketch("src_ip").packets == len(tiny_trace)
        assert mon.sketch("dst_ip").packets == len(tiny_trace)

    def test_unknown_dimension_rejected(self, tiny_trace):
        mon = MultidimensionalMonitor([src_ip_key], sketch_factory=factory)
        with pytest.raises(ConfigurationError):
            mon.sketch("dst_ip")

    def test_pair_cardinality_at_least_single_dims(self, small_trace):
        """#distinct (src,dst) pairs >= #distinct srcs — and the monitor's
        estimates should reflect that ordering."""
        mon = MultidimensionalMonitor([src_ip_key, src_dst_key],
                                      sketch_factory=factory)
        mon.process_trace(small_trace)
        assert mon.cardinality("src_dst") > 0.5 * mon.cardinality("src_ip")

    def test_per_packet_path(self, tiny_trace):
        mon = MultidimensionalMonitor([src_ip_key], sketch_factory=factory)
        for packet in tiny_trace:
            mon.update_packet(packet)
        assert mon.sketch("src_ip").packets == len(tiny_trace)

    def test_queries_work_per_dimension(self, small_trace):
        mon = MultidimensionalMonitor([src_ip_key, dst_ip_key],
                                      sketch_factory=factory)
        mon.process_trace(small_trace)
        assert mon.entropy("src_ip") > 0
        assert isinstance(mon.heavy_hitters("dst_ip", 0.05), list)

    def test_memory_sums_dimensions(self):
        mon = MultidimensionalMonitor([src_ip_key, dst_ip_key],
                                      sketch_factory=factory)
        assert mon.memory_bytes() == 2 * factory().memory_bytes()
