"""Tests for the controller's epoch-driven poll loop."""

import pytest

from repro.errors import ConfigurationError
from repro.controlplane import (
    CardinalityApp,
    ChangeDetectionApp,
    Controller,
    EntropyApp,
    HeavyHitterApp,
)
from repro.core.universal import UniversalSketch
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace


def make_controller(epoch_seconds=1.0):
    factory = lambda: UniversalSketch(levels=6, rows=3, width=512,  # noqa
                                      heap_size=32, seed=5)
    return Controller(sketch_factory=factory, epoch_seconds=epoch_seconds)


class TestConfiguration:
    def test_epoch_validated(self):
        with pytest.raises(ConfigurationError):
            Controller(epoch_seconds=0)

    def test_duplicate_app_rejected(self):
        c = make_controller()
        c.register(EntropyApp())
        with pytest.raises(ConfigurationError):
            c.register(EntropyApp())

    def test_register_chainable(self):
        c = make_controller().register(EntropyApp()).register(
            CardinalityApp())
        assert len(c.apps) == 2

    def test_default_sketch_factory_works(self):
        c = Controller()
        assert c.program.sketch.num_levels == 12


class TestPollLoop:
    def test_epoch_reports_cover_trace(self, small_trace):
        c = make_controller(epoch_seconds=1.0)
        c.register(CardinalityApp())
        reports = c.run_trace(small_trace)
        assert len(reports) == len(small_trace.epochs(1.0))
        assert sum(r.packets for r in reports) == len(small_trace)

    def test_every_app_gets_every_epoch(self, small_trace):
        c = make_controller(epoch_seconds=2.0)
        c.register(CardinalityApp()).register(EntropyApp())
        for report in c.run_trace(small_trace):
            assert set(report.results) == {"cardinality", "entropy"}

    def test_report_indexing(self, small_trace):
        c = make_controller(epoch_seconds=2.0)
        c.register(EntropyApp())
        report = c.run_trace(small_trace)[0]
        assert report["entropy"]["entropy"] >= 0.0

    def test_sketch_reset_between_epochs(self, small_trace):
        """Each epoch report must reflect only its own packets."""
        c = make_controller(epoch_seconds=1.0)
        c.register(CardinalityApp())
        reports = c.run_trace(small_trace)
        per_epoch_distinct = [r["cardinality"]["distinct"] for r in reports]
        whole_distinct = small_trace.distinct(c.program.key_function)
        assert all(d < whole_distinct for d in per_epoch_distinct if d > 0)

    def test_change_app_runs_across_epochs(self, small_trace):
        c = make_controller(epoch_seconds=1.0)
        c.register(ChangeDetectionApp(phi=0.05))
        reports = c.run_trace(small_trace)
        assert reports[0]["change"]["ready"] is False
        assert all(r["change"]["ready"] for r in reports[1:])

    def test_reset_propagates_to_apps(self, small_trace):
        c = make_controller(epoch_seconds=2.0)
        app = ChangeDetectionApp(phi=0.05)
        c.register(app)
        c.run_trace(small_trace)
        c.reset()
        assert app._previous is None

    def test_one_snapshot_build_per_epoch_regardless_of_apps(
            self, small_trace):
        """The controller warms one query snapshot per sealed sketch;
        every registered app shares it via the version-guarded cache, so
        the build count equals the epoch count whether one app polls or
        three do."""
        from repro.obs import MetricsRegistry, use_registry
        build_counts = {}
        for label, apps in (
                ("one", [CardinalityApp()]),
                ("three", [CardinalityApp(), EntropyApp(),
                           HeavyHitterApp(alpha=0.01)])):
            c = make_controller(epoch_seconds=1.0)
            for app in apps:
                c.register(app)
            reg = MetricsRegistry()
            with use_registry(reg):
                reports = c.run_trace(small_trace)
            builds = reg.get("univmon_query_snapshot_builds_total")
            assert builds is not None
            build_counts[label] = (builds.value, len(reports))
        for value, epochs in build_counts.values():
            assert value == epochs
        assert build_counts["one"] == build_counts["three"]

    def test_no_apps_no_snapshot_builds(self, small_trace):
        from repro.obs import MetricsRegistry, use_registry
        c = make_controller(epoch_seconds=2.0)
        reg = MetricsRegistry()
        with use_registry(reg):
            c.run_trace(small_trace)
        assert reg.get("univmon_query_snapshot_builds_total") is None

    def test_report_times_are_min_max_for_unsorted_traces(self):
        """Regression: start/end must be min/max of the timestamps.

        Reading ``timestamps[0]``/``timestamps[-1]`` is only correct for
        time-sorted traces; epoch slices assembled from multiple taps
        (or concatenated captures) arrive unsorted.
        """
        import numpy as np

        from repro.dataplane.trace import Trace

        n = 50
        timestamps = np.linspace(0.0, 4.0, n)
        rng = np.random.default_rng(3)
        rng.shuffle(timestamps)
        # Guarantee the endpoints are interior after the shuffle.
        assert timestamps[0] != timestamps.min()
        assert timestamps[-1] != timestamps.max()
        trace = Trace(timestamps,
                      rng.integers(1, 1000, n).astype(np.uint32),
                      np.full(n, 1, dtype=np.uint32),
                      np.full(n, 1000, dtype=np.uint16),
                      np.full(n, 80, dtype=np.uint16),
                      np.full(n, 6, dtype=np.uint8))
        report = make_controller().run_epoch(trace, 0)
        assert report.start_time == pytest.approx(0.0)
        assert report.end_time == pytest.approx(4.0)

    def test_trace_hook_reaches_trace_aware_apps(self, small_trace):
        """Apps exposing ``observe_trace`` get each epoch's raw trace
        before estimation (the detection pipeline relies on this)."""
        seen = []

        class TraceAware(CardinalityApp):
            name = "trace_aware"

            def observe_trace(self, trace):
                seen.append(len(trace))

        c = make_controller(epoch_seconds=1.0)
        c.register(TraceAware())
        reports = c.run_trace(small_trace)
        assert len(seen) == len(reports)
        assert sum(seen) == len(small_trace)

    def test_heavy_hitter_app_integration(self, small_trace):
        from repro.eval.groundtruth import GroundTruth
        c = make_controller(epoch_seconds=10.0)  # one epoch = whole trace
        c.register(HeavyHitterApp(alpha=0.01))
        report = c.run_trace(small_trace)[0]
        truth = GroundTruth(small_trace, c.program.key_function)
        true_keys = truth.heavy_hitter_keys(0.01)
        reported = set(report["heavy_hitters"]["keys"])
        # At this generous width the sets should mostly agree.
        assert len(true_keys - reported) <= max(1, len(true_keys) // 4)
