"""Tests for the analytic bounds — and empirical checks that the
implementations honour their own theory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.bounds import (
    count_min_error,
    count_min_geometry_for,
    count_sketch_error,
    count_sketch_width_for,
    hyperloglog_std_error,
    linear_counting_std_error,
    universal_sketch_levels,
)


class TestFormulas:
    def test_count_sketch_error_shrinks_with_width(self):
        assert count_sketch_error(1024, 5, l2=1000) < \
            count_sketch_error(64, 5, l2=1000)

    def test_count_sketch_error_validates(self):
        with pytest.raises(ConfigurationError):
            count_sketch_error(0, 5, 10)

    def test_count_sketch_width_for(self):
        assert count_sketch_width_for(0.1, l2=100) == 100
        with pytest.raises(ConfigurationError):
            count_sketch_width_for(0, 1)

    def test_count_min_error_formula(self):
        assert count_min_error(1024, 3, l1=10_000) == \
            pytest.approx(np.e * 10_000 / 1024)

    def test_count_min_geometry(self):
        rows, width = count_min_geometry_for(epsilon=0.01, delta=0.01)
        assert rows == 5  # ceil(ln 100)
        assert width == 272  # ceil(e / 0.01)

    def test_linear_counting_error_grows_with_load(self):
        assert linear_counting_std_error(4096, 8000) > \
            linear_counting_std_error(4096, 1000)

    def test_hll_error_halves_per_two_precision_bits(self):
        assert hyperloglog_std_error(12) == \
            pytest.approx(hyperloglog_std_error(14) * 2)

    def test_universal_levels_rule(self):
        assert universal_sketch_levels(64, 64) == 1
        assert universal_sketch_levels(8192, 64) == 8
        with pytest.raises(ConfigurationError):
            universal_sketch_levels(0, 64)


class TestImplementationHonoursTheory:
    def test_count_sketch_within_bound(self):
        """Empirical |error| should fall under the analytic bound for
        almost all point queries."""
        from repro.sketches.countsketch import CountSketch
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2000, size=30_000).astype(np.uint64)
        counts = np.bincount(keys.astype(int), minlength=2000)
        l2 = float(np.sqrt((counts.astype(float) ** 2).sum()))
        cs = CountSketch(rows=5, width=1024, seed=1)
        cs.update_array(keys)
        bound = count_sketch_error(1024, 5, l2, confidence=0.95)
        probe = np.arange(0, 2000, 13, dtype=np.uint64)
        errors = np.abs(cs.query_many(probe) - counts[probe.astype(int)])
        violations = (errors > bound).mean()
        assert violations < 0.05

    def test_count_min_within_bound(self):
        from repro.sketches.countmin import CountMinSketch
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 3000, size=30_000).astype(np.uint64)
        counts = np.bincount(keys.astype(int), minlength=3000)
        cm = CountMinSketch(rows=3, width=1024, seed=2)
        cm.update_array(keys)
        bound = count_min_error(1024, 3, l1=len(keys))
        probe = np.arange(0, 3000, 17, dtype=np.uint64)
        over = cm.query_many(probe) - counts[probe.astype(int)]
        assert (over > bound).mean() < 0.06  # delta = e**-3 ~ 5%

    def test_hll_within_three_sigma(self):
        from repro.sketches.hyperloglog import HyperLogLog
        hll = HyperLogLog(precision=12, seed=3)
        n = 20_000
        hll.update_array(np.arange(n, dtype=np.uint64))
        sigma = hyperloglog_std_error(12)
        assert abs(hll.cardinality() - n) / n < 4 * sigma

    def test_linear_counter_within_bound(self):
        from repro.sketches.bitmap import LinearCounter
        lc = LinearCounter(bits=8192, seed=4)
        n = 3000
        lc.update_array(np.arange(n, dtype=np.uint64))
        sigma = linear_counting_std_error(8192, n)
        assert abs(lc.cardinality() - n) / n < 5 * sigma + 0.01
