"""Tests for the Recursive Sum estimator (Algorithm 2) and its wrappers."""

import gc
import math

import numpy as np
import pytest

from repro.errors import NotSketchableError
from repro.core.gfunctions import CARDINALITY, GFunction, IDENTITY
from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    estimate_f2,
    estimate_gsum,
    estimate_l1,
    estimate_l2,
    estimate_moment,
    g_core,
    heavy_changes,
)
from repro.core.universal import UniversalSketch
from repro.obs import MetricsRegistry, use_registry
from repro.sketches.exact import ExactCounter


def build_sketch(keys, seed=1, levels=8, width=1024, heap=64, rows=5):
    u = UniversalSketch(levels=levels, rows=rows, width=width,
                        heap_size=heap, seed=seed)
    u.update_array(np.asarray(keys, dtype=np.uint64))
    return u


@pytest.fixture(scope="module")
def zipf_keys(zipf_keys_factory):
    # Shared workload shape (tests/conftest.py), historical seed kept.
    return zipf_keys_factory(packets=20_000, flows=2_000, skew=1.2, seed=7)


@pytest.fixture(scope="module")
def zipf_sketch(zipf_keys):
    return build_sketch(zipf_keys)


@pytest.fixture(scope="module")
def zipf_exact(zipf_keys):
    c = ExactCounter()
    c.update_array(zipf_keys)
    return c


class TestGSumCore:
    def test_l1_close_to_stream_length(self, zipf_sketch, zipf_keys):
        est = estimate_l1(zipf_sketch)
        assert abs(est - len(zipf_keys)) / len(zipf_keys) < 0.15

    def test_cardinality(self, zipf_sketch, zipf_exact):
        est = estimate_cardinality(zipf_sketch)
        true = zipf_exact.cardinality()
        assert abs(est - true) / true < 0.25

    def test_entropy(self, zipf_sketch, zipf_exact):
        est = estimate_entropy(zipf_sketch, base=2.0)
        true = zipf_exact.entropy(base=2.0)
        assert abs(est - true) / true < 0.1

    def test_entropy_other_base(self, zipf_sketch, zipf_exact):
        est = estimate_entropy(zipf_sketch, base=math.e)
        true = zipf_exact.entropy(base=math.e)
        assert abs(est - true) / true < 0.1

    def test_f2_and_l2(self, zipf_sketch, zipf_exact):
        true_f2 = zipf_exact.moment(2)
        assert abs(estimate_f2(zipf_sketch) - true_f2) / true_f2 < 0.2
        assert abs(estimate_l2(zipf_sketch) - math.sqrt(true_f2)) \
            / math.sqrt(true_f2) < 0.1

    def test_fractional_moment(self, zipf_sketch, zipf_exact):
        true = zipf_exact.moment(0.5)
        est = estimate_moment(zipf_sketch, 0.5)
        assert abs(est - true) / true < 0.3

    def test_rejects_unsketchable_g(self, zipf_sketch):
        cube = GFunction("cube_test", lambda x: x ** 3)
        with pytest.raises(NotSketchableError):
            estimate_gsum(zipf_sketch, cube)

    def test_moment_above_two_rejected(self, zipf_sketch):
        with pytest.raises(NotSketchableError):
            estimate_moment(zipf_sketch, 2.6)

    def test_empty_sketch_estimates_zero(self):
        u = UniversalSketch(levels=4, rows=3, width=64, heap_size=8, seed=1)
        assert estimate_cardinality(u) == 0.0
        assert estimate_l1(u) == 0.0
        assert estimate_entropy(u) == 0.0


class TestRecursionExactRegime:
    def test_exact_when_heaps_hold_everything(self):
        """With heap >= distinct keys per level, Algorithm 2 is exact
        up to Count Sketch noise (here zero: huge width, few keys)."""
        keys = np.repeat(np.arange(20, dtype=np.uint64), 5)
        u = build_sketch(keys, levels=6, width=4096, heap=64)
        assert estimate_cardinality(u) == pytest.approx(20, abs=0.5)
        assert estimate_l1(u) == pytest.approx(100, abs=1.0)

    def test_single_key_stream(self):
        u = build_sketch(np.full(50, 9, dtype=np.uint64),
                         levels=5, width=512, heap=8)
        assert estimate_cardinality(u) == pytest.approx(1, abs=0.1)
        assert estimate_entropy(u) == pytest.approx(0.0, abs=0.05)


class TestGCore:
    def test_threshold_filtering(self):
        keys = np.concatenate([np.full(900, 1, dtype=np.uint64),
                               np.full(100, 2, dtype=np.uint64)])
        u = build_sketch(keys, levels=5, width=1024, heap=16)
        assert {k for k, _ in g_core(u, 0.5)} == {1}
        assert {k for k, _ in g_core(u, 0.05)} == {1, 2}

    def test_custom_total(self):
        keys = np.full(100, 3, dtype=np.uint64)
        u = build_sketch(keys, levels=4, width=256, heap=8)
        # With an inflated total, nothing crosses the threshold.
        assert g_core(u, 0.5, total=1e9) == []


class TestHeavyChanges:
    def test_detects_injected_change(self):
        rng = np.random.default_rng(3)
        base = rng.integers(0, 500, size=8000).astype(np.uint64)
        epoch_a = base
        epoch_b = np.concatenate([base, np.full(2000, 777, dtype=np.uint64)])
        a = build_sketch(epoch_a, seed=5, levels=6, width=1024, heap=32)
        b = build_sketch(epoch_b, seed=5, levels=6, width=1024, heap=32)
        changes, total = heavy_changes(b, a, phi=0.3)
        assert total > 1000
        assert 777 in {k for k, _ in changes}

    def test_identical_epochs_report_nothing(self):
        keys = np.arange(500, dtype=np.uint64)
        a = build_sketch(keys, seed=6, levels=5, width=512, heap=16)
        b = build_sketch(keys, seed=6, levels=5, width=512, heap=16)
        changes, total = heavy_changes(a, b, phi=0.05)
        assert changes == []
        assert total == 0.0

    def test_decrease_detected_with_sign(self):
        a = build_sketch(np.full(1000, 5, dtype=np.uint64), seed=7,
                         levels=5, width=512, heap=16)
        b = build_sketch(np.full(100, 5, dtype=np.uint64), seed=7,
                         levels=5, width=512, heap=16)
        changes, _ = heavy_changes(b, a, phi=0.3)
        assert changes and changes[0][0] == 5
        assert changes[0][1] < 0  # traffic dropped


class TestUnbiasedness:
    def test_cardinality_unbiased_over_seeds(self):
        """Algorithm 2 is an unbiased estimator: mean over seeds ~ truth."""
        keys = np.arange(600, dtype=np.uint64)  # 600 distinct, flat
        estimates = []
        for seed in range(40):
            u = build_sketch(keys, seed=seed, levels=6, width=512, heap=48)
            estimates.append(estimate_cardinality(u))
        assert abs(np.mean(estimates) - 600) / 600 < 0.15


class TestValidationCache:
    def test_cache_keyed_by_object_not_name(self, zipf_sketch):
        # Warm the cache with the stock IDENTITY g-function.
        estimate_gsum(zipf_sketch, IDENTITY)
        # A user-defined g reusing a stock *name* must still be
        # validated on its own merits (regression: a name-keyed cache
        # skipped the check and accepted this cubic g silently).
        impostor = GFunction("identity",
                             lambda x: 0.0 if x <= 0 else float(x) ** 3,
                             stream_polylog=True)
        with pytest.raises(NotSketchableError):
            estimate_gsum(zipf_sketch, impostor)

    def test_revalidates_fresh_equivalent_objects(self, zipf_sketch):
        for _ in range(2):
            g = GFunction("identity", lambda x: float(x))
            assert estimate_gsum(zipf_sketch, g) > 0

    def test_entropy_base_gfunction_is_cached(self, zipf_sketch):
        from repro.core.gsum import _entropy_gfunction
        assert _entropy_gfunction(10.0) is _entropy_gfunction(10.0)
        # Odd bases go through the cached g and keep the change-of-base
        # relation with the stock base-2 estimate.
        h2 = estimate_entropy(zipf_sketch, base=2.0)
        h10 = estimate_entropy(zipf_sketch, base=10.0)
        assert h10 == pytest.approx(h2 * math.log(2) / math.log(10),
                                    rel=1e-9)

    def test_natural_base_uses_stock_gfunction(self, zipf_sketch):
        from repro.core.gsum import _ENTROPY_BASE
        before = dict(_ENTROPY_BASE)
        estimate_entropy(zipf_sketch, base=math.e)
        assert _ENTROPY_BASE == before  # no per-base lambda built for e


class TestQuerySpans:
    """Regression: every public estimate records exactly one
    ``univmon_sketch_query_seconds`` span, whether called directly
    (op="gsum") or through a named wrapper (only the wrapper's op)."""

    def _spans(self, reg):
        return {dict(m.labels)["op"]: m.count for m in reg.metrics()
                if m.name == "univmon_sketch_query_seconds"}

    def test_direct_gsum_records_one_span(self, zipf_sketch):
        reg = MetricsRegistry()
        with use_registry(reg):
            estimate_gsum(zipf_sketch, IDENTITY)
        assert self._spans(reg) == {"gsum": 1}

    def test_wrapped_estimates_record_only_the_wrapper(self, zipf_sketch):
        reg = MetricsRegistry()
        with use_registry(reg):
            estimate_cardinality(zipf_sketch)  # wraps estimate_gsum
            estimate_l1(zipf_sketch)           # wraps estimate_gsum
            estimate_entropy(zipf_sketch)      # wraps snapshot gsum
            estimate_moment(zipf_sketch, 0.5)  # wraps estimate_gsum
            g_core(zipf_sketch, 0.01)
            estimate_f2(zipf_sketch)
            estimate_l2(zipf_sketch)
        spans = self._spans(reg)
        assert spans == {"cardinality": 1, "l1": 1, "entropy": 1,
                         "moment": 1, "heavy_hitters": 1, "f2": 1,
                         "l2": 1}
        assert "gsum" not in spans

    def test_sketch_methods_share_the_series(self, zipf_sketch):
        # UniversalSketch.g_sum delegates to estimate_gsum: same op.
        reg = MetricsRegistry()
        with use_registry(reg):
            zipf_sketch.g_sum(IDENTITY)
            zipf_sketch.cardinality()
        spans = self._spans(reg)
        assert spans["gsum"] == 1
        assert spans["cardinality"] == 1

    def test_heavy_changes_is_one_span(self):
        keys = np.arange(300, dtype=np.uint64)
        a = UniversalSketch(levels=5, rows=3, width=512, heap_size=16,
                            seed=6)
        b = a.copy()
        a.update_array(keys)
        b.update_array(keys[:100])
        reg = MetricsRegistry()
        with use_registry(reg):
            heavy_changes(a, b, phi=0.05)
        assert self._spans(reg) == {"heavy_changes": 1}


class TestCacheBounds:
    """The validation and entropy-base caches must stay bounded and drop
    entries for dead g-functions (weakref callback)."""

    def test_validated_drops_dead_gfunctions(self, zipf_sketch):
        from repro.core.gsum import _VALIDATED
        g = GFunction("transient_test", lambda x: float(x))
        estimate_gsum(zipf_sketch, g)
        key = id(g)
        assert key in _VALIDATED
        del g
        gc.collect()
        assert key not in _VALIDATED

    def test_validated_bounded_with_live_gfunctions(self, zipf_sketch):
        from repro.core.gsum import _VALIDATED, _VALIDATED_MAX
        live = [GFunction(f"live_{i}", lambda x: float(x))
                for i in range(_VALIDATED_MAX + 16)]
        for g in live:
            estimate_gsum(zipf_sketch, g)
        assert len(_VALIDATED) <= _VALIDATED_MAX
        # LRU: the most recent g's survive, the oldest were evicted.
        assert id(live[-1]) in _VALIDATED
        assert id(live[0]) not in _VALIDATED
        # An evicted-but-live g is simply re-validated on next use.
        assert estimate_gsum(zipf_sketch, live[0]) >= 0.0

    def test_entropy_base_cache_bounded(self, zipf_sketch):
        from repro.core.gsum import _ENTROPY_BASE, _ENTROPY_BASE_MAX
        _ENTROPY_BASE.clear()
        for base in range(3, 3 + _ENTROPY_BASE_MAX + 6):
            estimate_entropy(zipf_sketch, base=float(base))
        assert len(_ENTROPY_BASE) <= _ENTROPY_BASE_MAX

    def test_entropy_base_cache_is_lru(self, zipf_sketch):
        from repro.core.gsum import _ENTROPY_BASE, _ENTROPY_BASE_MAX
        _ENTROPY_BASE.clear()
        bases = [float(b) for b in range(3, 3 + _ENTROPY_BASE_MAX)]
        for base in bases:
            estimate_entropy(zipf_sketch, base=base)
        estimate_entropy(zipf_sketch, base=bases[0])  # refresh oldest
        estimate_entropy(zipf_sketch, base=99.0)      # force one eviction
        assert bases[0] in _ENTROPY_BASE   # refreshed entry survived
        assert bases[1] not in _ENTROPY_BASE  # true oldest evicted
