"""Round-trip tests for the sketch wire format."""

import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.core import serialization
from repro.core.gsum import estimate_cardinality, estimate_entropy
from repro.core.universal import UniversalSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch


def filled_universal(seed=5):
    u = UniversalSketch(levels=6, rows=3, width=256, heap_size=16, seed=seed)
    rng = np.random.default_rng(1)
    u.update_array(rng.integers(0, 2000, size=5000).astype(np.uint64))
    return u


class TestRoundTrips:
    def test_count_sketch(self):
        cs = CountSketch(rows=3, width=64, seed=2)
        cs.update(42, 10)
        back = serialization.loads(serialization.dumps(cs))
        assert isinstance(back, CountSketch)
        assert np.array_equal(back.table, cs.table)
        assert back.query(42) == cs.query(42)  # hashes rebuilt from seed

    def test_count_min(self):
        cm = CountMinSketch(rows=3, width=64, seed=3)
        cm.update(7, 5)
        back = serialization.loads(serialization.dumps(cm))
        assert isinstance(back, CountMinSketch)
        assert back.query(7) == 5

    def test_kary(self):
        ks = KArySketch(rows=3, width=64, seed=4)
        ks.update(9, 100)
        back = serialization.loads(serialization.dumps(ks))
        assert isinstance(back, KArySketch)
        assert abs(back.query(9) - 100) < 10

    def test_universal_full_state(self):
        u = filled_universal()
        back = serialization.loads(serialization.dumps(u))
        assert isinstance(back, UniversalSketch)
        assert back.packets == u.packets
        assert back.total_weight == u.total_weight
        for la, lb in zip(u.levels, back.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)
            assert dict(la.topk.items()) == dict(lb.topk.items())
            assert (la.packets, la.weight) == (lb.packets, lb.weight)

    def test_universal_estimates_survive(self):
        u = filled_universal()
        back = serialization.loads(serialization.dumps(u))
        assert estimate_cardinality(back) == \
            pytest.approx(estimate_cardinality(u))
        assert estimate_entropy(back) == pytest.approx(estimate_entropy(u))

    def test_deserialized_is_mergeable_with_original(self):
        """The point of reconstructing hashes from the seed."""
        u = filled_universal(seed=6)
        back = serialization.loads(serialization.dumps(u))
        merged = u.merge(back)
        assert merged.total_weight == 2 * u.total_weight


class TestSparseAndEmptyStates:
    """Boundary states the delta codec leans on: empty sketches (a
    restarted switch's first poll), heap-only occupancy, and geometry
    at the serializer's documented limits."""

    def assert_round_trips(self, u):
        back = serialization.loads(serialization.dumps(u))
        assert back.packets == u.packets
        assert len(back.levels) == len(u.levels)
        for la, lb in zip(u.levels, back.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)
            assert dict(la.topk.items()) == dict(lb.topk.items())
            assert (la.packets, la.weight) == (lb.packets, lb.weight)
        return back

    def test_empty_universal_round_trip(self):
        u = UniversalSketch(levels=4, rows=2, width=64, heap_size=8, seed=1)
        back = self.assert_round_trips(u)
        assert back.packets == 0
        assert all(not lv.sketch.table.any() for lv in back.levels)

    def test_zero_levels_round_trip(self):
        u = UniversalSketch(levels=0, rows=2, width=32, heap_size=4, seed=1)
        u.update(11)
        self.assert_round_trips(u)

    def test_single_key_sparse_round_trip(self):
        # One update leaves all-but-rows counters zero per level and a
        # single heap entry; the sparse state must survive exactly.
        u = UniversalSketch(levels=4, rows=2, width=64, heap_size=8, seed=1)
        u.update(42, 3)
        back = self.assert_round_trips(u)
        assert back.levels[0].topk.items() == [(42, 3.0)]

    def test_heap_only_levels_round_trip(self):
        # Deep levels often have heap entries but near-empty tables.
        u = UniversalSketch(levels=8, rows=1, width=8, heap_size=4, seed=2)
        for key in range(4):
            u.update(key)
        self.assert_round_trips(u)

    def test_max_levels_geometry_round_trip(self):
        u = UniversalSketch(levels=serialization.MAX_LEVELS, rows=1,
                            width=8, heap_size=2, seed=3)
        u.update(5)
        self.assert_round_trips(u)

    def test_empty_tableau_sketches_round_trip(self):
        for cls in (CountSketch, CountMinSketch, KArySketch):
            sk = cls(rows=2, width=8, seed=9)
            back = serialization.loads(serialization.dumps(sk))
            assert isinstance(back, cls)
            assert np.array_equal(back.table, sk.table)
            assert not back.table.any()


class TestErrors:
    def test_unseeded_rejected(self):
        with pytest.raises(ConfigurationError):
            serialization.dumps(CountSketch(rows=2, width=8))

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            serialization.dumps(object())

    def test_conservative_cm_rejected(self):
        cm = CountMinSketch(rows=2, width=8, seed=1, conservative=True)
        with pytest.raises(ConfigurationError):
            serialization.dumps(cm)

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            serialization.loads(b"NOPE" + b"\x00" * 40)

    def test_truncated_payload_rejected(self):
        data = serialization.dumps(CountSketch(rows=2, width=8, seed=1))
        with pytest.raises(TraceFormatError):
            serialization.loads(data[:len(data) // 2])

    def test_unknown_tag_rejected(self):
        data = bytearray(serialization.dumps(
            CountSketch(rows=2, width=8, seed=1)))
        data[4] = 99  # corrupt the type tag
        with pytest.raises(TraceFormatError):
            serialization.loads(bytes(data))


class TestHardening:
    """Hostile payloads must raise TraceFormatError — never a raw
    struct/numpy traceback or a giant allocation."""

    # magic(4) | tag(1) | levels(4) rows(4) width(4) heap(4) seed(8)
    # packets(8) | per level: packets(8) weight(8) nbytes(4) table ...
    _HDR = struct.Struct("<BIIIIqq")

    def _universal_header(self, levels=1, rows=1, width=8, heap=4,
                          seed=1, packets=0):
        return b"UMS1" + self._HDR.pack(4, levels, rows, width, heap,
                                        seed, packets)

    def test_truncation_at_every_offset_rejected(self):
        data = serialization.dumps(filled_universal())
        for cut in range(0, len(data), max(1, len(data) // 64)):
            with pytest.raises(TraceFormatError):
                serialization.loads(data[:cut])

    def test_hostile_width_rejected_before_allocation(self):
        # A 2**31 width would mean a multi-GB table allocation.
        with pytest.raises(TraceFormatError, match="width"):
            serialization.loads(self._universal_header(width=2 ** 31))

    def test_hostile_level_count_rejected(self):
        with pytest.raises(TraceFormatError, match="levels"):
            serialization.loads(self._universal_header(levels=10_000))

    def test_hostile_heap_capacity_rejected(self):
        with pytest.raises(TraceFormatError, match="heap"):
            serialization.loads(self._universal_header(heap=2 ** 30))

    def test_negative_packets_rejected(self):
        with pytest.raises(TraceFormatError):
            serialization.loads(self._universal_header(packets=-1))

    def test_table_size_mismatch_rejected(self):
        data = bytearray(serialization.dumps(
            CountSketch(rows=2, width=8, seed=1)))
        # tableau layout: magic(4) tag(1) rows(4) width(4) seed(8)
        # then table nbytes(4); lie about the table length.
        struct.pack_into("<I", data, 21, 8)
        with pytest.raises(TraceFormatError, match="table"):
            serialization.loads(bytes(data))

    def test_heap_count_above_capacity_rejected(self):
        u = UniversalSketch(levels=1, rows=1, width=8, heap_size=4, seed=1)
        data = bytearray(serialization.dumps(u))
        # First level's topk header follows the 37-byte universal header
        # plus packets/weight (16) and the length-prefixed table.
        table_off = 37 + 16
        (nbytes,) = struct.unpack_from("<I", data, table_off)
        count_off = table_off + 4 + nbytes + 4  # skip capacity field
        struct.pack_into("<I", data, count_off, u.heap_size + 1)
        with pytest.raises(TraceFormatError, match="capacity"):
            serialization.loads(bytes(data))


class TestCompactness:
    def test_size_dominated_by_counters(self):
        """The wire size should be ~ counters * 8B, not hash tables."""
        u = UniversalSketch(levels=4, rows=3, width=256, heap_size=16,
                            seed=7)
        payload = serialization.dumps(u)
        counter_bytes = (4 + 1) * 3 * 256 * 8
        assert len(payload) < counter_bytes * 1.3
