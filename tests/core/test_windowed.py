"""Tests for the sliding-window universal sketch (§5 extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.windowed import SlidingWindowUniversalSketch


def make(window=3, seed=1):
    return SlidingWindowUniversalSketch(
        window_epochs=window, levels=5, rows=3, width=256, heap_size=16,
        seed=seed)


class TestConstruction:
    def test_requires_seed(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowUniversalSketch(window_epochs=3)

    def test_requires_positive_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowUniversalSketch(window_epochs=0, seed=1)


class TestSnapshotSemantics:
    """Regression: with an empty epoch ring, window_sketch() used to
    return the *live* current-epoch sketch, aliasing mutable data-plane
    state to the caller (the UniversalSketch.copy() contract promises an
    independent snapshot)."""

    def test_window_sketch_is_independent_of_further_ingest(self):
        w = make()
        w.update(7, 3)
        snap = w.window_sketch()
        assert snap is not w._current
        w.update(7, 100)
        assert snap.total_weight == 3
        assert w.window_sketch().total_weight == 103

    def test_mutating_snapshot_leaves_window_untouched(self):
        w = make()
        w.update(1, 1)
        snap = w.window_sketch()
        snap.update(2, 50)
        assert w.window_sketch().total_weight == 1

    def test_snapshot_with_sealed_epochs_is_also_independent(self):
        w = make(window=2)
        w.update_array(np.full(100, 9, dtype=np.uint64))
        w.advance_epoch()
        w.update(9, 1)
        snap = w.window_sketch()
        w.update(9, 1000)
        assert snap.total_weight == 101


class TestWindowSemantics:
    def test_current_epoch_included(self):
        w = make()
        w.update(5, 10)
        sketch = w.window_sketch()
        assert sketch.total_weight == 10

    def test_window_accumulates_epochs(self):
        w = make(window=3)
        for epoch in range(3):
            w.update_array(np.full(100, epoch, dtype=np.uint64))
            w.advance_epoch()
        assert w.epochs_in_window() == 3
        assert w.window_sketch().total_weight == 300

    def test_old_epochs_expire(self):
        w = make(window=2)
        # Epoch 0: key 111 dominates; then push it out of the window.
        w.update_array(np.full(500, 111, dtype=np.uint64))
        w.advance_epoch()
        for epoch in range(2):
            w.update_array(np.arange(100, dtype=np.uint64))
            w.advance_epoch()
        merged = w.window_sketch()
        assert merged.total_weight == 200  # key 111's epoch fell out
        assert 111 not in {k for k, _ in merged.heavy_hitters(0.3)}

    def test_queries_over_window(self):
        w = make(window=4)
        for epoch in range(3):
            w.update_array(
                (np.arange(50, dtype=np.uint64) + 50 * epoch))
            w.advance_epoch()
        # 150 distinct keys in the window.
        card = w.cardinality()
        assert abs(card - 150) / 150 < 0.4
        assert w.entropy() > 5.0  # near-uniform over 150 keys

    def test_heavy_hitters_over_window(self):
        w = make(window=2)
        w.update_array(np.full(300, 42, dtype=np.uint64))
        w.advance_epoch()
        w.update_array(np.arange(100, dtype=np.uint64))
        hh = w.heavy_hitters(0.5)
        assert [k for k, _ in hh] == [42]

    def test_memory_scales_with_epochs_resident(self):
        w = make(window=3)
        m1 = w.memory_bytes()
        w.advance_epoch()
        assert w.memory_bytes() == 2 * m1

    def test_g_sum_delegates(self):
        from repro.core.gfunctions import IDENTITY
        w = make()
        w.update(1, 20)
        assert w.g_sum(IDENTITY) == pytest.approx(20, abs=2)
