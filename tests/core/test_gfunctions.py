"""Tests for the g-function library and the Stream-PolyLog screen."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotSketchableError
from repro.core.gfunctions import (
    ABS,
    CARDINALITY,
    ENTROPY_NATS,
    ENTROPY_SUM,
    IDENTITY,
    SQUARE,
    GFunction,
    is_stream_polylog,
    make_moment,
    require_stream_polylog,
)


class TestStockFunctions:
    def test_identity(self):
        assert IDENTITY(5) == 5.0
        assert IDENTITY(0) == 0.0

    def test_square(self):
        assert SQUARE(3) == 9.0

    def test_abs(self):
        assert ABS(-4) == 4.0

    def test_cardinality_convention(self):
        """x**0 with 0**0 = 0: counts presence, not value."""
        assert CARDINALITY(0) == 0.0
        assert CARDINALITY(1) == 1.0
        assert CARDINALITY(734) == 1.0

    def test_entropy_sum_base2(self):
        assert ENTROPY_SUM(0) == 0.0
        assert ENTROPY_SUM(1) == 0.0
        assert ENTROPY_SUM(8) == pytest.approx(24.0)  # 8*log2(8)

    def test_entropy_sum_nats(self):
        assert ENTROPY_NATS(math.e) == pytest.approx(math.e)

    def test_applied_to_magnitude(self):
        assert IDENTITY.applied_to_magnitude(-7) == 7.0
        assert ENTROPY_SUM.applied_to_magnitude(-8) == pytest.approx(24.0)

    def test_all_stock_functions_pass_screen(self):
        for g in (IDENTITY, SQUARE, ABS, CARDINALITY, ENTROPY_SUM,
                  ENTROPY_NATS):
            assert is_stream_polylog(g.fn), g.name


class TestApplyArray:
    """The vectorised twins must agree elementwise with the scalar fn,
    and user g's without a vec must work through the cached fallback."""

    XS = np.array([0.0, 0.5, 1.0, 2.0, 3.5, 1000.0, 1e6])

    @pytest.mark.parametrize("g", [IDENTITY, SQUARE, ABS, CARDINALITY,
                                   ENTROPY_SUM, ENTROPY_NATS,
                                   make_moment(0.5), make_moment(1.5)],
                             ids=lambda g: g.name)
    def test_stock_vec_matches_scalar_fn(self, g):
        assert g.vec is not None
        vec = g.apply_array(self.XS)
        scalar = np.array([g(float(x)) for x in self.XS])
        np.testing.assert_allclose(vec, scalar, rtol=1e-12, atol=0)

    def test_user_g_falls_back_to_vectorize(self):
        g = GFunction("user_sqrt",
                      lambda x: math.sqrt(x) if x > 0 else 0.0)
        assert g.vec is None
        vec = g.apply_array(self.XS)
        scalar = np.array([g(float(x)) for x in self.XS])
        np.testing.assert_allclose(vec, scalar, rtol=1e-12, atol=0)

    def test_fallback_vectorize_is_built_once(self):
        calls = []

        def fn(x):
            calls.append(x)
            return float(x)

        g = GFunction("counting", fn)
        g.apply_array(np.array([1.0, 2.0]))
        first = g.__dict__.get("_np_fallback")
        assert first is not None
        g.apply_array(np.array([3.0]))
        assert g.__dict__.get("_np_fallback") is first
        assert len(calls) == 3  # one fn call per element, no rebuild cost

    def test_apply_array_returns_float64(self):
        out = IDENTITY.apply_array(np.array([1, 2, 3], dtype=np.int64))
        assert out.dtype == np.float64

    def test_empty_input(self):
        for g in (IDENTITY, ENTROPY_SUM, make_moment(0.5)):
            assert g.apply_array(np.array([])).shape == (0,)


class TestScreen:
    def test_rejects_nonzero_at_zero(self):
        assert not is_stream_polylog(lambda x: x + 1)

    def test_rejects_decreasing(self):
        assert not is_stream_polylog(lambda x: -x)

    def test_rejects_nonmonotone(self):
        assert not is_stream_polylog(
            lambda x: x * (1000 - x) if x < 1000 else 0)

    def test_rejects_super_quadratic(self):
        assert not is_stream_polylog(lambda x: x ** 3)
        assert not is_stream_polylog(lambda x: x ** 2.5)

    def test_accepts_boundary_square(self):
        assert is_stream_polylog(lambda x: x * x)

    def test_accepts_sublinear(self):
        assert is_stream_polylog(lambda x: math.sqrt(x) if x > 0 else 0.0)

    def test_require_raises_for_bad_claim(self):
        bad = GFunction("cube", lambda x: x ** 3, stream_polylog=True)
        with pytest.raises(NotSketchableError):
            require_stream_polylog(bad)

    def test_require_raises_for_claimed_false(self):
        g = GFunction("fine_but_disowned", lambda x: float(x),
                      stream_polylog=False)
        with pytest.raises(NotSketchableError):
            require_stream_polylog(g)

    def test_require_passes_stock(self):
        require_stream_polylog(IDENTITY)  # no raise


class TestMakeMoment:
    def test_rejects_negative(self):
        with pytest.raises(NotSketchableError):
            make_moment(-1)

    @pytest.mark.parametrize("p", [0.25, 0.5, 1.0, 1.5, 2.0])
    def test_in_range_is_polylog(self, p):
        g = make_moment(p)
        assert g.stream_polylog
        assert is_stream_polylog(g.fn)

    def test_above_two_flagged(self):
        g = make_moment(2.5)
        assert not g.stream_polylog

    def test_values(self):
        g = make_moment(0.5)
        assert g(4) == pytest.approx(2.0)
        assert g(0) == 0.0

    @given(st.floats(min_value=0.0, max_value=2.0),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_property_moment_nonnegative_monotone_pointwise(self, p, x):
        g = make_moment(p)
        assert g(x) >= 0.0
        assert g(x + 1.0) >= g(x) - 1e-9
