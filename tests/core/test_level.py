"""Tests for one universal-sketch level (Count Sketch + Q_j heap)."""

import numpy as np
import pytest

from repro.core.level import SketchLevel


class TestScalarUpdate:
    def test_counts_and_weight_tracked(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=1)
        lvl.update(1, 5)
        lvl.update(2)
        assert lvl.packets == 2
        assert lvl.weight == 6

    def test_heap_tracks_heavy_keys(self):
        lvl = SketchLevel(rows=5, width=256, heap_size=4, seed=2)
        lvl.update(100, 1000)
        for k in range(50):
            lvl.update(k, 1)
        hh = lvl.heavy_hitters()
        assert hh[0][0] == 100
        assert abs(hh[0][1] - 1000) / 1000 < 0.1

    def test_update_estimate_matches_sketch_query(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=16, seed=3)
        for k in [1, 2, 1, 1, 3]:
            lvl.update(k)
        for key, est in lvl.heavy_hitters():
            assert est == pytest.approx(lvl.sketch.query(key))


class TestBulkUpdate:
    def test_counters_match_scalar_path(self):
        a = SketchLevel(rows=3, width=64, heap_size=8, seed=4)
        b = SketchLevel(rows=3, width=64, heap_size=8, seed=4)
        keys = np.array([5, 5, 9, 2, 5], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.sketch.table, b.sketch.table)
        assert a.packets == b.packets and a.weight == b.weight

    def test_bulk_with_weights(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=5)
        lvl.update_array(np.array([1, 2], dtype=np.uint64),
                         np.array([10, 20], dtype=np.int64))
        assert lvl.weight == 30

    def test_empty_batch_noop(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=6)
        lvl.update_array(np.array([], dtype=np.uint64))
        assert lvl.packets == 0

    def test_bulk_heap_has_top_keys(self):
        lvl = SketchLevel(rows=5, width=512, heap_size=4, seed=7)
        keys = np.concatenate([
            np.full(500, 111, dtype=np.uint64),
            np.full(300, 222, dtype=np.uint64),
            np.arange(100, dtype=np.uint64),
        ])
        lvl.update_array(keys)
        top_keys = [k for k, _ in lvl.heavy_hitters()[:2]]
        assert set(top_keys) == {111, 222}


class TestRefresh:
    def test_refresh_requeries_estimates(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=8)
        lvl.update(1, 10)
        # Mutate the underlying sketch directly (as merge does), then
        # refresh: the heap estimate must follow the counters.
        lvl.sketch.table *= 2
        lvl.refresh_heap()
        assert lvl.topk.estimate(1) == pytest.approx(20.0)

    def test_refresh_empty_heap_noop(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=9)
        lvl.refresh_heap()
        assert len(lvl.topk) == 0


class TestAccounting:
    def test_memory_includes_sketch_and_heap(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=1)
        assert lvl.memory_bytes() == 3 * 64 * 4 + 8 * 16

    def test_update_cost_includes_heap_touch(self):
        lvl = SketchLevel(rows=3, width=64, heap_size=8, seed=1)
        assert lvl.update_cost().memory_words == 3 + 1
