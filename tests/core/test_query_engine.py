"""Tests for the vectorised query engine: snapshot parity with the
scalar reference, the version-guarded cache, and batched evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.gfunctions import (
    ABS,
    CARDINALITY,
    ENTROPY_SUM,
    IDENTITY,
    SQUARE,
    GFunction,
    make_moment,
)
from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    estimate_f2,
    estimate_gsum,
    estimate_gsum_scalar,
    estimate_l1,
    g_core,
    snapshot_of,
)
from repro.core.query import (
    DEFAULT_STATISTICS,
    QueryEngine,
    QuerySnapshot,
    Statistic,
)
from repro.core.universal import UniversalSketch
from repro.obs import MetricsRegistry, use_registry

STOCK_GS = (IDENTITY, SQUARE, ABS, CARDINALITY, ENTROPY_SUM,
            make_moment(0.5), make_moment(1.5))


def build_sketch(keys, seed=1, levels=8, width=1024, heap=64, rows=5):
    u = UniversalSketch(levels=levels, rows=rows, width=width,
                        heap_size=heap, seed=seed)
    if len(keys):
        u.update_array(np.asarray(keys, dtype=np.uint64))
    return u


@pytest.fixture(scope="module")
def zipf_sketch(zipf_keys_factory):
    return build_sketch(zipf_keys_factory(packets=20_000, flows=2_000,
                                          skew=1.2, seed=7))


def assert_close(a, b):
    assert math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-9), (a, b)


# --------------------------------------------------------------------- #
# snapshot correctness vs the scalar reference
# --------------------------------------------------------------------- #


class TestSnapshotParity:
    @pytest.mark.parametrize("g", STOCK_GS, ids=lambda g: g.name)
    def test_gsum_matches_scalar_reference(self, zipf_sketch, g):
        assert_close(estimate_gsum(zipf_sketch, g),
                     estimate_gsum_scalar(zipf_sketch, g))

    def test_user_g_without_vec_matches_scalar(self, zipf_sketch):
        g = GFunction("sqrt_test",
                      lambda x: math.sqrt(x) if x > 0 else 0.0)
        assert_close(estimate_gsum(zipf_sketch, g),
                     estimate_gsum_scalar(zipf_sketch, g))

    def test_gcore_byte_identical_to_heap_walk(self, zipf_sketch):
        threshold = 0.005 * zipf_sketch.total_weight
        walked = [(int(k), float(w))
                  for k, w in zipf_sketch.levels[0].heavy_hitters()
                  if abs(w) >= threshold]
        assert g_core(zipf_sketch, 0.005) == walked

    def test_min_weight_filter_matches(self, zipf_sketch):
        for mw in (0.0, 0.5, 10.0):
            assert_close(
                estimate_gsum(zipf_sketch, IDENTITY, min_weight=mw),
                estimate_gsum_scalar(zipf_sketch, IDENTITY, min_weight=mw))

    def test_empty_sketch(self):
        u = build_sketch([], levels=4, width=64, heap=8)
        snapshot = snapshot_of(u)
        assert snapshot.heap_entries() == 0
        assert snapshot.gsum(CARDINALITY) == 0.0
        assert snapshot.gcore(0.01) == []

    def test_snapshot_records_sketch_state(self, zipf_sketch):
        snapshot = snapshot_of(zipf_sketch)
        assert snapshot.total_weight == zipf_sketch.total_weight
        assert snapshot.version == zipf_sketch.version
        assert snapshot.deepest == len(zipf_sketch.levels) - 1
        assert snapshot.heap_entries() == sum(
            len(level.topk) for level in zipf_sketch.levels)

    def test_difference_sketch_parity(self, zipf_keys_factory):
        a = build_sketch(zipf_keys_factory(packets=8_000, seed=3), seed=2)
        b = build_sketch(zipf_keys_factory(packets=6_000, seed=4), seed=2)
        diff = a.subtract(b)
        for g in (ABS, CARDINALITY, SQUARE):
            assert_close(estimate_gsum(diff, g),
                         estimate_gsum_scalar(diff, g))


class TestDuckTypedFallbacks:
    """Snapshots must agree with the fast path when built through the
    scalar-sampler and public-heap-walk fallbacks."""

    def test_scalar_sampler_fallback(self, zipf_sketch):
        class ScalarSampler:
            def __init__(self, inner):
                self._inner = inner

            def bit(self, level, key):
                return self._inner.bit(level, key)

        class DuckSketch:
            levels = zipf_sketch.levels
            sampler = ScalarSampler(zipf_sketch.sampler)
            total_weight = zipf_sketch.total_weight

        fast = QuerySnapshot.build(zipf_sketch)
        slow = QuerySnapshot.build(DuckSketch())
        for f, s in zip(fast.factors, slow.factors):
            assert np.array_equal(f, s)
        assert_close(fast.gsum(ENTROPY_SUM), slow.gsum(ENTROPY_SUM))

    def test_public_heap_walk_fallback(self, zipf_sketch):
        class DuckLevel:
            def __init__(self, inner):
                self._inner = inner

            def heavy_hitters(self):
                return self._inner.heavy_hitters()

        class DuckSketch:
            levels = [DuckLevel(lv) for lv in zipf_sketch.levels]
            sampler = zipf_sketch.sampler
            total_weight = zipf_sketch.total_weight

        fast = QuerySnapshot.build(zipf_sketch)
        slow = QuerySnapshot.build(DuckSketch())
        for f, s in zip(fast.keys, slow.keys):
            assert np.array_equal(f, s)
        assert_close(fast.gsum(IDENTITY), slow.gsum(IDENTITY))


KEY_LISTS = st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                     min_size=0, max_size=250)


class TestPropertyParity:
    """Vectorised == scalar at 1e-12 across random sketches and g's."""

    @given(keys=KEY_LISTS, seed=st.integers(min_value=0, max_value=7),
           g_index=st.integers(min_value=0, max_value=len(STOCK_GS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_sketches(self, keys, seed, g_index):
        u = build_sketch(keys, seed=seed, levels=5, width=128, heap=16,
                         rows=3)
        g = STOCK_GS[g_index]
        assert_close(estimate_gsum(u, g), estimate_gsum_scalar(u, g))

    @given(keys_a=KEY_LISTS, keys_b=KEY_LISTS)
    @settings(max_examples=20, deadline=None)
    def test_random_difference_sketches(self, keys_a, keys_b):
        a = build_sketch(keys_a, seed=3, levels=5, width=128, heap=16,
                         rows=3)
        b = build_sketch(keys_b, seed=3, levels=5, width=128, heap=16,
                         rows=3)
        diff = a.subtract(b)
        assert_close(estimate_gsum(diff, ABS),
                     estimate_gsum_scalar(diff, ABS))

    @given(keys=KEY_LISTS, p=st.floats(min_value=0.0, max_value=2.0,
                                       allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_random_user_moments(self, keys, p):
        u = build_sketch(keys, seed=5, levels=4, width=128, heap=16,
                         rows=3)
        # Fresh GFunction without vec: exercises the np.vectorize path.
        g = GFunction(f"user_moment_{p}",
                      lambda x, _p=p: float(x) ** _p if x > 0 else 0.0)
        assert_close(estimate_gsum(u, g), estimate_gsum_scalar(u, g))


# --------------------------------------------------------------------- #
# the version-guarded snapshot cache
# --------------------------------------------------------------------- #


class TestSnapshotCache:
    def test_repeat_queries_share_one_build(self, zipf_keys_factory):
        u = build_sketch(zipf_keys_factory(packets=2_000, seed=11))
        reg = MetricsRegistry()
        with use_registry(reg):
            first = u.query_snapshot()
            assert u.query_snapshot() is first
            estimate_cardinality(u)
            estimate_entropy(u)
            g_core(u, 0.01)
        assert reg.get("univmon_query_snapshot_builds_total").value == 1
        assert reg.get("univmon_query_snapshot_cache_hits_total").value >= 4

    def test_update_invalidates(self, zipf_keys_factory):
        u = build_sketch(zipf_keys_factory(packets=2_000, seed=12))
        reg = MetricsRegistry()
        with use_registry(reg):
            stale = u.query_snapshot()
            before = estimate_cardinality(u)
            u.update(12345)
            fresh = u.query_snapshot()
            assert fresh is not stale
            assert fresh.version == u.version > stale.version
            assert estimate_l1(u) >= 0.0
        assert reg.get("univmon_query_snapshot_builds_total").value == 2
        assert reg.get(
            "univmon_query_snapshot_invalidations_total").value == 1
        assert before >= 0.0

    def test_scalar_update_then_query_sees_new_state(self):
        u = build_sketch([], levels=4, width=256, heap=8)
        assert estimate_cardinality(u) == 0.0
        for _ in range(10):
            u.update(7)
        assert estimate_cardinality(u) == pytest.approx(1, abs=0.1)
        assert estimate_l1(u) == pytest.approx(10, abs=0.5)

    def test_explicit_invalidation_forces_rebuild(self, zipf_keys_factory):
        u = build_sketch(zipf_keys_factory(packets=1_000, seed=13))
        first = u.query_snapshot()
        u.invalidate_snapshot()
        second = u.query_snapshot()
        assert second is not first
        assert np.array_equal(first.weights[0], second.weights[0])

    def test_copy_does_not_share_cache(self, zipf_keys_factory):
        u = build_sketch(zipf_keys_factory(packets=1_000, seed=14))
        original = u.query_snapshot()
        clone = u.copy()
        clone.update(999)
        assert u.query_snapshot() is original
        assert_close(original.gsum(IDENTITY),
                     estimate_gsum_scalar(u, IDENTITY))


# --------------------------------------------------------------------- #
# batched evaluation
# --------------------------------------------------------------------- #


class TestEvaluateMany:
    def test_matches_individual_estimators_exactly(self, zipf_sketch):
        results = QueryEngine(zipf_sketch).evaluate_many([
            Statistic.heavy_hitters(0.005),
            Statistic.cardinality(),
            Statistic.l1(),
            Statistic.entropy(),
            Statistic.f2(),
        ])
        assert results["heavy_hitters"] == g_core(zipf_sketch, 0.005)
        assert results["cardinality"] == estimate_cardinality(zipf_sketch)
        assert results["l1"] == estimate_l1(zipf_sketch)
        assert results["entropy"] == estimate_entropy(zipf_sketch)
        assert results["f2"] == estimate_f2(zipf_sketch)

    def test_default_batch_is_the_paper_task_set(self, zipf_sketch):
        results = QueryEngine(zipf_sketch).evaluate_many()
        assert set(results) == {s.name for s in DEFAULT_STATISTICS} == \
            {"heavy_hitters", "cardinality", "l1", "entropy", "f2"}

    def test_batch_shares_one_snapshot_build(self, zipf_keys_factory):
        u = build_sketch(zipf_keys_factory(packets=2_000, seed=15))
        reg = MetricsRegistry()
        with use_registry(reg):
            QueryEngine(u).evaluate_many()
        assert reg.get("univmon_query_snapshot_builds_total").value == 1
        assert reg.get("univmon_query_statistics_total").value == 5
        assert reg.get("univmon_query_batch_size").count == 1
        assert reg.get("univmon_query_batch_seconds").count == 1

    def test_entropy_bases_and_moments(self, zipf_sketch):
        results = QueryEngine(zipf_sketch).evaluate_many([
            Statistic.entropy(base=math.e),
            Statistic.moment(1.5),
            Statistic.l2(),
        ])
        assert results["entropy"] == \
            estimate_entropy(zipf_sketch, base=math.e)
        assert_close(results["moment_1.5"],
                     max(0.0, estimate_gsum_scalar(zipf_sketch,
                                                   make_moment(1.5))))
        assert results["l2"] == \
            zipf_sketch.levels[0].sketch.l2_estimate()

    def test_custom_gsum_statistic(self, zipf_sketch):
        stat = Statistic.gsum(SQUARE)
        value = QueryEngine(zipf_sketch).evaluate(stat)
        assert_close(value, estimate_gsum_scalar(zipf_sketch, SQUARE))

    def test_unsketchable_g_still_rejected(self, zipf_sketch):
        from repro.errors import NotSketchableError
        cube = GFunction("cube_query_test", lambda x: x ** 3)
        with pytest.raises(NotSketchableError):
            QueryEngine(zipf_sketch).evaluate(Statistic.gsum(cube))

    def test_unknown_kind_rejected(self, zipf_sketch):
        bogus = Statistic(name="x", kind="nope")
        with pytest.raises(ConfigurationError):
            QueryEngine(zipf_sketch).evaluate(bogus)

    def test_engine_works_on_uncached_duck_sketch(self, zipf_sketch):
        class DuckSketch:
            levels = zipf_sketch.levels
            sampler = zipf_sketch.sampler
            total_weight = zipf_sketch.total_weight

        results = QueryEngine(DuckSketch()).evaluate_many(
            [Statistic.cardinality(), Statistic.l1()])
        assert results["cardinality"] == estimate_cardinality(zipf_sketch)
        assert results["l1"] == estimate_l1(zipf_sketch)


class TestStatisticParse:
    def test_simple_names_and_aliases(self):
        assert Statistic.parse("cardinality").name == "cardinality"
        assert Statistic.parse("f0").g is CARDINALITY
        assert Statistic.parse("ddos").g is CARDINALITY
        assert Statistic.parse("l1").g is ABS
        assert Statistic.parse("l2").kind == "l2"
        assert Statistic.parse("f2").kind == "f2"

    def test_heavy_hitters_fraction(self):
        assert Statistic.parse("hh").fraction == 0.005
        assert Statistic.parse("hh:0.02").fraction == 0.02
        assert Statistic.parse("heavy_hitters:0.1").fraction == 0.1

    def test_entropy_bases(self):
        assert Statistic.parse("entropy").base == 2.0
        assert Statistic.parse("entropy:10").base == 10.0
        assert Statistic.parse("entropy:e").base == math.e
        assert Statistic.parse("entropy:nats").base == math.e

    def test_moment_requires_order(self):
        assert Statistic.parse("moment:1.5").name == "moment_1.5"
        with pytest.raises(ConfigurationError):
            Statistic.parse("moment")

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ConfigurationError):
            Statistic.parse("bogus")

    def test_spurious_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            Statistic.parse("l1:3")
