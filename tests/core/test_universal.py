"""Tests for the universal sketch data plane (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.core.universal import UniversalSketch


def make(levels=6, width=256, heap=16, seed=1, rows=3):
    return UniversalSketch(levels=levels, rows=rows, width=width,
                           heap_size=heap, seed=seed)


class TestConstruction:
    def test_levels_plus_one_instances(self):
        u = make(levels=6)
        assert len(u.levels) == 7

    def test_negative_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            UniversalSketch(levels=-1)

    def test_for_memory_budget_fits(self):
        budget = 512 * 1024
        u = UniversalSketch.for_memory_budget(budget, levels=8, rows=5,
                                              heap_size=64, seed=1)
        assert u.memory_bytes() <= budget
        assert u.memory_bytes() > 0.8 * budget  # not wildly undersized

    def test_for_memory_budget_too_small(self):
        with pytest.raises(ConfigurationError):
            UniversalSketch.for_memory_budget(1024, levels=16, rows=5,
                                              heap_size=64)

    def test_levels_for_rule(self):
        # Every distinct key fits in one heap: a single full-stream
        # level suffices, no sampled substreams.
        assert UniversalSketch.levels_for(64, heap_size=64) == 0
        assert UniversalSketch.levels_for(1, heap_size=64) == 0
        # Just above the heap: sampled levels appear again.
        assert UniversalSketch.levels_for(65, heap_size=64) == 2
        # 8192/64 = 128 -> log2 = 7 -> +1
        assert UniversalSketch.levels_for(8192, heap_size=64) == 8

    def test_deterministic_given_seed(self):
        a, b = make(seed=5), make(seed=5)
        for k in range(50):
            a.update(k)
            b.update(k)
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)


class TestDataPlane:
    def test_level_zero_sees_everything(self):
        u = make()
        for k in range(100):
            u.update(k)
        assert u.levels[0].packets == 100
        assert u.total_weight == 100

    def test_substream_sizes_decrease(self):
        u = make(levels=5, width=512)
        u.update_array(np.arange(4000, dtype=np.uint64))
        sizes = [lvl.packets for lvl in u.levels]
        assert sizes[0] == 4000
        assert all(sizes[i] >= sizes[i + 1] for i in range(5))
        # Level 3 expects 4000/8 = 500; allow wide slack.
        assert 250 < sizes[3] < 850

    def test_bulk_matches_scalar_counters(self):
        a, b = make(seed=6), make(seed=6)
        keys = np.array([7, 7, 9, 1, 7, 3], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.sketch.table, lb.sketch.table)
            assert la.packets == lb.packets

    def test_weighted_updates(self):
        u = make()
        u.update(1, 10)
        assert u.total_weight == 10

    @given(st.lists(st.integers(0, 1 << 32), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_property_packet_count_conserved(self, keys):
        u = make(seed=7)
        u.update_array(np.array(keys, dtype=np.uint64))
        assert u.packets == len(keys)
        assert u.levels[0].packets == len(keys)


class TestHeavyHitters:
    def test_detects_elephant(self):
        u = make(levels=6, width=512, heap=16, seed=8, rows=5)
        keys = np.concatenate([
            np.full(3000, 424242, dtype=np.uint64),
            np.arange(1000, dtype=np.uint64),
        ])
        u.update_array(keys)
        hh = u.heavy_hitters(0.5)
        assert [k for k, _ in hh] == [424242]

    def test_no_heavy_hitters_in_uniform(self):
        u = make(levels=6, width=512, seed=9)
        u.update_array(np.arange(2000, dtype=np.uint64))
        assert u.heavy_hitters(0.01) == []


class TestLinearity:
    def test_merge_counts_add(self):
        a, b = make(seed=10), make(seed=10)
        a.update(5, 10)
        b.update(5, 7)
        merged = a.merge(b)
        assert merged.total_weight == 17
        assert merged.levels[0].sketch.query(5) == pytest.approx(17)

    def test_merge_heaps_requeried(self):
        a, b = make(seed=11), make(seed=11)
        a.update(5, 10)
        b.update(9, 20)
        merged = a.merge(b)
        q0 = dict(merged.levels[0].heavy_hitters())
        assert q0[5] == pytest.approx(10)
        assert q0[9] == pytest.approx(20)

    def test_subtract_gives_difference(self):
        a, b = make(seed=12), make(seed=12)
        a.update(1, 100)
        b.update(1, 30)
        b.update(2, 40)
        diff = a.subtract(b)
        assert diff.levels[0].sketch.query(1) == pytest.approx(70)
        assert diff.levels[0].sketch.query(2) == pytest.approx(-40)
        assert diff.total_weight == 30  # signed: 100 - (30 + 40)

    def test_merge_requires_matching_config(self):
        with pytest.raises(IncompatibleSketchError):
            make(seed=1).merge(make(seed=2))
        with pytest.raises(IncompatibleSketchError):
            make(levels=5).merge(make(levels=6))
        with pytest.raises(IncompatibleSketchError):
            UniversalSketch(levels=4).merge(UniversalSketch(levels=4))

    def test_merge_commutes_on_estimates(self):
        a, b = make(seed=13), make(seed=13)
        a.update_array(np.arange(0, 500, dtype=np.uint64))
        b.update_array(np.arange(300, 800, dtype=np.uint64))
        ab, ba = a.merge(b), b.merge(a)
        assert np.array_equal(ab.levels[0].sketch.table,
                              ba.levels[0].sketch.table)
        assert ab.total_weight == ba.total_weight

    def test_merged_statistics_match_union_stream(self, rng):
        """Merging epoch sketches == sketching the concatenated stream."""
        whole = make(seed=14, levels=8, width=512, heap=32)
        part1 = make(seed=14, levels=8, width=512, heap=32)
        part2 = make(seed=14, levels=8, width=512, heap=32)
        keys = rng.integers(0, 3000, size=6000).astype(np.uint64)
        whole.update_array(keys)
        part1.update_array(keys[:3000])
        part2.update_array(keys[3000:])
        merged = part1.merge(part2)
        for lw, lm in zip(whole.levels, merged.levels):
            assert np.array_equal(lw.sketch.table, lm.sketch.table)


class TestMergeHeapRebuild:
    """The _combine heap rebuild: bulk offer_many, data-plane counters."""

    @staticmethod
    def _scalar_rebuild(level_sketch, union, heap_size):
        """The pre-rewrite path: one scalar offer per union key in
        ascending-|estimate| order (kept verbatim as the parity oracle)."""
        from repro.sketches.topk import TopK
        keys = np.fromiter(union, dtype=np.uint64, count=len(union))
        estimates = level_sketch.query_many(keys)
        heap = TopK(heap_size)
        for i in np.argsort(np.abs(estimates)):
            heap.offer(int(keys[i]), float(estimates[i]))
        return heap

    def test_merge_churn_counters_are_sum_of_inputs(self, make_rng):
        """Regression: merging used to re-offer every union key into the
        fresh heap, so the merged churn counters measured control-plane
        rebuild work instead of data-plane churn."""
        a, b = make(seed=31), make(seed=31)
        rng = make_rng(4)
        a.update_array(rng.integers(0, 800, size=3000).astype(np.uint64))
        b.update_array(rng.integers(0, 800, size=3000).astype(np.uint64))
        merged = a.merge(b)
        for la, lb, lm in zip(a.levels, b.levels, merged.levels):
            assert lm.topk.offers == la.topk.offers + lb.topk.offers
            assert lm.topk.evictions == la.topk.evictions + lb.topk.evictions
            assert lm.topk.rejections == \
                la.topk.rejections + lb.topk.rejections

    def test_merge_heap_matches_scalar_rebuild(self, make_rng):
        """Parity: the offer_many rebuild retains exactly the keys and
        estimates the old scalar-offer loop retained."""
        rng = make_rng(6)
        a, b = make(seed=32, heap=16), make(seed=32, heap=16)
        a.update_array(rng.integers(0, 400, size=4000).astype(np.uint64))
        b.update_array(rng.integers(200, 600, size=4000).astype(np.uint64))
        merged = a.merge(b)
        for la, lb, lm in zip(a.levels, b.levels, merged.levels):
            union = set(la.topk.keys()) | set(lb.topk.keys())
            if not union:
                continue
            oracle = self._scalar_rebuild(lm.sketch, union, 16)
            mine, theirs = dict(lm.topk.items()), dict(oracle.items())
            # offer_many documents that ties at the eviction boundary may
            # resolve differently from the sequential order; above the
            # boundary the survivors must match exactly, and the retained
            # estimate multiset must match everywhere.
            assert sorted(abs(v) for v in mine.values()) == \
                sorted(abs(v) for v in theirs.values())
            boundary = min(abs(v) for v in mine.values())
            assert {k for k, v in mine.items() if abs(v) > boundary} == \
                {k for k, v in theirs.items() if abs(v) > boundary}
            for key in set(mine) & set(theirs):
                assert mine[key] == theirs[key]

    def test_merge_heap_capacity_respected(self, make_rng):
        rng = make_rng(7)
        a, b = make(seed=33, heap=8), make(seed=33, heap=8)
        a.update_array(rng.integers(0, 300, size=2000).astype(np.uint64))
        b.update_array(rng.integers(300, 600, size=2000).astype(np.uint64))
        merged = a.merge(b)
        for level in merged.levels:
            assert len(level.topk) <= 8


class TestWeightDtypeParity:
    """Regression: the bulk path used to forward weight arrays uncoerced,
    so a float array's *sum* (not its per-element truncation) landed in
    the level weight accounting while the counter tables truncated —
    the sketch disagreed with itself and with the scalar loop."""

    @pytest.mark.parametrize("dtype", ["float64", "float32", "int32",
                                       "object"])
    def test_bulk_weights_match_scalar_loop(self, dtype, make_rng):
        rng = make_rng(9)
        keys = rng.integers(0, 200, size=1500).astype(np.uint64)
        raw = rng.uniform(1.0, 9.9, size=1500)
        if dtype == "object":
            weights = np.array([int(w) for w in raw], dtype=object)
        elif dtype == "int32":
            weights = raw.astype(np.int32)
        else:
            weights = raw.astype(dtype)
        scalar = make(levels=4, seed=35, heap=32)
        for k, w in zip(keys.tolist(),
                        np.asarray(weights, dtype=np.float64).tolist()):
            scalar.update(int(k), int(w))
        bulk = make(levels=4, seed=35, heap=32)
        bulk.update_array(keys, weights)
        assert bulk.total_weight == scalar.total_weight
        for lb, ls in zip(bulk.levels, scalar.levels):
            assert np.array_equal(lb.sketch.table, ls.sketch.table)
            assert lb.weight == ls.weight
            assert lb.packets == ls.packets

    def test_negative_float_weights_truncate_toward_zero(self):
        keys = np.array([3, 3, 4], dtype=np.uint64)
        weights = np.array([-2.9, -2.9, 5.5])
        bulk = make(levels=2, seed=36)
        bulk.update_array(keys, weights)
        scalar = make(levels=2, seed=36)
        for k, w in zip(keys.tolist(), weights.tolist()):
            scalar.update(int(k), int(w))
        assert bulk.total_weight == scalar.total_weight == 1  # -2-2+5
        assert np.array_equal(bulk.levels[0].sketch.table,
                              scalar.levels[0].sketch.table)


class TestCopy:
    def test_copy_is_deep_for_mutable_state(self, make_rng):
        original = make(seed=20)
        rng = make_rng(2)
        original.update_array(rng.integers(0, 500, size=2000)
                              .astype(np.uint64))
        clone = original.copy()
        assert clone is not original
        assert clone.total_weight == original.total_weight
        for lo, lc in zip(original.levels, clone.levels):
            assert np.array_equal(lo.sketch.table, lc.sketch.table)
            assert dict(lo.topk.items()) == dict(lc.topk.items())

        # Mutating the clone must not leak into the original.
        before_tables = [l.sketch.table.copy() for l in original.levels]
        before_heap = dict(original.levels[0].topk.items())
        clone.update(999_999, 50_000)
        assert original.total_weight != clone.total_weight
        for level, table in zip(original.levels, before_tables):
            assert np.array_equal(level.sketch.table, table)
        assert dict(original.levels[0].topk.items()) == before_heap

    def test_copy_stays_mergeable_with_original(self):
        original = make(seed=21)
        original.update(7, 5)
        merged = original.copy().merge(original)
        assert merged.total_weight == 10
        assert merged.levels[0].sketch.query(7) == pytest.approx(10)


class TestAccounting:
    def test_memory_is_sum_of_levels(self):
        u = make(levels=4)
        assert u.memory_bytes() == sum(l.memory_bytes() for l in u.levels)

    def test_update_cost_bounded_by_two_levels(self):
        """Expected counter work is < 2 levels' worth regardless of depth."""
        u = make(levels=16, rows=5)
        cost = u.update_cost()
        assert cost.counter_updates <= 2 * 5
        assert cost.hashes >= 16  # at least the sampling stack

    def test_repr_mentions_geometry(self):
        assert "levels=6" in repr(make())


class TestCounterBytes:
    def test_threaded_through_constructor_and_accounting(self):
        u = UniversalSketch(levels=2, rows=3, width=128, heap_size=8,
                            seed=1, counter_bytes=8)
        assert u.counter_bytes == 8
        for level in u.levels:
            assert level.sketch.counter_bytes == 8
        counters = (2 + 1) * 3 * 128 * 8
        heaps = (2 + 1) * 8 * 16
        assert u.memory_bytes() == counters + heaps

    def test_threaded_through_memory_budget(self):
        budget = 256 * 1024
        wide = UniversalSketch.for_memory_budget(budget, levels=4, rows=3,
                                                 heap_size=16, seed=1)
        narrow = UniversalSketch.for_memory_budget(budget, levels=4, rows=3,
                                                   heap_size=16, seed=1,
                                                   counter_bytes=8)
        assert narrow.counter_bytes == 8
        assert narrow.memory_bytes() <= budget
        # Doubling the per-counter cost must halve the width, not be
        # silently ignored by the sizing rule.
        assert narrow.width == wide.width // 2

    def test_threaded_through_merge_and_subtract(self):
        a = UniversalSketch(levels=2, rows=3, width=64, heap_size=8,
                            seed=7, counter_bytes=8)
        b = UniversalSketch(levels=2, rows=3, width=64, heap_size=8,
                            seed=7, counter_bytes=8)
        a.update(1)
        b.update(2)
        assert a.merge(b).counter_bytes == 8
        assert a.subtract(b).counter_bytes == 8
        assert a.merge(b).memory_bytes() == a.memory_bytes()
