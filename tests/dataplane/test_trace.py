"""Tests for the trace container and the synthetic workload generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.dataplane.keys import dst_ip_key, src_ip_key
from repro.dataplane.packet import Packet, FiveTuple
from repro.dataplane.trace import (
    ChangeEvent,
    DDoSEvent,
    SyntheticTraceConfig,
    Trace,
    generate_epoch_pair,
    generate_trace,
)


class TestTraceContainer:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace(np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3),
                  np.zeros(3), np.zeros(3))

    def test_len_iter_packet(self, tiny_trace):
        assert len(tiny_trace) == 500
        first = tiny_trace.packet(0)
        assert isinstance(first, Packet)
        assert next(iter(tiny_trace)) == first

    def test_sorted_by_time(self, tiny_trace):
        ts = tiny_trace.timestamps
        assert np.all(np.diff(ts) >= 0)

    def test_duration(self, tiny_trace):
        assert 0 < tiny_trace.duration <= 2.0

    def test_empty_trace(self):
        empty = Trace.empty()
        assert len(empty) == 0
        assert empty.duration == 0.0
        assert empty.epochs(5.0) == []

    def test_slice_time_bounds(self, tiny_trace):
        sliced = tiny_trace.slice_time(0.5, 1.0)
        assert np.all(sliced.timestamps >= 0.5)
        assert np.all(sliced.timestamps < 1.0)

    def test_epochs_partition_packets(self, small_trace):
        epochs = small_trace.epochs(1.0)
        assert sum(len(e) for e in epochs) == len(small_trace)

    def test_epochs_bad_duration(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            tiny_trace.epochs(0)

    def test_concat_resorts(self):
        a = generate_trace(SyntheticTraceConfig(packets=50, flows=10,
                                                duration=1.0, seed=1))
        b = generate_trace(SyntheticTraceConfig(packets=50, flows=10,
                                                duration=1.0, seed=2))
        both = Trace.concat([b, a])
        assert len(both) == 100
        assert np.all(np.diff(both.timestamps) >= 0)

    def test_from_packets_roundtrip(self):
        packets = [Packet(flow=FiveTuple(i, i + 1, 10, 80, 6),
                          timestamp=float(i), size=100 + i)
                   for i in range(5)]
        trace = Trace.from_packets(packets)
        assert len(trace) == 5
        assert trace.packet(3) == packets[3]

    def test_key_array_and_distinct(self, tiny_trace):
        keys = tiny_trace.key_array(src_ip_key)
        assert len(keys) == len(tiny_trace)
        assert tiny_trace.distinct(src_ip_key) == len(np.unique(keys))


class TestGenerator:
    def test_packet_count_matches_config(self):
        trace = generate_trace(SyntheticTraceConfig(
            packets=2000, flows=300, duration=4.0, seed=3))
        assert abs(len(trace) - 2000) <= 2  # segment rounding

    def test_rejects_degenerate_config(self):
        with pytest.raises(ConfigurationError):
            generate_trace(SyntheticTraceConfig(packets=0, flows=10))

    def test_deterministic_per_seed(self):
        cfg = SyntheticTraceConfig(packets=400, flows=50, seed=9)
        a, b = generate_trace(cfg), generate_trace(cfg)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_seeds_give_different_traces(self):
        a = generate_trace(SyntheticTraceConfig(packets=400, flows=50, seed=1))
        b = generate_trace(SyntheticTraceConfig(packets=400, flows=50, seed=2))
        assert not np.array_equal(a.src, b.src)

    def test_zipf_skew_concentrates_traffic(self):
        """Higher skew => top flow takes a larger share."""
        def top_share(skew):
            trace = generate_trace(SyntheticTraceConfig(
                packets=20_000, flows=2000, zipf_skew=skew, seed=4))
            keys = trace.key_array(src_ip_key)
            _, counts = np.unique(keys, return_counts=True)
            return counts.max() / len(keys)
        assert top_share(1.6) > top_share(0.8)

    def test_with_seed_helper(self):
        cfg = SyntheticTraceConfig(seed=1)
        assert cfg.with_seed(5).seed == 5
        assert cfg.seed == 1  # frozen original untouched


class TestDDoSEvents:
    def test_burst_adds_fresh_sources(self):
        base_cfg = SyntheticTraceConfig(packets=5000, flows=800,
                                        duration=10.0, seed=5)
        attacked_cfg = SyntheticTraceConfig(
            packets=5000, flows=800, duration=10.0, seed=5,
            ddos_events=(DDoSEvent(start=5.0, end=10.0, num_sources=2000),))
        base = generate_trace(base_cfg)
        attacked = generate_trace(attacked_cfg)
        d_base = base.slice_time(5, 10).distinct(src_ip_key)
        d_attacked = attacked.slice_time(5, 10).distinct(src_ip_key)
        assert d_attacked > d_base + 1500

    def test_burst_confined_to_window(self):
        cfg = SyntheticTraceConfig(
            packets=5000, flows=800, duration=10.0, seed=6,
            ddos_events=(DDoSEvent(start=5.0, end=10.0, num_sources=2000),))
        trace = generate_trace(cfg)
        early = trace.slice_time(0, 5)
        assert early.distinct(src_ip_key) < 1200  # no attack sources early

    def test_victim_receives_burst(self):
        victim = 0x0B0B0B0B
        cfg = SyntheticTraceConfig(
            packets=2000, flows=300, duration=10.0, seed=7,
            ddos_events=(DDoSEvent(start=0.0, end=10.0, num_sources=500,
                                   victim=victim),))
        trace = generate_trace(cfg)
        counts = dict(zip(*np.unique(trace.key_array(dst_ip_key),
                                     return_counts=True)))
        assert counts.get(victim, 0) >= 900  # 500 sources x 2 packets

    def test_invalid_window_rejected(self):
        cfg = SyntheticTraceConfig(
            packets=100, flows=10, duration=10.0, seed=8,
            ddos_events=(DDoSEvent(start=5.0, end=5.0, num_sources=10),))
        with pytest.raises(ConfigurationError):
            generate_trace(cfg)


class TestChangeEvents:
    def test_epoch_pair_changes_flow_volumes(self):
        a, b = generate_epoch_pair(packets=20_000, flows=3000,
                                   zipf_skew=1.1, num_changes=10,
                                   change_factor=12.0, seed=9,
                                   rank_lo=5, rank_hi=60)
        from repro.eval.groundtruth import GroundTruth
        ga, gb = GroundTruth(a, src_ip_key), GroundTruth(b, src_ip_key)
        total_change = gb.total_change(ga)
        # Injected surges should dominate the multinomial noise floor.
        heavy = gb.heavy_change_keys(ga, phi=0.03)
        assert len(heavy) >= 2
        assert total_change > 2000

    def test_change_event_in_full_generator(self):
        cfg = SyntheticTraceConfig(
            packets=10_000, flows=1000, duration=10.0, seed=10,
            change_events=(ChangeEvent(time=5.0, num_flows=6, factor=15.0,
                                       rank_lo=3, rank_hi=30),))
        trace = generate_trace(cfg)
        assert abs(len(trace) - 10_000) <= 2
        # Both halves have traffic.
        assert len(trace.slice_time(0, 5)) > 3000
        assert len(trace.slice_time(5, 10)) > 3000
