"""Tests for the monitored switch and its program management."""

import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactCounter
from repro.core.universal import UniversalSketch


def cm_factory():
    return CountMinSketch(rows=3, width=128, seed=1)


class TestPrograms:
    def test_attach_and_lookup(self):
        sw = MonitoredSwitch("s1")
        prog = sw.attach("cm", cm_factory, src_ip_key)
        assert sw.program("cm") is prog
        assert sw.programs() == [prog]

    def test_duplicate_name_rejected(self):
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        with pytest.raises(ConfigurationError):
            sw.attach("cm", cm_factory, src_ip_key)

    def test_unknown_program_rejected(self):
        sw = MonitoredSwitch()
        with pytest.raises(ConfigurationError):
            sw.program("nope")
        with pytest.raises(ConfigurationError):
            sw.detach("nope")

    def test_detach(self):
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        sw.detach("cm")
        assert sw.programs() == []


class TestProcessing:
    def test_bulk_counts_packets(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        sw.process_trace(tiny_trace)
        assert sw.packets_seen == len(tiny_trace)
        assert sw.program("cm").packets_processed == len(tiny_trace)

    def test_bulk_and_scalar_agree(self, tiny_trace):
        bulk = MonitoredSwitch()
        bulk.attach("cm", cm_factory, src_ip_key)
        bulk.process_trace(tiny_trace)
        scalar = MonitoredSwitch()
        scalar.attach("cm", cm_factory, src_ip_key)
        for packet in tiny_trace:
            scalar.process_packet(packet)
        import numpy as np
        assert np.array_equal(bulk.program("cm").sketch.table,
                              scalar.program("cm").sketch.table)

    def test_sketch_without_bulk_path_supported(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("exact", ExactCounter, src_ip_key)
        sw.process_trace(tiny_trace)
        assert sw.program("exact").sketch.total() == len(tiny_trace)

    def test_empty_trace_noop(self):
        from repro.dataplane.trace import Trace
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        sw.process_trace(Trace.empty())
        assert sw.packets_seen == 0

    def test_multiple_programs_all_fed(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("a", cm_factory, src_ip_key)
        sw.attach("b", lambda: UniversalSketch(levels=4, rows=3, width=64,
                                               heap_size=8, seed=2),
                  src_ip_key)
        sw.process_trace(tiny_trace)
        assert sw.program("a").packets_processed == len(tiny_trace)
        assert sw.program("b").packets_processed == len(tiny_trace)


class TestPolling:
    def test_poll_returns_sealed_and_resets(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        sw.process_trace(tiny_trace)
        sealed = sw.poll("cm")
        assert sealed.l1_estimate() == len(tiny_trace)
        assert sw.program("cm").sketch.l1_estimate() == 0  # fresh epoch

    def test_poll_all(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("a", cm_factory, src_ip_key)
        sw.attach("b", cm_factory, src_ip_key)
        sw.process_trace(tiny_trace)
        sealed = sw.poll_all()
        assert set(sealed) == {"a", "b"}


class TestAccounting:
    def test_memory_sums_programs(self):
        sw = MonitoredSwitch()
        sw.attach("a", cm_factory, src_ip_key)
        sw.attach("b", cm_factory, src_ip_key)
        assert sw.memory_bytes() == 2 * cm_factory().memory_bytes()

    def test_cost_accumulates_per_packet(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("cm", cm_factory, src_ip_key)
        sw.process_trace(tiny_trace)
        cost = sw.total_cost()
        per = cm_factory().update_cost()
        assert cost.hashes == per.hashes * len(tiny_trace)
        assert cost.counter_updates == per.counter_updates * len(tiny_trace)


class TestByteWeightedPrograms:
    def test_bulk_weights_by_packet_size(self, tiny_trace):
        import numpy as np
        sw = MonitoredSwitch()
        sw.attach("bytes", cm_factory, src_ip_key, by_bytes=True)
        sw.process_trace(tiny_trace)
        total_bytes = int(tiny_trace.size.astype(np.int64).sum())
        assert sw.program("bytes").sketch.l1_estimate() == total_bytes

    def test_scalar_weights_by_packet_size(self, tiny_trace):
        import numpy as np
        sw = MonitoredSwitch()
        sw.attach("bytes", cm_factory, src_ip_key, by_bytes=True)
        for packet in tiny_trace:
            sw.process_packet(packet)
        total_bytes = int(tiny_trace.size.astype(np.int64).sum())
        assert sw.program("bytes").sketch.l1_estimate() == total_bytes

    def test_byte_and_packet_programs_differ(self, tiny_trace):
        sw = MonitoredSwitch()
        sw.attach("pkts", cm_factory, src_ip_key)
        sw.attach("bytes", cm_factory, src_ip_key, by_bytes=True)
        sw.process_trace(tiny_trace)
        assert sw.program("bytes").sketch.l1_estimate() > \
            sw.program("pkts").sketch.l1_estimate()

    def test_byte_weighted_universal_sketch_heavy_hitters(self, small_trace):
        import numpy as np
        from repro.eval.groundtruth import GroundTruth
        sw = MonitoredSwitch()
        sw.attach("univmon",
                  lambda: UniversalSketch(levels=6, rows=5, width=2048,
                                          heap_size=64, seed=4),
                  src_ip_key, by_bytes=True)
        sw.process_trace(small_trace)
        sketch = sw.poll("univmon")
        # Ground truth by bytes.
        from repro.sketches.exact import ExactCounter
        exact = ExactCounter()
        exact.update_array(small_trace.key_array(src_ip_key),
                           small_trace.size.astype(np.int64))
        true_hh = {k for k, _ in exact.heavy_hitters(0.01)}
        reported = {k for k, _ in sketch.heavy_hitters(0.01)}
        missed = len(true_hh - reported)
        assert missed <= max(1, len(true_hh) // 4)


class TestShardedProcessing:
    """process_trace(workers=N) must be exact and degrade sensibly."""

    @staticmethod
    def _uni_factory():
        return UniversalSketch(levels=4, rows=3, width=256,
                               heap_size=64, seed=9)

    def _run(self, trace, workers, by_bytes=False):
        sw = MonitoredSwitch()
        program = sw.attach("univmon", self._uni_factory, src_ip_key,
                            by_bytes=by_bytes)
        sw.process_trace(trace, workers=workers)
        return program

    @pytest.mark.parametrize("by_bytes", [False, True])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_counters_match_serial(self, small_trace, workers,
                                           by_bytes):
        import numpy as np
        serial = self._run(small_trace, 1, by_bytes)
        sharded = self._run(small_trace, workers, by_bytes)
        for ls, lp in zip(serial.sketch.levels, sharded.sketch.levels):
            assert np.array_equal(ls.sketch.table, lp.sketch.table)
            assert ls.packets == lp.packets
            assert ls.weight == lp.weight
        assert sharded.packets_processed == serial.packets_processed

    def test_sharded_accounting_matches_serial(self, small_trace):
        serial = self._run(small_trace, 1)
        sharded = self._run(small_trace, 2)
        assert sharded.total_cost == serial.total_cost

    def test_unseeded_sketch_falls_back_in_process(self, tiny_trace):
        sw = MonitoredSwitch()
        program = sw.attach(
            "unseeded",
            lambda: UniversalSketch(levels=4, rows=3, width=128,
                                    heap_size=32),
            src_ip_key)
        sw.process_trace(tiny_trace, workers=4)  # must not raise
        assert program.packets_processed == len(tiny_trace)

    def test_non_universal_sketch_falls_back_in_process(self, tiny_trace):
        sw = MonitoredSwitch()
        program = sw.attach("cm", cm_factory, src_ip_key)
        sw.process_trace(tiny_trace, workers=4)
        assert program.sketch.l1_estimate() == len(tiny_trace)
