"""Tests for the timed trace replayer (fake clock — no real sleeping)."""

import pytest

from repro.errors import ConfigurationError
from repro.dataplane.replay import TraceReplayer
from repro.dataplane.trace import Trace


class FakeClock:
    """A clock advanced only by sleep() calls."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestValidation:
    def test_negative_speedup_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            TraceReplayer(tiny_trace, speedup=-1)

    def test_chunk_seconds_validated(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            TraceReplayer(tiny_trace, chunk_seconds=0)


class TestReplay:
    def test_fast_replay_delivers_everything(self, tiny_trace):
        chunks = []
        replayer = TraceReplayer(tiny_trace, chunk_seconds=0.5)
        delivered = replayer.run(chunks.append)
        assert delivered == len(tiny_trace)
        assert sum(len(c) for c in chunks) == len(tiny_trace)

    def test_empty_trace(self):
        replayer = TraceReplayer(Trace.empty())
        assert replayer.run(lambda c: None) == 0

    def test_paced_replay_sleeps_to_schedule(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=1.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)
        replayer.run(lambda c: None)
        # The trace spans ~2s; wall time consumed by sleeps must be close.
        assert sum(fake.sleeps) == pytest.approx(tiny_trace.duration,
                                                 abs=0.51)
        assert replayer.max_lag == 0.0

    def test_speedup_divides_wall_time(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=4.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)
        replayer.run(lambda c: None)
        assert sum(fake.sleeps) == pytest.approx(tiny_trace.duration / 4,
                                                 abs=0.2)

    def test_lag_recorded_when_consumer_is_slow(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=1.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)

        def slow_consume(chunk):
            fake.now += 2.0  # consumer takes 2s per 0.5s chunk

        replayer.run(slow_consume)
        assert replayer.max_lag > 0.0

    def test_stop_callback_halts_replay(self, tiny_trace):
        seen = []

        def stop():
            return len(seen) >= 1

        replayer = TraceReplayer(tiny_trace, chunk_seconds=0.5)
        delivered = replayer.run(seen.append, stop=stop)
        assert delivered == len(seen[0])
        assert delivered < len(tiny_trace)

    def test_zero_speedup_means_unpaced(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=0,
                                 clock=fake.clock, sleep=fake.sleep)
        replayer.run(lambda c: None)
        assert fake.sleeps == []


class TestBatchIngest:
    def _trace(self, packets=200):
        import numpy as np
        from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
        return generate_trace(SyntheticTraceConfig(
            packets=packets, flows=20, duration=2.0, seed=5))

    def test_chunk_size_validated(self):
        from repro.dataplane.replay import BatchIngest
        from repro.sketches.countmin import CountMinSketch
        with pytest.raises(ConfigurationError):
            BatchIngest(CountMinSketch(rows=2, width=32, seed=1),
                        chunk_size=0)

    def test_trace_ingest_requires_key_function(self):
        from repro.dataplane.replay import BatchIngest
        from repro.sketches.countmin import CountMinSketch
        ingest = BatchIngest(CountMinSketch(rows=2, width=32, seed=1))
        with pytest.raises(ConfigurationError):
            ingest.ingest(self._trace())

    def test_chunked_ingest_matches_single_bulk_update(self):
        import numpy as np
        from repro.dataplane.keys import src_ip_key
        from repro.dataplane.replay import BatchIngest
        from repro.core.universal import UniversalSketch
        trace = self._trace()
        keys = trace.key_array(src_ip_key)
        chunked = UniversalSketch(levels=3, rows=3, width=64, heap_size=16,
                                  seed=2)
        whole = UniversalSketch(levels=3, rows=3, width=64, heap_size=16,
                                seed=2)
        report = BatchIngest(chunked, chunk_size=64,
                             key_function=src_ip_key).ingest(trace)
        whole.update_array(keys)
        assert report.packets == len(trace)
        assert report.chunks == -(-len(trace) // 64)
        for lc, lw in zip(chunked.levels, whole.levels):
            assert np.array_equal(lc.sketch.table, lw.sketch.table)

    def test_report_rate_uses_injected_clock(self):
        import numpy as np
        from repro.dataplane.replay import BatchIngest
        from repro.sketches.countmin import CountMinSketch
        fake = FakeClock()

        def clock():
            fake.now += 0.5  # every clock() call advances half a second
            return fake.now

        ingest = BatchIngest(CountMinSketch(rows=2, width=32, seed=1),
                             chunk_size=100, clock=clock)
        report = ingest.ingest_keys(np.arange(300, dtype=np.uint64))
        assert report.packets == 300
        assert report.chunks == 3
        assert report.seconds == pytest.approx(0.5)
        assert report.packets_per_second == pytest.approx(600.0)

    def test_scalar_fallback_for_sketches_without_bulk_path(self):
        import numpy as np
        from repro.dataplane.replay import BatchIngest

        class ScalarOnly:
            def __init__(self):
                self.seen = []

            def update(self, key, weight=1):
                self.seen.append((key, weight))

        sk = ScalarOnly()
        report = BatchIngest(sk, chunk_size=4).ingest_keys(
            np.arange(10, dtype=np.uint64),
            np.full(10, 3, dtype=np.int64))
        assert report.chunks == 3
        assert sk.seen == [(k, 3) for k in range(10)]

    def test_empty_report_rate(self):
        from repro.dataplane.replay import IngestReport
        assert IngestReport(0, 0, 0.0).packets_per_second == 0.0
        assert IngestReport(5, 1, 0.0).packets_per_second == float("inf")
