"""Tests for the timed trace replayer (fake clock — no real sleeping)."""

import pytest

from repro.errors import ConfigurationError
from repro.dataplane.replay import TraceReplayer
from repro.dataplane.trace import Trace


class FakeClock:
    """A clock advanced only by sleep() calls."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestValidation:
    def test_negative_speedup_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            TraceReplayer(tiny_trace, speedup=-1)

    def test_chunk_seconds_validated(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            TraceReplayer(tiny_trace, chunk_seconds=0)


class TestReplay:
    def test_fast_replay_delivers_everything(self, tiny_trace):
        chunks = []
        replayer = TraceReplayer(tiny_trace, chunk_seconds=0.5)
        delivered = replayer.run(chunks.append)
        assert delivered == len(tiny_trace)
        assert sum(len(c) for c in chunks) == len(tiny_trace)

    def test_empty_trace(self):
        replayer = TraceReplayer(Trace.empty())
        assert replayer.run(lambda c: None) == 0

    def test_paced_replay_sleeps_to_schedule(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=1.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)
        replayer.run(lambda c: None)
        # The trace spans ~2s; wall time consumed by sleeps must be close.
        assert sum(fake.sleeps) == pytest.approx(tiny_trace.duration,
                                                 abs=0.51)
        assert replayer.max_lag == 0.0

    def test_speedup_divides_wall_time(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=4.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)
        replayer.run(lambda c: None)
        assert sum(fake.sleeps) == pytest.approx(tiny_trace.duration / 4,
                                                 abs=0.2)

    def test_lag_recorded_when_consumer_is_slow(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=1.0,
                                 chunk_seconds=0.5, clock=fake.clock,
                                 sleep=fake.sleep)

        def slow_consume(chunk):
            fake.now += 2.0  # consumer takes 2s per 0.5s chunk

        replayer.run(slow_consume)
        assert replayer.max_lag > 0.0

    def test_stop_callback_halts_replay(self, tiny_trace):
        seen = []

        def stop():
            return len(seen) >= 1

        replayer = TraceReplayer(tiny_trace, chunk_seconds=0.5)
        delivered = replayer.run(seen.append, stop=stop)
        assert delivered == len(seen[0])
        assert delivered < len(tiny_trace)

    def test_zero_speedup_means_unpaced(self, tiny_trace):
        fake = FakeClock()
        replayer = TraceReplayer(tiny_trace, speedup=0,
                                 clock=fake.clock, sleep=fake.sleep)
        replayer.run(lambda c: None)
        assert fake.sleeps == []
