"""Round-trip tests for the CSV and pcap trace formats."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.dataplane.csvtrace import load_csv, save_csv
from repro.dataplane.pcap import load_pcap, save_pcap
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture()
def trace():
    return generate_trace(SyntheticTraceConfig(
        packets=200, flows=40, duration=1.0, seed=21))


class TestCSV:
    def test_roundtrip_exact(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(trace, path)
        loaded = load_csv(path)
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.src, trace.src)
        assert np.array_equal(loaded.dst, trace.dst)
        assert np.array_equal(loaded.sport, trace.sport)
        assert np.array_equal(loaded.dport, trace.dport)
        assert np.array_equal(loaded.proto, trace.proto)
        assert np.array_equal(loaded.size, trace.size)
        assert np.allclose(loaded.timestamps, trace.timestamps, atol=1e-6)

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(TraceFormatError):
            load_csv(path)

    def test_field_count_validated(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("timestamp,src,dst,sport,dport,proto,size\n1,2\n")
        with pytest.raises(TraceFormatError):
            load_csv(path)

    def test_bad_value_reported_with_line(self, tmp_path):
        path = tmp_path / "bad3.csv"
        path.write_text(
            "timestamp,src,dst,sport,dport,proto,size\n"
            "x,10.0.0.1,10.0.0.2,1,2,6,64\n")
        with pytest.raises(TraceFormatError):
            load_csv(path)

    def test_blank_lines_skipped(self, tmp_path, trace):
        path = tmp_path / "t.csv"
        save_csv(trace, path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(load_csv(path)) == len(trace)


class TestPcap:
    def test_roundtrip_fields(self, trace, tmp_path):
        path = tmp_path / "t.pcap"
        save_pcap(trace, path)
        loaded = load_pcap(path)
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.src, trace.src)
        assert np.array_equal(loaded.dst, trace.dst)
        assert np.array_equal(loaded.sport, trace.sport)
        assert np.array_equal(loaded.dport, trace.dport)
        assert np.array_equal(loaded.proto, trace.proto)
        assert np.allclose(loaded.timestamps, trace.timestamps, atol=2e-6)

    def test_not_pcap_rejected(self, tmp_path):
        path = tmp_path / "junk.pcap"
        path.write_bytes(b"not a pcap file at all, sorry...")
        with pytest.raises(TraceFormatError):
            load_pcap(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(TraceFormatError):
            load_pcap(path)

    def test_file_is_valid_classic_pcap(self, trace, tmp_path):
        """Magic + version sanity so external tools can read it."""
        import struct
        path = tmp_path / "t.pcap"
        save_pcap(trace, path)
        header = path.read_bytes()[:24]
        magic, major, minor = struct.unpack("<IHH", header[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)

    def test_ip_checksum_valid(self, trace, tmp_path):
        """The emitted IPv4 header checksum must verify to zero."""
        path = tmp_path / "t.pcap"
        save_pcap(trace, path)
        data = path.read_bytes()
        # First record: 24B global header + 16B record header + 14B eth.
        ip = data[24 + 16 + 14:24 + 16 + 14 + 20]
        total = 0
        for i in range(0, 20, 2):
            total += (ip[i] << 8) | ip[i + 1]
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF
