"""Tests for flow-key extraction and its scalar/vector consistency."""

import numpy as np
import pytest

from repro.dataplane.keys import (
    KEY_FUNCTIONS,
    decode_src_dst,
    dst_ip_key,
    five_tuple_key,
    src_dst_key,
    src_ip_key,
)
from repro.dataplane.packet import FiveTuple, Packet
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SyntheticTraceConfig(
        packets=800, flows=150, duration=1.0, seed=5))


class TestScalarKeys:
    def test_src_dst_fields(self):
        ft = FiveTuple(0xAABBCCDD, 0x11223344, 1000, 80, 6)
        assert src_ip_key(ft) == 0xAABBCCDD
        assert dst_ip_key(ft) == 0x11223344

    def test_pair_packs_both(self):
        ft = FiveTuple(0xAABBCCDD, 0x11223344, 1000, 80, 6)
        key = src_dst_key(ft)
        assert decode_src_dst(key) == (0xAABBCCDD, 0x11223344)

    def test_five_tuple_distinguishes_ports(self):
        a = FiveTuple(1, 2, 1000, 80, 6)
        b = FiveTuple(1, 2, 1001, 80, 6)
        assert five_tuple_key(a) != five_tuple_key(b)

    def test_five_tuple_distinguishes_proto(self):
        a = FiveTuple(1, 2, 1000, 80, 6)
        b = FiveTuple(1, 2, 1000, 80, 17)
        assert five_tuple_key(a) != five_tuple_key(b)

    def test_accepts_packet_or_flow(self):
        ft = FiveTuple(7, 8, 9, 10, 6)
        assert src_ip_key(Packet(flow=ft)) == src_ip_key(ft)

    def test_keys_fit_in_uint64(self):
        ft = FiveTuple(0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255)
        for kf in KEY_FUNCTIONS.values():
            assert 0 <= kf(ft) < (1 << 64)


class TestVectorScalarConsistency:
    @pytest.mark.parametrize("name", list(KEY_FUNCTIONS))
    def test_vector_matches_scalar(self, trace, name):
        kf = KEY_FUNCTIONS[name]
        vec = kf.of_trace(trace)
        assert vec.dtype == np.uint64
        for i in range(0, len(trace), 37):
            assert kf(trace.packet(i)) == int(vec[i])


class TestRegistry:
    def test_all_registered(self):
        assert set(KEY_FUNCTIONS) == {"src_ip", "dst_ip", "src_dst",
                                      "five_tuple"}

    def test_reversibility_flags(self):
        assert src_ip_key.reversible
        assert not five_tuple_key.reversible
