"""Sharded multi-core ingest: exactness, degradation, and failure paths.

The heart of the suite is the shard/merge equivalence property: for any
partition policy and worker count, ShardedIngest must produce a sketch
*serially indistinguishable* from BatchIngest over the same stream —
linearity makes the partition exact, so anything less is a bug, not
noise.  The failure-path tests pin the exact-or-nothing contract: a
dead, erroring, or stalled worker raises ShardFailureError instead of
hanging or silently merging partial shards.

Crash/stall tests monkeypatch module internals and therefore run under
the fork start method (spawn re-imports the module in the child and
would shed the patch); one equivalence test runs under spawn to keep
that start method covered end-to-end.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShardFailureError
from repro.obs import MetricsRegistry, use_registry
from repro.core import serialization
from repro.core.universal import UniversalSketch
from repro.dataplane import parallel
from repro.dataplane.parallel import (
    HASH,
    RANGE,
    ShardedIngest,
    ShardWorkerPool,
    shard_of,
    shared_memory_available,
)
from repro.dataplane.replay import BatchIngest
from repro.sketches.countsketch import CountSketch


def small_factory(seed=42):
    """Geometry where every level's distinct keys fit in the heap, so
    serial and merged heaps must agree bit-for-bit."""
    return lambda: UniversalSketch(levels=4, rows=3, width=128,
                                   heap_size=128, seed=seed)


def stream(seed=0, packets=4000, flows=110, weighted=False):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, flows, size=packets).astype(np.uint64)
    weights = rng.integers(1, 40, size=packets) if weighted else None
    return keys, weights


def assert_counters_identical(a: UniversalSketch, b: UniversalSketch):
    assert a.packets == b.packets
    assert a.total_weight == b.total_weight
    for la, lb in zip(a.levels, b.levels):
        assert np.array_equal(la.sketch.table, lb.sketch.table)
        assert la.packets == lb.packets
        assert la.weight == lb.weight


# --------------------------------------------------------------------- #
# shard/merge equivalence (the property the whole design rests on)
# --------------------------------------------------------------------- #

class TestEquivalence:
    @pytest.mark.parametrize("policy", [RANGE, HASH])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_serialized_equal_to_serial_ingest(self, policy, workers, seed):
        """Random seeds and weights, k in {1,2,4}: byte-equal sketches."""
        keys, weights = stream(seed=seed, weighted=bool(seed % 2))
        factory = small_factory(seed=seed + 11)
        serial = factory()
        BatchIngest(serial, chunk_size=len(keys)).ingest_keys(keys, weights)
        report = ShardedIngest(factory, workers=workers, policy=policy,
                               chunk_size=len(keys), start_method="fork",
                               timeout=60.0).ingest_keys(keys, weights)
        assert report.packets == len(keys)
        assert report.parallel == (workers > 1 and shared_memory_available())
        assert serialization.dumps(report.sketch) == \
            serialization.dumps(serial)

    @pytest.mark.parametrize("policy", [RANGE, HASH])
    def test_level_counters_bit_identical_general_workload(self, policy,
                                                           zipf_keys_factory):
        """Heavy-tailed stream with far more flows than heap slots and
        multi-chunk workers: the *counters* must still match exactly."""
        keys = zipf_keys_factory(packets=20_000, flows=4_000, seed=5)
        factory = lambda: UniversalSketch(levels=6, rows=3, width=512,  # noqa: E731
                                          heap_size=16, seed=9)
        serial = factory()
        BatchIngest(serial, chunk_size=1024).ingest_keys(keys)
        report = ShardedIngest(factory, workers=4, policy=policy,
                               chunk_size=1024, start_method="fork",
                               timeout=60.0).ingest_keys(keys)
        assert report.parallel
        assert_counters_identical(report.sketch, serial)

    def test_spawn_start_method(self):
        """The spawn path (worker rebuilt from pickled geometry, no
        inherited state) produces the same bytes."""
        keys, weights = stream(seed=3, weighted=True)
        factory = small_factory(seed=21)
        serial = factory()
        BatchIngest(serial, chunk_size=len(keys)).ingest_keys(keys, weights)
        report = ShardedIngest(factory, workers=2, start_method="spawn",
                               chunk_size=len(keys),
                               timeout=120.0).ingest_keys(keys, weights)
        assert report.parallel
        assert serialization.dumps(report.sketch) == \
            serialization.dumps(serial)

    def test_more_workers_than_keys(self):
        """Empty range shards are legal and contribute empty sketches."""
        keys = np.array([5, 6, 7], dtype=np.uint64)
        factory = small_factory()
        serial = factory()
        BatchIngest(serial, chunk_size=8).ingest_keys(keys)
        report = ShardedIngest(factory, workers=4, start_method="fork",
                               chunk_size=8).ingest_keys(keys)
        assert_counters_identical(report.sketch, serial)
        assert sum(r.packets for r in report.shards) == 3


# --------------------------------------------------------------------- #
# shard policies
# --------------------------------------------------------------------- #

class TestShardOf:
    def test_partition_is_total_and_deterministic(self):
        keys = np.arange(10_000, dtype=np.uint64)
        shards = shard_of(keys, 4)
        assert shards.min() >= 0 and shards.max() < 4
        assert np.array_equal(shards, shard_of(keys, 4))

    def test_sequential_keys_spread_across_shards(self):
        """The mixer must break up contiguous IP blocks — every shard
        should see a fair cut of a pure arange stream."""
        counts = np.bincount(shard_of(np.arange(8192, dtype=np.uint64), 4),
                             minlength=4)
        assert counts.min() > 8192 / 4 * 0.8

    def test_same_key_same_shard(self):
        keys = np.full(100, 1234567, dtype=np.uint64)
        assert len(np.unique(shard_of(keys, 8))) == 1


# --------------------------------------------------------------------- #
# graceful degradation
# --------------------------------------------------------------------- #

class TestDegradation:
    def test_workers_1_runs_in_process(self):
        keys, _ = stream()
        report = ShardedIngest(small_factory(), workers=1).ingest_keys(keys)
        assert not report.parallel
        assert report.fallback_reason == "workers=1"
        assert report.packets == len(keys)

    def test_empty_stream(self):
        report = ShardedIngest(small_factory(), workers=4).ingest_keys(
            np.array([], dtype=np.uint64))
        assert not report.parallel
        assert report.packets == 0
        assert report.sketch.total_weight == 0

    def test_missing_shared_memory_falls_back(self, monkeypatch):
        monkeypatch.setattr(parallel, "_SHM_AVAILABLE", False)
        keys, _ = stream()
        serial = small_factory()()
        BatchIngest(serial, chunk_size=512).ingest_keys(keys)
        report = ShardedIngest(small_factory(), workers=4,
                               chunk_size=512).ingest_keys(keys)
        assert not report.parallel
        assert report.fallback_reason == "no shared memory"
        assert_counters_identical(report.sketch, serial)

    def test_workers_1_needs_no_seed(self):
        keys, _ = stream(packets=100, flows=7)
        factory = lambda: UniversalSketch(levels=2, rows=3, width=64,  # noqa: E731
                                          heap_size=16)
        report = ShardedIngest(factory, workers=1).ingest_keys(keys)
        assert report.packets == 100


# --------------------------------------------------------------------- #
# failure paths: exact-or-nothing, and never a hang
# --------------------------------------------------------------------- #

class TestFailures:
    def test_dead_worker_raises_typed_error(self, monkeypatch):
        def die(result_queue, *args, **kwargs):
            os._exit(23)

        monkeypatch.setattr(parallel, "_worker_entry", die)
        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2,
                               start_method="fork", timeout=30.0)
        with pytest.raises(ShardFailureError, match="exit code"):
            ingest.ingest_keys(keys)

    def test_worker_exception_surfaces_with_message(self, monkeypatch):
        def boom(params, keys, weights, shard, workers, policy, chunk_size):
            raise RuntimeError("sketch exploded on shard duty")

        monkeypatch.setattr(parallel, "_ingest_shard", boom)
        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2,
                               start_method="fork", timeout=30.0)
        with pytest.raises(ShardFailureError,
                           match="sketch exploded on shard duty"):
            ingest.ingest_keys(keys)

    def test_stalled_worker_times_out(self, monkeypatch):
        real = parallel._ingest_shard

        def stall(params, keys, weights, shard, workers, policy, chunk_size):
            if shard == 1:
                time.sleep(60)
            return real(params, keys, weights, shard, workers, policy,
                        chunk_size)

        monkeypatch.setattr(parallel, "_ingest_shard", stall)
        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2,
                               start_method="fork", timeout=1.0)
        t0 = time.monotonic()
        with pytest.raises(ShardFailureError, match="no result"):
            ingest.ingest_keys(keys)
        assert time.monotonic() - t0 < 20  # error, not a hang

    def test_dropped_packets_rejected(self, monkeypatch):
        real = parallel._ingest_shard

        def lossy(params, keys, weights, shard, workers, policy, chunk_size):
            if shard == 0:
                keys = keys[:-7]
            return real(params, keys, weights, shard, workers, policy,
                        chunk_size)

        monkeypatch.setattr(parallel, "_ingest_shard", lossy)
        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2, policy=RANGE,
                               start_method="fork", timeout=30.0)
        with pytest.raises(ShardFailureError, match="dropped"):
            ingest.ingest_keys(keys)

    def test_silent_exit_zero_worker_fails_fast(self, monkeypatch):
        """Regression: a worker that exits *cleanly* without posting a
        result (``os._exit(0)`` in user code, a lost queue feeder) must
        fail as fast as a crash — not stall out the full timeout."""
        def vanish(task_queue, *args, **kwargs):
            os._exit(0)

        monkeypatch.setattr(parallel, "_worker_entry", vanish)
        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2,
                               start_method="fork", timeout=300.0)
        t0 = time.monotonic()
        with pytest.raises(ShardFailureError, match="exit code"):
            ingest.ingest_keys(keys)
        assert time.monotonic() - t0 < 30  # nowhere near the 300s budget


# --------------------------------------------------------------------- #
# configuration validation
# --------------------------------------------------------------------- #

class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShardedIngest(small_factory(), workers=0)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            ShardedIngest(small_factory(), workers=2, policy="modulo")

    def test_chunk_size_and_timeout(self):
        with pytest.raises(ConfigurationError):
            ShardedIngest(small_factory(), workers=2, chunk_size=0)
        with pytest.raises(ConfigurationError):
            ShardedIngest(small_factory(), workers=2, timeout=0)

    def test_seedless_sketch_rejected_for_parallel(self):
        factory = lambda: UniversalSketch(levels=2, rows=3, width=64,  # noqa: E731
                                          heap_size=16)
        with pytest.raises(ConfigurationError, match="seed"):
            ShardedIngest(factory, workers=2).ingest_keys(
                np.arange(10, dtype=np.uint64))

    def test_non_universal_sketch_rejected(self):
        with pytest.raises(ConfigurationError, match="UniversalSketch"):
            ShardedIngest(lambda: CountSketch(rows=3, width=64, seed=1),
                          workers=2).ingest_keys(
                              np.arange(10, dtype=np.uint64))

    def test_weight_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="length"):
            ShardedIngest(small_factory(), workers=2).ingest_keys(
                np.arange(10, dtype=np.uint64), np.ones(9, dtype=np.int64))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_non_finite_weights_rejected(self, bad, workers):
        """Regression: NaN/inf float weights used to be cast straight to
        int64 — platform-dependent garbage counts — instead of erroring
        like the scalar path.  Both the in-process and pooled paths must
        reject them before any counter is touched."""
        keys = np.arange(64, dtype=np.uint64)
        weights = np.ones(64, dtype=np.float64)
        weights[13] = bad
        ingest = ShardedIngest(small_factory(), workers=workers,
                               start_method="fork", timeout=30.0)
        with pytest.raises(ConfigurationError, match="finite"):
            ingest.ingest_keys(keys, weights)

    def test_finite_float_weights_still_accepted(self):
        keys = np.arange(64, dtype=np.uint64)
        report = ShardedIngest(small_factory(), workers=1).ingest_keys(
            keys, np.full(64, 2.0))
        assert report.sketch.total_weight == 128

    def test_pool_worker_count_mismatch_rejected(self):
        pool = ShardWorkerPool(workers=2)
        try:
            with pytest.raises(ConfigurationError, match="workers"):
                ShardedIngest(small_factory(), workers=4, pool=pool)
        finally:
            pool.close()

    def test_like_clones_geometry(self):
        template = UniversalSketch(levels=3, rows=4, width=256,
                                   heap_size=32, seed=77, counter_bytes=8)
        produced = ShardedIngest.like(template, workers=1).sketch_factory()
        assert serialization.dumps(produced) == serialization.dumps(
            UniversalSketch(levels=3, rows=4, width=256, heap_size=32,
                            seed=77, counter_bytes=8))


# --------------------------------------------------------------------- #
# observability
# --------------------------------------------------------------------- #

class TestMetrics:
    def test_parallel_run_records_shard_metrics(self):
        keys, _ = stream()
        with use_registry(MetricsRegistry()) as reg:
            report = ShardedIngest(small_factory(), workers=2,
                                   start_method="fork",
                                   timeout=60.0).ingest_keys(keys)
            if not report.parallel:  # pragma: no cover - no-shm platform
                pytest.skip("platform lacks shared memory")
            total = sum(
                reg.get("univmon_shard_packets_total", shard=str(i)).value
                for i in range(2))
            assert total == len(keys)
            assert reg.get("univmon_shard_workers").value == 2
            assert reg.get("univmon_shard_runs_total").value == 1
            assert reg.get("univmon_shard_merge_seconds").count == 1

    def test_fallback_reason_is_counted(self):
        keys, _ = stream(packets=200)
        with use_registry(MetricsRegistry()) as reg:
            ShardedIngest(small_factory(), workers=1).ingest_keys(keys)
            assert reg.get("univmon_shard_fallbacks_total",
                           reason="workers=1").value == 1

    def test_failure_is_counted(self, monkeypatch):
        def die(result_queue, *args, **kwargs):
            os._exit(9)

        monkeypatch.setattr(parallel, "_worker_entry", die)
        keys, _ = stream(packets=500)
        with use_registry(MetricsRegistry()) as reg:
            with pytest.raises(ShardFailureError):
                ShardedIngest(small_factory(), workers=2,
                              start_method="fork",
                              timeout=30.0).ingest_keys(keys)
            assert reg.get("univmon_shard_failures_total").value == 1

    def test_stale_shard_series_cleared_by_narrower_run(self):
        """Regression: a 4-worker run used to leave shard="2"/"3" gauges
        behind; a following 2-worker run must export exactly 2 shard
        series, not scrape-corrupting leftovers."""
        keys, _ = stream()

        def shard_labels(reg, family):
            return sorted(dict(m.labels)["shard"] for m in reg.metrics()
                          if m.name == family)

        with use_registry(MetricsRegistry()) as reg:
            wide = ShardedIngest(small_factory(), workers=4,
                                 start_method="fork", timeout=60.0)
            report = wide.ingest_keys(keys)
            if not report.parallel:  # pragma: no cover - no-shm platform
                pytest.skip("platform lacks shared memory")
            wide.close()
            assert shard_labels(reg, "univmon_shard_packets_total") == \
                ["0", "1", "2", "3"]
            narrow = ShardedIngest(small_factory(), workers=2,
                                   start_method="fork", timeout=60.0)
            narrow.ingest_keys(keys)
            narrow.close()
            for family in ("univmon_shard_packets_total",
                           "univmon_shard_packets_per_second"):
                assert shard_labels(reg, family) == ["0", "1"]
            total = sum(
                reg.get("univmon_shard_packets_total", shard=str(i)).value
                for i in range(2))
            assert total == len(keys)


# --------------------------------------------------------------------- #
# pool lifecycle: persistence, slab reuse, crash recovery, clean shutdown
# --------------------------------------------------------------------- #

needs_shm = pytest.mark.skipif(not shared_memory_available(),
                               reason="platform lacks shared memory")


@needs_shm
class TestPoolLifecycle:
    def test_workers_persist_across_epochs(self):
        """Three consecutive epochs ride the same worker generation and
        the same slabs — spawn cost is paid exactly once."""
        factory = small_factory(seed=7)
        ingest = ShardedIngest(factory, workers=2, start_method="fork",
                               timeout=60.0)
        with use_registry(MetricsRegistry()) as reg:
            with ingest:
                pids = names = None
                for epoch in range(3):
                    keys, weights = stream(seed=epoch, weighted=True)
                    serial = factory()
                    BatchIngest(serial, chunk_size=8192).ingest_keys(
                        keys, weights)
                    report = ingest.ingest_keys(keys, weights)
                    assert report.parallel
                    assert serialization.dumps(report.sketch) == \
                        serialization.dumps(serial)
                    if pids is None:
                        pids = ingest.pool.worker_pids()
                        names = ingest.pool.slab_names()
                    else:
                        assert ingest.pool.worker_pids() == pids
                        assert ingest.pool.slab_names() == names
            assert reg.get("univmon_pool_starts_total").value == 1
            assert reg.get("univmon_pool_spawns_total").value == 2
            assert reg.get("univmon_pool_epochs_total").value == 3
            assert reg.get("univmon_pool_stops_total").value == 1
            assert reg.get("univmon_pool_workers").value == 0  # closed

    def test_multi_batch_stream_refills_the_slab(self):
        """A stream longer than the slab is fed in double-buffered
        batches through the same two blocks — and still merges to the
        exact serial bytes."""
        keys, weights = stream(seed=9, packets=4000, weighted=True)
        factory = small_factory(seed=3)
        serial = factory()
        BatchIngest(serial, chunk_size=8192).ingest_keys(keys, weights)
        with use_registry(MetricsRegistry()) as reg:
            with ShardedIngest(factory, workers=2, start_method="fork",
                               timeout=60.0, slab_packets=512) as ingest:
                report = ingest.ingest_keys(keys, weights)
                assert report.parallel
                assert serialization.dumps(report.sketch) == \
                    serialization.dumps(serial)
            assert reg.get("univmon_pool_batches_total").value == \
                -(-4000 // 512)
            assert reg.get("univmon_pool_slab_refills_total").value > 0

    def test_crash_mid_epoch_breaks_then_recovers(self):
        """A worker killed between epochs fails the next run fast, and
        the run after that rides a fresh worker generation."""
        import signal

        factory = small_factory(seed=5)
        keys, _ = stream(seed=1)
        serial = factory()
        BatchIngest(serial, chunk_size=8192).ingest_keys(keys)
        ingest = ShardedIngest(factory, workers=2, start_method="fork",
                               timeout=60.0)
        with ingest:
            assert serialization.dumps(ingest.ingest_keys(keys).sketch) \
                == serialization.dumps(serial)
            first_pids = ingest.pool.worker_pids()
            os.kill(first_pids[0], signal.SIGKILL)
            t0 = time.monotonic()
            with pytest.raises(ShardFailureError, match="exit code"):
                ingest.ingest_keys(keys)
            assert time.monotonic() - t0 < 30
            # next run restarts the pool transparently
            report = ingest.ingest_keys(keys)
            assert report.parallel
            assert serialization.dumps(report.sketch) == \
                serialization.dumps(serial)
            assert ingest.pool.worker_pids() != first_pids

    def test_spawn_pool_persists_too(self):
        """The spawn start method (no inherited state at all) reuses its
        worker generation across epochs just like fork."""
        factory = small_factory(seed=21)
        with ShardedIngest(factory, workers=2, start_method="spawn",
                           chunk_size=4096, timeout=120.0) as ingest:
            pids = None
            for epoch in range(2):
                keys, weights = stream(seed=epoch + 3, weighted=True)
                serial = factory()
                BatchIngest(serial, chunk_size=4096).ingest_keys(
                    keys, weights)
                report = ingest.ingest_keys(keys, weights)
                assert report.parallel
                assert serialization.dumps(report.sketch) == \
                    serialization.dumps(serial)
                if pids is None:
                    pids = ingest.pool.worker_pids()
                else:
                    assert ingest.pool.worker_pids() == pids

    def test_close_releases_every_shared_memory_block(self):
        """Shutdown must unlink the slabs (no leaked blocks) and reap
        every worker process."""
        from multiprocessing import shared_memory

        keys, _ = stream()
        ingest = ShardedIngest(small_factory(), workers=2,
                               start_method="fork", timeout=60.0)
        ingest.ingest_keys(keys)
        pool = ingest.pool
        names, procs = pool.slab_names(), list(pool._procs)
        assert len(names) == 2
        ingest.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert all(proc.exitcode is not None for proc in procs)
        assert not pool.running

    def test_shared_pool_serves_multiple_drivers(self):
        """One pool, several geometries: the pool is geometry-agnostic
        (params travel per epoch), so drivers for different sketches can
        share the same hot workers — the switch does exactly this."""
        keys, _ = stream(seed=4)
        with ShardWorkerPool(workers=2, start_method="fork",
                             timeout=60.0) as pool:
            pids = None
            for seed, levels in ((11, 3), (12, 4)):
                factory = lambda: UniversalSketch(  # noqa: E731
                    levels=levels, rows=3, width=128, heap_size=128,
                    seed=seed)
                serial = factory()
                BatchIngest(serial, chunk_size=8192).ingest_keys(keys)
                driver = ShardedIngest(factory, pool=pool, timeout=60.0)
                assert driver.workers == 2  # inherited from the pool
                report = driver.ingest_keys(keys)
                assert report.parallel
                assert serialization.dumps(report.sketch) == \
                    serialization.dumps(serial)
                driver.close()  # must NOT close the shared pool
                assert pool.running
                if pids is None:
                    pids = pool.worker_pids()
                else:
                    assert pool.worker_pids() == pids
