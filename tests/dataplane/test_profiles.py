"""Tests for the named workload profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.dataplane.profiles import PROFILES, profile
from repro.dataplane.trace import generate_trace


class TestProfiles:
    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            profile("campus")

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_all_profiles_generate(self, name):
        trace = generate_trace(profile(name, duration=2.0, seed=1))
        assert len(trace) > 0
        assert trace.duration <= 2.0

    def test_duration_scaling(self):
        short = profile("backbone", duration=5.0)
        long = profile("backbone", duration=20.0)
        assert long.packets == 4 * short.packets
        assert long.flows == pytest.approx(2 * short.flows, rel=0.01)

    def test_seed_passthrough(self):
        assert profile("backbone", seed=42).seed == 42

    def test_datacenter_skewier_than_ixp(self):
        """The defining difference: datacenter elephants vs IXP fan-in."""
        def top_share(name):
            trace = generate_trace(profile(name, duration=5.0, seed=3))
            keys = trace.key_array(src_ip_key)
            _, counts = np.unique(keys, return_counts=True)
            return counts.max() / len(keys)
        assert top_share("datacenter") > 2 * top_share("ixp")

    def test_ixp_most_flows(self):
        traces = {
            name: generate_trace(profile(name, duration=5.0, seed=4))
            for name in ("backbone", "ixp", "enterprise")
        }
        distinct = {name: t.distinct(src_ip_key)
                    for name, t in traces.items()}
        assert distinct["ixp"] > distinct["backbone"] > \
            distinct["enterprise"]

    @pytest.mark.parametrize("name", sorted(PROFILES))
    @pytest.mark.parametrize("duration", [0.01, 0.05, 0.5, 5.0])
    def test_flows_never_exceed_packets(self, name, duration):
        """Regression: sublinear flow scaling (sqrt of the duration
        scale) crossed the linear packet scaling for tiny durations —
        profile("ixp", duration=0.01) asked for 537 flows over 60
        packets, which the generator cannot honour."""
        config = profile(name, duration=duration)
        assert config.flows <= config.packets
        assert config.flows >= 1

    def test_tiny_duration_generates(self):
        trace = generate_trace(profile("ixp", duration=0.01, seed=2))
        assert len(trace) > 0

    def test_base_profiles_are_immutable(self):
        before = PROFILES["backbone"].packets
        profile("backbone", duration=50.0)
        assert PROFILES["backbone"].packets == before
