"""Tests for packets, 5-tuples, and IPv4 helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.dataplane.packet import (
    PROTO_TCP,
    FiveTuple,
    Packet,
    format_ipv4,
    parse_ipv4,
)


class TestIPv4Helpers:
    def test_parse_known(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF
        assert parse_ipv4("10.0.0.1") == 0x0A000001
        assert parse_ipv4("192.168.1.1") == 0xC0A80101

    def test_format_known(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"
        assert format_ipv4(0) == "0.0.0.0"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                     "a.b.c.d", "-1.0.0.0", ""])
    def test_parse_rejects_junk(self, bad):
        with pytest.raises(TraceFormatError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(TraceFormatError):
            format_ipv4(-1)
        with pytest.raises(TraceFormatError):
            format_ipv4(1 << 32)

    @given(st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=200)
    def test_property_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestFiveTuple:
    def test_from_strings(self):
        ft = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 80,
                                    PROTO_TCP)
        assert ft.src_ip == 0x0A000001
        assert ft.dst_ip == 0x0A000002
        assert ft.src_port == 1234 and ft.dst_port == 80

    def test_reversed(self):
        ft = FiveTuple(1, 2, 3, 4, 6)
        rev = ft.reversed()
        assert rev == FiveTuple(2, 1, 4, 3, 6)
        assert rev.reversed() == ft

    def test_str_rendering(self):
        ft = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 80, 6)
        text = str(ft)
        assert "10.0.0.1:1234" in text and "proto=6" in text

    def test_hashable_for_dict_keys(self):
        counts = {FiveTuple(1, 2, 3, 4, 6): 1}
        counts[FiveTuple(1, 2, 3, 4, 6)] += 1
        assert counts[FiveTuple(1, 2, 3, 4, 6)] == 2


class TestPacket:
    def test_defaults(self):
        p = Packet(flow=FiveTuple(1, 2, 3, 4, 6))
        assert p.timestamp == 0.0 and p.size == 64

    def test_negative_size_rejected(self):
        with pytest.raises(TraceFormatError):
            Packet(flow=FiveTuple(1, 2, 3, 4, 6), size=-1)

    def test_frozen(self):
        p = Packet(flow=FiveTuple(1, 2, 3, 4, 6))
        with pytest.raises(AttributeError):
            p.size = 100
