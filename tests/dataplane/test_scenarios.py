"""Property tests for the workload scenario library.

Three families, per ISSUE: seeded determinism (same (name, seed, scale)
-> bit-identical traces and truths), ground-truth self-consistency (the
generator's reported per-key counts must equal a ``collections.Counter``
over the packets it actually emitted), and CDF-sampler moment checks
against the analytic mean.  These are what let the acceptance matrix
trust the reported ground truth.
"""

import collections
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.dataplane.scenarios import (
    DATAMINING_CDF,
    WEBSEARCH_CDF,
    EpochTruth,
    FlowSizeCDF,
    SCENARIOS,
    make_scenario,
    scenario_names,
)

ALL_SCENARIOS = scenario_names()

#: Small-scale builds shared across the suite (session-scoped: every
#: scenario is built once, several tests inspect it).
SCALE = 0.2


@pytest.fixture(scope="module")
def scenarios():
    return {name: make_scenario(name, seed=7, scale=SCALE)
            for name in ALL_SCENARIOS}


# --------------------------------------------------------------------- #
# CDF sampler
# --------------------------------------------------------------------- #

class TestFlowSizeCDF:
    @pytest.mark.parametrize("cdf", [WEBSEARCH_CDF, DATAMINING_CDF],
                             ids=lambda c: c.name)
    def test_sample_mean_matches_analytic(self, cdf):
        """Empirical mean of a large sample converges on the analytic
        ``sum p_i * s_i`` (within 5 sigma of the CLT standard error)."""
        rng = np.random.default_rng(123)
        n = 200_000
        sample = cdf.sample(rng, n)
        var = float(cdf.probs @ (cdf.sizes - cdf.mean()) ** 2)
        stderr = math.sqrt(var / n)
        assert abs(float(sample.mean()) - cdf.mean()) < 5 * stderr

    @pytest.mark.parametrize("cdf", [WEBSEARCH_CDF, DATAMINING_CDF],
                             ids=lambda c: c.name)
    def test_sample_support(self, cdf):
        rng = np.random.default_rng(5)
        sample = cdf.sample(rng, 50_000)
        assert set(np.unique(sample)) <= set(cdf.sizes.tolist())
        assert sample.min() >= 1

    @pytest.mark.parametrize("cdf", [WEBSEARCH_CDF, DATAMINING_CDF],
                             ids=lambda c: c.name)
    def test_sample_probabilities(self, cdf):
        """Per-size frequencies land within 5 sigma of the table."""
        rng = np.random.default_rng(99)
        n = 200_000
        sample = cdf.sample(rng, n)
        for prob, size in zip(cdf.probs, cdf.sizes):
            observed = float((sample == size).mean())
            stderr = math.sqrt(prob * (1 - prob) / n)
            assert abs(observed - prob) < 5 * stderr + 1e-9

    def test_sample_total_exact_budget(self):
        rng = np.random.default_rng(3)
        for target in (1, 17, 5_000, 60_000):
            sizes = DATAMINING_CDF.sample_total(rng, target)
            assert int(sizes.sum()) == target
            assert sizes.min() >= 1

    def test_rejects_bad_tables(self):
        with pytest.raises(ConfigurationError):
            FlowSizeCDF("empty", [])
        with pytest.raises(ConfigurationError):
            FlowSizeCDF("non-ascending", [(0.5, 1), (0.4, 2), (1.0, 3)])
        with pytest.raises(ConfigurationError):
            FlowSizeCDF("short", [(0.5, 1), (0.9, 2)])
        with pytest.raises(ConfigurationError):
            FlowSizeCDF("zero-size", [(0.5, 0), (1.0, 2)])


# --------------------------------------------------------------------- #
# EpochTruth
# --------------------------------------------------------------------- #

class TestEpochTruth:
    def test_aggregates_duplicates_and_drops_zeros(self):
        truth = EpochTruth(np.array([5, 3, 5, 9], dtype=np.uint64),
                           np.array([2, 4, 1, 0], dtype=np.int64))
        assert truth.counter() == {3: 4, 5: 3}
        assert truth.distinct == 2
        assert truth.packets == 7

    def test_entropy_uniform_and_point_mass(self):
        uniform = EpochTruth(np.arange(8, dtype=np.uint64),
                             np.ones(8, dtype=np.int64))
        assert uniform.entropy() == pytest.approx(3.0)
        point = EpochTruth(np.array([1], dtype=np.uint64),
                           np.array([100], dtype=np.int64))
        assert point.entropy() == pytest.approx(0.0)

    def test_heavy_change_matches_manual_l1(self):
        a = EpochTruth(np.array([1, 2, 3], dtype=np.uint64),
                       np.array([100, 10, 10], dtype=np.int64))
        b = EpochTruth(np.array([2, 3, 4], dtype=np.uint64),
                       np.array([10, 110, 50], dtype=np.int64))
        # deltas: 1:-100, 2:0, 3:+100, 4:+50 -> D = 250
        assert b.total_change(a) == 250
        assert b.heavy_change_keys(a, phi=0.3) == {1, 3}
        assert b.heavy_change_keys(a, phi=0.15) == {1, 3, 4}

    def test_merged_is_union_of_counts(self):
        a = EpochTruth(np.array([1, 2], dtype=np.uint64),
                       np.array([5, 7], dtype=np.int64))
        b = EpochTruth(np.array([2, 3], dtype=np.uint64),
                       np.array([1, 4], dtype=np.int64))
        assert EpochTruth.merged([a, b]).counter() == {1: 5, 2: 8, 3: 4}


# --------------------------------------------------------------------- #
# scenario properties
# --------------------------------------------------------------------- #

class TestScenarioProperties:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_seeded_determinism(self, name, scenarios):
        """Same (name, seed, scale) -> bit-identical trace and truths."""
        first = scenarios[name]
        second = make_scenario(name, seed=7, scale=SCALE)
        np.testing.assert_array_equal(first.trace.timestamps,
                                      second.trace.timestamps)
        np.testing.assert_array_equal(first.trace.src, second.trace.src)
        np.testing.assert_array_equal(first.trace.dst, second.trace.dst)
        np.testing.assert_array_equal(first.trace.sport,
                                      second.trace.sport)
        assert first.events == second.events
        for t1, t2 in zip(first.truths, second.truths):
            np.testing.assert_array_equal(t1.keys, t2.keys)
            np.testing.assert_array_equal(t1.counts, t2.counts)

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_different_seeds_differ(self, name, scenarios):
        other = make_scenario(name, seed=8, scale=SCALE)
        assert not np.array_equal(scenarios[name].trace.src, other.trace.src)

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_truth_matches_counter_over_emitted_packets(self, name,
                                                        scenarios):
        """The load-bearing property: reported ground truth equals a
        Counter over the packets each epoch slice actually contains."""
        scenario = scenarios[name]
        epoch_traces = scenario.epoch_traces()
        assert len(epoch_traces) == scenario.n_epochs
        for trace, truth in zip(epoch_traces, scenario.truths):
            counted = collections.Counter(
                int(k) for k in trace.key_array(src_ip_key))
            assert dict(counted) == truth.counter()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_epoch_slices_cover_trace(self, name, scenarios):
        scenario = scenarios[name]
        assert sum(len(t) for t in scenario.epoch_traces()) == \
            len(scenario.trace)
        assert sum(t.packets for t in scenario.truths) == \
            len(scenario.trace)

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_timestamps_sorted_and_bounded(self, name, scenarios):
        scenario = scenarios[name]
        ts = scenario.trace.timestamps
        assert np.all(np.diff(ts) >= 0)
        assert ts[0] >= 0.0
        assert ts[-1] < scenario.n_epochs * scenario.epoch_seconds

    def test_scale_shrinks_volume(self):
        small = make_scenario("ddos_ramp", seed=1, scale=0.1)
        large = make_scenario("ddos_ramp", seed=1, scale=0.4)
        assert len(small.trace) < len(large.trace) / 2

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scenario("slowloris")
        with pytest.raises(ConfigurationError):
            make_scenario("ddos_ramp", scale=0.0)

    def test_registry_descriptions(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert spec.description


# --------------------------------------------------------------------- #
# scenario-specific structure
# --------------------------------------------------------------------- #

class TestScenarioStructure:
    def test_ddos_ramp_f0_ramps(self, scenarios):
        scenario = scenarios["ddos_ramp"]
        attack = scenario.events["attack_epochs"]
        baseline = scenario.truths[0].distinct
        previous = baseline
        for epoch in attack:
            distinct = scenario.truths[epoch].distinct
            assert distinct > previous  # strictly ramping
            previous = distinct
        assert previous > 2 * baseline

    def test_flash_crowd_entropy_drops(self, scenarios):
        scenario = scenarios["flash_crowd"]
        clean = scenario.truths[0].entropy()
        for epoch in scenario.events["crowd_epochs"]:
            assert scenario.truths[epoch].entropy() < clean - 0.5

    def test_port_scan_distinct_explosion(self, scenarios):
        scenario = scenarios["port_scan"]
        clean = scenario.truths[0]
        for epoch in scenario.events["scan_epochs"]:
            scan = scenario.truths[epoch]
            assert scan.distinct > 3 * clean.distinct
            # low volume: packets grow far less than distinct sources
            assert scan.packets < 2 * clean.packets

    def test_heavy_churn_elephants_are_heavy_changes(self, scenarios):
        scenario = scenarios["heavy_churn"]
        elephants = scenario.events["elephants"]
        for epoch in range(1, scenario.n_epochs):
            truth = scenario.truths[epoch].heavy_change_keys(
                scenario.truths[epoch - 1], phi=0.03)
            rising = set(elephants[epoch])
            fading = set(elephants[epoch - 1])
            assert rising <= truth
            assert fading <= truth

    def test_keyspace_shift_window_union_grows(self, scenarios):
        scenario = scenarios["keyspace_shift"]
        single = scenario.truths[2].distinct
        window = scenario.window_truth(2, window=3).distinct
        # 50% overlap per step: a 3-epoch union is ~2x one epoch.
        assert window > 1.5 * single

    @pytest.mark.parametrize("name", ["websearch_mix", "datamining_mix"])
    def test_mix_epochs_hit_packet_budget(self, name, scenarios):
        scenario = scenarios[name]
        packets = [t.packets for t in scenario.truths]
        # proportional rescale + mice clamping: within 10% of nominal
        assert max(packets) < 1.1 * min(packets)
