"""Tests for the NetFlow-style sampled flow table baseline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.dataplane.netflow import SampledFlowTable
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates


class TestConstruction:
    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            SampledFlowTable(sampling_rate=0.0)
        with pytest.raises(ConfigurationError):
            SampledFlowTable(sampling_rate=1.5)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            SampledFlowTable(sampling_rate=0.1, capacity=0)


class TestSampling:
    def test_full_rate_is_exact(self):
        table = SampledFlowTable(sampling_rate=1.0, seed=1)
        for k in [1, 1, 1, 2]:
            table.update(k)
        assert table.estimate_frequency(1) == 3.0
        assert table.estimate_frequency(2) == 1.0
        assert table.estimate_cardinality() == pytest.approx(2.0, abs=0.1)

    def test_sampled_fraction_near_rate(self):
        table = SampledFlowTable(sampling_rate=0.1, seed=2)
        for k in range(20_000):
            table.update(k % 500)
        assert 0.08 < table.sampled_packets / table.total_packets < 0.12

    def test_inverse_scaling_unbiased_for_big_flows(self):
        estimates = []
        for seed in range(30):
            table = SampledFlowTable(sampling_rate=0.05, seed=seed)
            for _ in range(2000):
                table.update(7)
            estimates.append(table.estimate_frequency(7))
        assert abs(np.mean(estimates) - 2000) / 2000 < 0.1

    def test_capacity_evictions_counted(self):
        table = SampledFlowTable(sampling_rate=1.0, capacity=3, seed=3)
        for k in range(10):
            table.update(k)
        assert table.flows_tracked() == 3
        assert table.evictions == 7


class TestPaperClaim:
    """§2.1: sampling is fine for elephants, poor for fine metrics."""

    def test_heavy_hitters_found_despite_sampling(self, small_trace):
        truth = GroundTruth(small_trace, src_ip_key)
        table = SampledFlowTable(sampling_rate=0.1, seed=4)
        for key in small_trace.key_array(src_ip_key).tolist():
            table.update(int(key))
        reported = {k for k, _ in table.heavy_hitters(0.01)}
        fp, fn = detection_rates(truth.heavy_hitter_keys(0.01), reported)
        assert fn <= 0.35  # elephants mostly survive sampling

    def test_cardinality_poor_at_low_rate(self, small_trace):
        """Distinct counting through packet sampling misses mice badly —
        the motivation for sketching."""
        truth = GroundTruth(small_trace, src_ip_key)
        table = SampledFlowTable(sampling_rate=0.01, seed=5)
        for key in small_trace.key_array(src_ip_key).tolist():
            table.update(int(key))
        naive_seen = table.flows_tracked()
        assert naive_seen < 0.5 * truth.distinct  # most flows unseen

    def test_entropy_biased_at_low_rate(self, small_trace):
        truth = GroundTruth(small_trace, src_ip_key)
        table = SampledFlowTable(sampling_rate=0.01, seed=6)
        for key in small_trace.key_array(src_ip_key).tolist():
            table.update(int(key))
        # Plug-in entropy over the sampled distribution underestimates
        # (mice vanish); the error is large where UnivMon's is ~1%.
        err = abs(table.estimate_entropy() - truth.entropy()) \
            / truth.entropy()
        assert err > 0.05

    def test_memory_grows_with_traffic(self):
        """Unlike sketches, the flow table's memory is workload-shaped."""
        table = SampledFlowTable(sampling_rate=1.0, seed=7)
        m0 = table.memory_bytes()
        for k in range(1000):
            table.update(k)
        assert table.memory_bytes() > m0 + 10_000
