"""Tests for the switch topology and ingress assignment."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.topology import NetworkTopology


class TestConstruction:
    def test_line(self):
        topo = NetworkTopology.line(4)
        assert topo.switches == ["s0", "s1", "s2", "s3"]
        assert topo.path("s0", "s3") == ["s0", "s1", "s2", "s3"]

    def test_star(self):
        topo = NetworkTopology.star(3)
        assert "core" in topo.switches
        assert topo.path("edge0", "edge2") == ["edge0", "core", "edge2"]

    def test_fat_tree_pod(self):
        topo = NetworkTopology.fat_tree_pod(edge=4)
        path = topo.path("tor0", "tor3")
        assert len(path) == 3  # tor - agg - tor

    def test_weighted_paths(self):
        topo = NetworkTopology()
        for n in "abc":
            topo.add_switch(n)
        topo.add_link("a", "b", weight=10.0)
        topo.add_link("a", "c", weight=1.0)
        topo.add_link("c", "b", weight=1.0)
        assert topo.path("a", "b") == ["a", "c", "b"]


class TestErrors:
    def test_unknown_switch(self):
        topo = NetworkTopology.line(2)
        with pytest.raises(TopologyError):
            topo.path("s0", "nope")

    def test_no_path(self):
        topo = NetworkTopology()
        topo.add_switch("a")
        topo.add_switch("b")
        with pytest.raises(TopologyError):
            topo.path("a", "b")

    def test_ingress_on_empty_topology(self, tiny_trace):
        with pytest.raises(TopologyError):
            NetworkTopology().ingress_assignment(tiny_trace)


class TestIngressAssignment:
    def test_partitions_all_packets(self, small_trace):
        topo = NetworkTopology.star(4)
        shares = topo.ingress_assignment(small_trace)
        assert set(shares) == set(topo.switches)
        assert sum(len(t) for t in shares.values()) == len(small_trace)

    def test_prefix_affinity(self, small_trace):
        """All packets of one source /16 land on one switch."""
        topo = NetworkTopology.line(3)
        shares = topo.ingress_assignment(small_trace, seed=1)
        prefix_owner = {}
        for name, share in shares.items():
            for prefix in np.unique(share.src >> np.uint32(16)):
                assert prefix_owner.setdefault(int(prefix), name) == name

    def test_deterministic_per_seed(self, small_trace):
        topo = NetworkTopology.line(3)
        a = topo.ingress_assignment(small_trace, seed=5)
        b = topo.ingress_assignment(small_trace, seed=5)
        for name in topo.switches:
            assert len(a[name]) == len(b[name])

    def test_roughly_balanced(self, small_trace):
        topo = NetworkTopology.star(4)
        shares = topo.ingress_assignment(small_trace, seed=2)
        sizes = [len(t) for t in shares.values()]
        assert min(sizes) > 0.1 * max(sizes)
