"""Tests for the network-wide epoch coordinator (incl. failure injection)."""

import pytest

from repro.errors import ConfigurationError
from repro.controlplane.apps.cardinality import CardinalityApp
from repro.controlplane.apps.entropy import EntropyApp
from repro.network.coordinator import NetworkCoordinator
from repro.network.topology import NetworkTopology
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=6, rows=3, width=512, heap_size=32, seed=5)


def make(epoch_seconds=1.0):
    return NetworkCoordinator(NetworkTopology.star(3),
                              sketch_factory=factory,
                              epoch_seconds=epoch_seconds)


class TestConfiguration:
    def test_epoch_validated(self):
        with pytest.raises(ConfigurationError):
            NetworkCoordinator(NetworkTopology.line(2), epoch_seconds=0,
                               sketch_factory=factory)

    def test_duplicate_app_rejected(self):
        coordinator = make()
        coordinator.register(EntropyApp())
        with pytest.raises(ConfigurationError):
            coordinator.register(EntropyApp())

    def test_unknown_switch_cannot_fail(self):
        with pytest.raises(ConfigurationError):
            make().mark_failed("nope")


class TestEpochLoop:
    def test_full_coverage_reports(self, small_trace):
        coordinator = make(epoch_seconds=2.0)
        coordinator.register(CardinalityApp()).register(EntropyApp())
        reports = coordinator.run_trace(small_trace)
        assert len(reports) == len(small_trace.epochs(2.0))
        for report in reports:
            coverage = report["coverage"]
            assert coverage["failed"] == []
            assert coverage["packets_covered"] == report.packets
            assert "cardinality" in report.results
            assert "entropy" in report.results

    def test_network_wide_close_to_single_controller(self, small_trace):
        """Merged multi-switch estimate ~= one central sketch's.

        Counters are bit-identical (linearity), but the merged Q_j heaps
        are rebuilt from the union of per-switch heap keys, which can
        differ slightly from a central streaming heap — so the estimates
        agree approximately, not exactly.
        """
        coordinator = make(epoch_seconds=10.0)
        coordinator.register(CardinalityApp())
        report = coordinator.run_trace(small_trace)[0]

        central = factory()
        central.update_array(small_trace.key_array(
            coordinator._key_function))
        from repro.core.gsum import estimate_cardinality
        assert report["cardinality"]["distinct"] == \
            pytest.approx(estimate_cardinality(central), rel=0.15)


class TestMergeAliasing:
    def test_single_survivor_merge_is_a_copy(self, tiny_trace):
        """Regression: with one surviving switch the merged sketch used
        to *be* the live per-switch sketch, so mutating the merge result
        corrupted data-plane state."""
        coordinator = make(epoch_seconds=10.0)
        for switch in ("edge1", "edge2"):
            coordinator.mark_failed(switch)
        coordinator._monitor.process_trace(tiny_trace)
        live = coordinator._monitor.sketches["edge0"]
        before = live.total_weight
        merged = coordinator._merge_surviving()
        assert merged is not live
        merged.update(12345, 10_000)
        assert live.total_weight == before

    def test_single_switch_network_sketch_is_a_copy(self, tiny_trace):
        from repro.network.distributed import DistributedMonitor
        monitor = DistributedMonitor(NetworkTopology.line(1),
                                     sketch_factory=factory)
        monitor.process_trace(tiny_trace)
        live = monitor.sketches[monitor.topology.switches[0]]
        before = live.total_weight
        merged = monitor.network_sketch()
        assert merged is not live
        merged.update(12345, 10_000)
        assert live.total_weight == before
        # The snapshot itself is fully functional.
        assert merged.total_weight == before + 10_000


class TestFailureInjection:
    def test_failed_switch_degrades_coverage(self, small_trace):
        coordinator = make(epoch_seconds=10.0)
        coordinator.register(CardinalityApp())
        coordinator.mark_failed("edge1")
        report = coordinator.run_trace(small_trace)[0]
        coverage = report["coverage"]
        assert coverage["failed"] == ["edge1"]
        assert 0 < coverage["packets_covered"] < report.packets
        # Apps still run on the surviving traffic.
        assert report["cardinality"]["distinct"] > 0

    def test_recovery_restores_coverage(self, small_trace):
        coordinator = make(epoch_seconds=10.0)
        coordinator.mark_failed("edge0")
        coordinator.mark_recovered("edge0")
        report = coordinator.run_trace(small_trace)[0]
        assert report["coverage"]["packets_covered"] == report.packets

    def test_all_switches_failed_yields_empty_epoch(self, tiny_trace):
        coordinator = make(epoch_seconds=10.0)
        coordinator.register(CardinalityApp())
        for switch in NetworkTopology.star(3).switches:
            coordinator.mark_failed(switch)
        report = coordinator.run_trace(tiny_trace)[0]
        assert report["coverage"]["packets_covered"] == 0
        assert "cardinality" not in report.results
