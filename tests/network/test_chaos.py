"""Chaos suite: epoch runs under injected transport faults.

The acceptance scenario: with every agent behind a :class:`FaultyProxy`
dropping 30% of connections and one agent killed and restarted mid-run,
the :class:`RemoteCoordinator` completes every epoch, auto-marks and
recovers the failed switch, reports accurate coverage and retry
counters, and — because backoff jitter is seeded and sleeps are
injected — the whole run is deterministic (asserted by replaying it).
"""

import pytest

from repro.controlplane.rpc import (
    RemoteSwitchClient,
    RetryPolicy,
    SwitchAgent,
)
from repro.errors import TransportError
from repro.network.faults import FaultPlan, FaultyProxy
from repro.network.health import HealthTracker
from repro.network.remote import RemoteCoordinator
from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=5, rows=3, width=256, heap_size=16, seed=3)


def make_agent(name, port=0):
    switch = MonitoredSwitch(name)
    switch.attach("univmon", factory, src_ip_key)
    return SwitchAgent(switch, port=port).start()


def epoch_feed(seed):
    """A small per-epoch traffic slice (distinct per seed)."""
    return generate_trace(SyntheticTraceConfig(
        packets=300, flows=60, zipf_skew=1.2, duration=1.0, seed=seed))


NO_SLEEP = lambda seconds: None  # noqa: E731


class _Run:
    """One full chaos scenario; built twice to assert determinism."""

    EPOCHS = 6
    KILL_AFTER = 1     # stop s1 once this many epochs completed
    RESTART_AFTER = 3  # restart s1 once this many epochs completed

    def __init__(self, seed=1234):
        self.agents = {name: make_agent(name) for name in ("s0", "s1", "s2")}
        plan = FaultPlan(drop_accept=0.30)
        self.proxies = {
            name: FaultyProxy(agent.address, plan=plan,
                              seed=seed + i).start()
            for i, (name, agent) in enumerate(self.agents.items())
        }
        self.slept = []
        self.coordinator = RemoteCoordinator(
            {name: proxy.address for name, proxy in self.proxies.items()},
            sketch_factory=factory,
            retry=RetryPolicy(max_attempts=8, base_delay=0.01, seed=seed),
            health=HealthTracker(self.agents, suspect_after=1, fail_after=1,
                                 probe_every=1),
            sleep=lambda s: self.slept.append(round(s, 9)))

    def close(self):
        self.coordinator.close()
        for proxy in self.proxies.values():
            proxy.stop()
        for agent in self.agents.values():
            agent.stop()

    def execute(self):
        """Drive the scenario; returns the reports."""
        reports = []
        s1_port = self.agents["s1"].address[1]
        fed = 0
        for epoch in range(self.EPOCHS):
            if epoch == self.RESTART_AFTER:
                self.agents["s1"] = make_agent("s1", port=s1_port)
            s1_alive = not (self.KILL_AFTER <= epoch < self.RESTART_AFTER)
            for name, agent in self.agents.items():
                if name == "s1" and not s1_alive:
                    continue
                agent.switch.process_trace(epoch_feed(seed=1000 + epoch))
                fed += 1
            reports.append(self.coordinator.run_epoch())
            if epoch + 1 == self.KILL_AFTER:
                self.agents["s1"].stop()
        self.total_fed_feeds = fed
        return reports


class TestAcceptanceScenario:
    def test_epochs_survive_drops_and_a_crash(self):
        run = _Run()
        try:
            reports = run.execute()
        finally:
            run.close()

        feed_packets = len(epoch_feed(seed=1000))
        # Every epoch completed and its accounting is exact: each
        # successful poll covers precisely the feeds since that switch's
        # last successful poll, so totals are conserved — switch loss
        # narrows coverage, it never silently drops or double-counts.
        assert len(reports) == _Run.EPOCHS
        total_covered = sum(r["coverage"]["packets_covered"]
                            for r in reports)
        covered_feeds = total_covered / feed_packets
        assert covered_feeds == int(covered_feeds)
        assert covered_feeds <= run.total_fed_feeds

        # Epoch 0: everything healthy (retries possible, failures not).
        first = reports[0]["coverage"]
        assert first["switches_polled"] == 3
        assert first["packets_covered"] == 3 * feed_packets

        # The killed switch was auto-marked failed while down...
        down = [r["coverage"] for r in reports[_Run.KILL_AFTER:
                                               _Run.RESTART_AFTER]]
        assert any("s1" in c["lost"] for c in down)
        assert all("s1" in c["failed"] for c in down)
        assert all(c["switches_polled"] == 2 for c in down)
        assert all(c["packets_covered"] == 2 * feed_packets for c in down)

        # ...and recovered by a probe after the restart.
        recovered_at = next(i for i, r in enumerate(reports)
                            if "s1" in r["coverage"]["recovered"])
        assert recovered_at >= _Run.RESTART_AFTER
        last = reports[-1]["coverage"]
        assert last["failed"] == []
        assert last["switches_polled"] == 3

        # 30% connection drops burned retries, and they were reported.
        assert sum(r["coverage"]["retries"] for r in reports) > 0
        for report in reports:
            coverage = report["coverage"]
            assert coverage["retries"] >= 0
            assert (coverage["switches_polled"]
                    + len(coverage["failed"]) == 3)

    def test_scenario_is_deterministic(self):
        """Same seeds -> identical coverage, retries, and backoff sleeps."""
        outcomes = []
        for _ in range(2):
            run = _Run()
            try:
                reports = run.execute()
            finally:
                run.close()
            outcomes.append((
                [r["coverage"]["packets_covered"] for r in reports],
                [r["coverage"]["retries"] for r in reports],
                [r["coverage"]["polled"] for r in reports],
                run.slept,
            ))
        assert outcomes[0] == outcomes[1]


class TestCorruptionAndTruncation:
    @pytest.fixture()
    def agent(self):
        agent = make_agent("s0")
        yield agent
        agent.stop()

    def _poll_through(self, agent, plan, seed, polls=20):
        """Poll repeatedly through a faulty proxy; return the client."""
        with FaultyProxy(agent.address, plan=plan, seed=seed) as proxy:
            host, port = proxy.address
            client = RemoteSwitchClient(
                host, port, timeout=5.0,
                retry=RetryPolicy(max_attempts=12, base_delay=0.0,
                                  jitter=0.0),
                sleep=NO_SLEEP)
            with client:
                for _ in range(polls):
                    sketch = client.poll("univmon")
                    assert sketch.total_weight >= 0
            return client

    def test_survives_corrupted_frames(self, agent, tiny_trace):
        """Byte flips anywhere in the stream are caught by the CRC and
        retried — never surfaced as a bogus sketch or a numpy traceback."""
        agent.switch.process_trace(tiny_trace)
        client = self._poll_through(
            agent, FaultPlan(corrupt_chunk=0.10), seed=7)
        assert client.counters["retries"] > 0

    def test_survives_truncated_frames(self, agent, tiny_trace):
        """Frames cut mid-payload surface as short reads and are retried."""
        agent.switch.process_trace(tiny_trace)
        client = self._poll_through(
            agent, FaultPlan(truncate_chunk=0.15), seed=11)
        assert client.counters["retries"] > 0

    def test_survives_mid_stream_resets(self, agent, tiny_trace):
        agent.switch.process_trace(tiny_trace)
        client = self._poll_through(
            agent, FaultPlan(drop_chunk=0.15), seed=13)
        assert client.counters["retries"] > 0

    def test_fail_fast_policy_reports_transport_error(self, agent):
        """With retries disabled, a dropped connection surfaces cleanly."""
        with FaultyProxy(agent.address, plan=FaultPlan(drop_accept=1.0),
                         seed=3) as proxy:
            host, port = proxy.address
            with RemoteSwitchClient(
                    host, port, timeout=5.0,
                    retry=RetryPolicy(max_attempts=1),
                    sleep=NO_SLEEP) as client:
                with pytest.raises(TransportError):
                    client.ping()
