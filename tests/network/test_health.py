"""Tests for the failure-detection state machine (no sockets)."""

import pytest

from repro.controlplane.rpc import RetryPolicy
from repro.errors import ConfigurationError
from repro.network.health import HealthState, HealthTracker


def make(**kwargs):
    defaults = dict(suspect_after=1, fail_after=3, probe_every=2)
    defaults.update(kwargs)
    return HealthTracker(["s0", "s1"], **defaults)


def probes_over(tracker, name, epochs):
    """Drive a dead switch for ``epochs`` ticks, counting probes sent
    (every due probe fails — the switch never comes back)."""
    sent = 0
    for _ in range(epochs):
        if tracker.should_probe(name):
            sent += 1
            tracker.record_failure(name)
        tracker.tick()
    return sent


class TestConfiguration:
    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            make(suspect_after=0)
        with pytest.raises(ConfigurationError):
            make(suspect_after=3, fail_after=2)
        with pytest.raises(ConfigurationError):
            make(probe_every=0)
        with pytest.raises(ConfigurationError):
            HealthTracker([])

    def test_unknown_switch_rejected_everywhere(self):
        tracker = make()
        for method in (tracker.record_success, tracker.record_failure,
                       tracker.state, tracker.is_live, tracker.should_probe):
            with pytest.raises(ConfigurationError):
                method("nope")


class TestStateMachine:
    def test_starts_healthy(self):
        tracker = make()
        assert tracker.state("s0") is HealthState.HEALTHY
        assert tracker.live() == ["s0", "s1"]
        assert tracker.failed() == []

    def test_failure_escalation(self):
        tracker = make(suspect_after=1, fail_after=3)
        assert tracker.record_failure("s0") is HealthState.SUSPECT
        assert tracker.record_failure("s0") is HealthState.SUSPECT
        assert tracker.record_failure("s0") is HealthState.FAILED
        assert not tracker.is_live("s0")
        assert tracker.failed() == ["s0"]
        # The other switch is untouched.
        assert tracker.state("s1") is HealthState.HEALTHY

    def test_success_resets_streak(self):
        tracker = make(fail_after=2)
        tracker.record_failure("s0")
        tracker.record_success("s0")
        assert tracker.state("s0") is HealthState.HEALTHY
        # The streak restarted: one more failure is SUSPECT, not FAILED.
        assert tracker.record_failure("s0") is HealthState.SUSPECT

    def test_recovery_counts(self):
        tracker = make(fail_after=1)
        tracker.record_failure("s0")
        assert tracker.state("s0") is HealthState.FAILED
        tracker.record_success("s0")
        assert tracker.state("s0") is HealthState.HEALTHY
        assert tracker.snapshot()["s0"]["recoveries"] == 1


class TestProbing:
    def test_probe_cadence_is_epoch_driven(self):
        tracker = make(fail_after=1, probe_every=2)
        tracker.record_failure("s0")
        # Just failed (epochs_failed == 0): due immediately.
        assert tracker.should_probe("s0")
        tracker.tick()
        assert not tracker.should_probe("s0")
        tracker.tick()
        assert tracker.should_probe("s0")

    def test_healthy_switch_never_probe_due(self):
        tracker = make()
        assert not tracker.should_probe("s0")
        tracker.tick()
        assert not tracker.should_probe("s0")


class TestProbeBackoff:
    """With a ``probe_policy``, dead switches cost O(log) probes, not
    one per epoch — the satellite fix for the probe storm."""

    POLICY = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0,
                         max_delay=8.0, jitter=0.0, seed=0)

    def dead(self, **kwargs):
        tracker = make(fail_after=1, **kwargs)
        tracker.record_failure("s0")
        return tracker

    def test_backoff_schedule_is_exponential(self):
        # Gaps 1, 2, 4, 8, 8, ... -> probes due at ticks 1, 3, 7, 15,
        # 23, 31, 39: seven probes over 40 epochs.
        tracker = self.dead(probe_policy=self.POLICY)
        due = []
        for epoch in range(40):
            if tracker.should_probe("s0"):
                due.append(epoch)
                tracker.record_failure("s0")
            tracker.tick()
        assert due == [1, 3, 7, 15, 23, 31, 39]

    def test_probe_storm_is_bounded(self):
        legacy = probes_over(self.dead(probe_every=1), "s0", 40)
        backed_off = probes_over(
            self.dead(probe_policy=self.POLICY), "s0", 40)
        assert legacy == 40
        assert backed_off == 7

    def test_seeded_jitter_is_deterministic(self):
        runs = []
        for _ in range(2):
            tracker = self.dead(probe_policy=RetryPolicy(
                base_delay=1.0, multiplier=2.0, max_delay=8.0,
                jitter=0.25, seed=42))
            due = []
            for epoch in range(40):
                if tracker.should_probe("s0"):
                    due.append(epoch)
                    tracker.record_failure("s0")
                tracker.tick()
            runs.append(due)
        assert runs[0] == runs[1]
        assert 0 < len(runs[0]) < 40  # jitter never defeats the backoff

    def test_recovery_resets_the_backoff(self):
        tracker = self.dead(probe_policy=self.POLICY)
        # Burn through a few failed probes: attempts grow, gaps widen.
        probes_over(tracker, "s0", 10)
        assert tracker.snapshot()["s0"]["probe_attempts"] > 1
        tracker.record_success("s0")
        assert tracker.snapshot()["s0"]["probe_attempts"] == 0
        # The next FAILED transition starts again at the base gap.
        tracker.record_failure("s0")
        assert tracker.should_probe("s0") is False
        tracker.tick()
        assert tracker.should_probe("s0")

    def test_fixed_cadence_unchanged_without_policy(self):
        # Legacy behaviour is preserved: probe_every still governs.
        tracker = self.dead(probe_every=3)
        due = [e for e in range(1, 10)
               if (tracker.tick() or tracker.should_probe("s0"))]
        assert due == [3, 6, 9]
