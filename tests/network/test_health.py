"""Tests for the failure-detection state machine (no sockets)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.health import HealthState, HealthTracker


def make(**kwargs):
    defaults = dict(suspect_after=1, fail_after=3, probe_every=2)
    defaults.update(kwargs)
    return HealthTracker(["s0", "s1"], **defaults)


class TestConfiguration:
    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            make(suspect_after=0)
        with pytest.raises(ConfigurationError):
            make(suspect_after=3, fail_after=2)
        with pytest.raises(ConfigurationError):
            make(probe_every=0)
        with pytest.raises(ConfigurationError):
            HealthTracker([])

    def test_unknown_switch_rejected_everywhere(self):
        tracker = make()
        for method in (tracker.record_success, tracker.record_failure,
                       tracker.state, tracker.is_live, tracker.should_probe):
            with pytest.raises(ConfigurationError):
                method("nope")


class TestStateMachine:
    def test_starts_healthy(self):
        tracker = make()
        assert tracker.state("s0") is HealthState.HEALTHY
        assert tracker.live() == ["s0", "s1"]
        assert tracker.failed() == []

    def test_failure_escalation(self):
        tracker = make(suspect_after=1, fail_after=3)
        assert tracker.record_failure("s0") is HealthState.SUSPECT
        assert tracker.record_failure("s0") is HealthState.SUSPECT
        assert tracker.record_failure("s0") is HealthState.FAILED
        assert not tracker.is_live("s0")
        assert tracker.failed() == ["s0"]
        # The other switch is untouched.
        assert tracker.state("s1") is HealthState.HEALTHY

    def test_success_resets_streak(self):
        tracker = make(fail_after=2)
        tracker.record_failure("s0")
        tracker.record_success("s0")
        assert tracker.state("s0") is HealthState.HEALTHY
        # The streak restarted: one more failure is SUSPECT, not FAILED.
        assert tracker.record_failure("s0") is HealthState.SUSPECT

    def test_recovery_counts(self):
        tracker = make(fail_after=1)
        tracker.record_failure("s0")
        assert tracker.state("s0") is HealthState.FAILED
        tracker.record_success("s0")
        assert tracker.state("s0") is HealthState.HEALTHY
        assert tracker.snapshot()["s0"]["recoveries"] == 1


class TestProbing:
    def test_probe_cadence_is_epoch_driven(self):
        tracker = make(fail_after=1, probe_every=2)
        tracker.record_failure("s0")
        # Just failed (epochs_failed == 0): due immediately.
        assert tracker.should_probe("s0")
        tracker.tick()
        assert not tracker.should_probe("s0")
        tracker.tick()
        assert tracker.should_probe("s0")

    def test_healthy_switch_never_probe_due(self):
        tracker = make()
        assert not tracker.should_probe("s0")
        tracker.tick()
        assert not tracker.should_probe("s0")
