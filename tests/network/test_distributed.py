"""Tests for distributed monitoring via sketch merging."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.eval.groundtruth import GroundTruth
from repro.network.distributed import DistributedMonitor
from repro.network.topology import NetworkTopology
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=6, rows=5, width=512, heap_size=32, seed=3)


class TestConstruction:
    def test_requires_seeded_factory(self):
        unseeded = lambda: UniversalSketch(levels=4, rows=3, width=64,  # noqa
                                           heap_size=8)
        with pytest.raises(ConfigurationError):
            DistributedMonitor(NetworkTopology.line(2),
                               sketch_factory=unseeded)

    def test_requires_switches(self):
        with pytest.raises(ConfigurationError):
            DistributedMonitor(NetworkTopology(), sketch_factory=factory)

    def test_one_sketch_per_switch(self):
        mon = DistributedMonitor(NetworkTopology.star(3),
                                 sketch_factory=factory)
        assert set(mon.sketches) == {"core", "edge0", "edge1", "edge2"}


class TestNetworkWideView:
    def test_no_double_counting(self, small_trace):
        mon = DistributedMonitor(NetworkTopology.line(4),
                                 sketch_factory=factory)
        mon.process_trace(small_trace)
        merged = mon.network_sketch()
        assert merged.total_weight == len(small_trace)

    def test_network_sketch_equals_single_switch_sketch(self, small_trace):
        """Distributing then merging must equal sketching centrally —
        the exactness that linearity buys."""
        mon = DistributedMonitor(NetworkTopology.star(3),
                                 sketch_factory=factory)
        mon.process_trace(small_trace)
        central = factory()
        central.update_array(small_trace.key_array(src_ip_key))
        merged = mon.network_sketch()
        for lc, lm in zip(central.levels, merged.levels):
            assert np.array_equal(lc.sketch.table, lm.sketch.table)

    def test_network_wide_heavy_hitters(self, small_trace):
        mon = DistributedMonitor(NetworkTopology.line(3),
                                 sketch_factory=factory)
        mon.process_trace(small_trace)
        truth = GroundTruth(small_trace, src_ip_key)
        true_keys = truth.heavy_hitter_keys(0.02)
        reported = {k for k, _ in mon.heavy_hitters(0.02)}
        assert len(true_keys - reported) <= max(1, len(true_keys) // 4)

    def test_cardinality_and_entropy_queries(self, small_trace):
        mon = DistributedMonitor(NetworkTopology.line(2),
                                 sketch_factory=factory)
        mon.process_trace(small_trace)
        true_distinct = small_trace.distinct(src_ip_key)
        assert abs(mon.cardinality() - true_distinct) / true_distinct < 0.5
        assert mon.entropy() > 0

    def test_process_at_unknown_switch(self, tiny_trace):
        mon = DistributedMonitor(NetworkTopology.line(2),
                                 sketch_factory=factory)
        with pytest.raises(ConfigurationError):
            mon.process_at("nope", tiny_trace)


class TestLoadBalance:
    def test_load_reported_per_switch(self, small_trace):
        mon = DistributedMonitor(NetworkTopology.star(4),
                                 sketch_factory=factory)
        mon.process_trace(small_trace)
        load = mon.load_per_switch()
        assert sum(load.values()) == len(small_trace)

    def test_partition_responsibility_drops_foreign_keys(self, small_trace):
        mon = DistributedMonitor(NetworkTopology.line(3),
                                 sketch_factory=factory,
                                 partition_responsibility=True)
        # Feed the WHOLE trace to every switch (transit traffic); with
        # partitioning, each key is still counted exactly once per packet.
        for switch in mon.topology.switches:
            mon.process_at(switch, small_trace)
        merged = mon.network_sketch()
        assert merged.total_weight == len(small_trace)

    def test_memory_sums_switches(self):
        mon = DistributedMonitor(NetworkTopology.line(3),
                                 sketch_factory=factory)
        assert mon.memory_bytes() == 3 * factory().memory_bytes()
