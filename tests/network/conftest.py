"""Network-suite fixtures: a per-test watchdog so no hung socket can
wedge CI (the chaos tests intentionally drop/stall connections)."""

import os
import signal

import pytest

_TIMEOUT_SECONDS = int(os.environ.get("REPRO_NETWORK_TEST_TIMEOUT", "30"))


@pytest.fixture(autouse=True)
def _network_test_timeout():
    """Fail any test in this package that runs longer than the timeout."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no watchdog
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"network test exceeded {_TIMEOUT_SECONDS}s watchdog "
            f"(hung socket?)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
