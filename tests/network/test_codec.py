"""Tests for the delta/compressed sketch codec (reject, never corrupt)."""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import CodecError, StaleBaseError
from repro.network.codec import (
    FRAME_DELTA,
    FRAME_FULL,
    NO_BASE,
    DeltaDecoder,
    DeltaEncoder,
    frame_info,
)
from repro.core.universal import UniversalSketch

_HEADER = struct.Struct("<4sBBqqII")


def factory():
    return UniversalSketch(levels=4, rows=2, width=64, heap_size=8, seed=11)


def fill(sketch, seed=0, packets=200, universe=500):
    rng = np.random.default_rng(seed)
    sketch.update_array(
        rng.integers(0, universe, size=packets).astype(np.uint64))
    return sketch


def assert_equal_state(a, b):
    assert a.packets == b.packets
    for la, lb in zip(a.levels, b.levels):
        assert la.packets == lb.packets
        assert la.weight == lb.weight
        assert np.array_equal(la.sketch.table, lb.sketch.table)
        assert sorted(la.topk.items()) == sorted(lb.topk.items())


def reframe(frame, *, ftype=None, flags=None, epoch=None, base_epoch=None,
            body=None):
    """Rebuild a frame with selected header fields (CRC recomputed, so
    the *decoder's semantic checks* are what reject it)."""
    magic, t, f, e, b, length, crc = _HEADER.unpack(frame[:_HEADER.size])
    payload = frame[_HEADER.size:] if body is None else body
    t = t if ftype is None else ftype
    f = f if flags is None else flags
    e = e if epoch is None else epoch
    b = b if base_epoch is None else base_epoch
    header = _HEADER.pack(magic, t, f, e, b, len(payload),
                          zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def delta_exchange(n_epochs=3):
    """Encoder/decoder pair driven on a *cumulative* counter stream so
    real DELTA frames engage (a sealed-and-reset stream falls back to
    full frames; see DESIGN.md §11)."""
    enc = DeltaEncoder()
    dec = DeltaDecoder()
    cumulative = factory()
    frames = []
    for epoch in range(n_epochs):
        fill(cumulative, seed=epoch, packets=50)
        frame = enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)
        frames.append(frame)
        dec.decode(frame)
    return enc, dec, cumulative, frames


class TestRoundTrips:
    def test_full_frame_round_trip(self):
        enc, dec = DeltaEncoder(), DeltaDecoder()
        sketch = fill(factory())
        got = dec.decode(enc.encode(sketch, base_epoch=NO_BASE))
        assert_equal_state(sketch, got)

    def test_empty_sketch_round_trip(self):
        enc, dec = DeltaEncoder(), DeltaDecoder()
        got = dec.decode(enc.encode(factory(), base_epoch=NO_BASE))
        assert_equal_state(factory(), got)

    def test_delta_frames_engage_on_cumulative_stream(self):
        enc, dec, cumulative, frames = delta_exchange(4)
        kinds = [frame_info(f).kind for f in frames]
        assert kinds[0] == "full"
        assert "delta" in kinds[1:]
        assert_equal_state(cumulative, dec.decode(
            enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)))

    def test_sealed_stream_falls_back_to_full(self):
        # Per-epoch sealed sketches share no baseline with the previous
        # epoch, so the delta (which must also revert the old counters)
        # loses to the compressed full frame; the encoder's per-frame
        # minimum picks FULL.  This is a property, not a bug.
        enc, dec = DeltaEncoder(), DeltaDecoder()
        for epoch in range(4):
            frame = enc.encode(fill(factory(), seed=epoch),
                               base_epoch=dec.base_epoch)
            dec.decode(frame)
            assert frame_info(frame).kind == "full"

    def test_stale_ack_downgrades_to_full(self):
        enc = DeltaEncoder()
        enc.encode(fill(factory(), seed=0), base_epoch=NO_BASE)
        frame = enc.encode(fill(factory(), seed=1), base_epoch=999)
        assert frame_info(frame).kind == "full"

    def test_decoded_sketch_is_independent_of_decoder_state(self):
        enc, dec = DeltaEncoder(), DeltaDecoder()
        got = dec.decode(enc.encode(fill(factory()), base_epoch=NO_BASE))
        got.update(7)  # mutating the result must not corrupt the base
        again = dec.decode(enc.encode(fill(factory()),
                                      base_epoch=dec.base_epoch))
        assert_equal_state(fill(factory()), again)

    def test_raw_mode_never_stores_a_base(self):
        enc = DeltaEncoder(delta=False, compress=False)
        for epoch in range(3):
            frame = enc.encode(fill(factory(), seed=epoch),
                               base_epoch=epoch - 1)
            assert frame_info(frame).kind == "full"
            assert not frame_info(frame).compressed

    def test_compression_shrinks_sparse_sketches(self):
        raw = DeltaEncoder(delta=False, compress=False)
        packed = DeltaEncoder(delta=False, compress=True)
        sketch = fill(factory(), packets=30)
        assert len(packed.encode(sketch.copy())) \
            < len(raw.encode(sketch)) / 3


class TestFraming:
    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError):
            frame_info(b"UMF1\x01")

    def test_bad_magic_rejected(self):
        frame = DeltaEncoder().encode(factory())
        with pytest.raises(CodecError):
            frame_info(b"XXXX" + frame[4:])

    def test_corrupt_payload_rejected_by_crc(self):
        frame = bytearray(DeltaEncoder().encode(fill(factory())))
        frame[-1] ^= 0xFF
        with pytest.raises(CodecError):
            DeltaDecoder().decode(bytes(frame))

    def test_unknown_type_and_flags_rejected(self):
        frame = DeltaEncoder().encode(fill(factory()))
        with pytest.raises(CodecError):
            DeltaDecoder().decode(reframe(frame, ftype=99))
        with pytest.raises(CodecError):
            DeltaDecoder().decode(reframe(frame, flags=0x80))

    def test_length_mismatch_rejected(self):
        frame = DeltaEncoder().encode(fill(factory()))
        with pytest.raises(CodecError):
            frame_info(frame + b"extra")

    def test_truncation_at_every_offset_rejected(self):
        enc, dec, _, frames = delta_exchange()
        delta_frame = next(f for f in frames
                           if frame_info(f).kind == "delta")
        fresh_enc, _, _, _ = delta_exchange()
        for cut in range(len(delta_frame) - 1):
            _, dec2, _, _ = delta_exchange()
            with pytest.raises(CodecError):
                dec2.decode(delta_frame[:cut])


class TestHostileDeltas:
    """Hand-corrupted DELTA bodies: every reject leaves state intact."""

    def hostile(self, mutate):
        """Run a delta exchange, mutate the *next* delta body, and
        return (decoder, corrupt frame, decoder state before)."""
        enc, dec, cumulative, _ = delta_exchange()
        fill(cumulative, seed=99, packets=40)
        frame = enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)
        info = frame_info(frame)
        assert info.kind == "delta", "fixture must produce a real delta"
        body = bytearray(zlib.decompress(frame[_HEADER.size:])
                         if info.compressed else frame[_HEADER.size:])
        body = mutate(body, dec)
        corrupt = reframe(frame, flags=0, body=bytes(body))
        return dec, corrupt, dec.base_epoch

    def assert_rejected_cleanly(self, mutate, exc=CodecError):
        dec, corrupt, epoch_before = self.hostile(mutate)
        with pytest.raises(exc):
            dec.decode(corrupt)
        assert dec.base_epoch == epoch_before  # state untouched

    def test_out_of_range_index_rejected(self):
        def mutate(body, dec):
            # geometry(24) + packets(8) + level header(16) -> nchanged u32
            offset = 24 + 8 + 16
            (nchanged,) = struct.unpack_from("<I", body, offset)
            assert nchanged > 0
            struct.pack_into("<I", body, offset + 4, 1 << 30)
            return body
        self.assert_rejected_cleanly(mutate)

    def test_duplicate_indices_rejected(self):
        def mutate(body, dec):
            offset = 24 + 8 + 16
            (nchanged,) = struct.unpack_from("<I", body, offset)
            assert nchanged >= 2
            (first,) = struct.unpack_from("<I", body, offset + 4)
            struct.pack_into("<I", body, offset + 8, first)
            return body
        self.assert_rejected_cleanly(mutate)

    def test_overflowing_delta_rejected(self):
        def mutate(body, dec):
            offset = 24 + 8 + 16
            (nchanged,) = struct.unpack_from("<I", body, offset)
            deltas_at = offset + 4 + 4 * nchanged
            struct.pack_into("<q", body, deltas_at,
                             np.iinfo(np.int64).max)
            return body
        self.assert_rejected_cleanly(mutate)

    def test_changed_count_above_level_size_rejected(self):
        def mutate(body, dec):
            struct.pack_into("<I", body, 24 + 8 + 16, 1 << 31)
            return body
        self.assert_rejected_cleanly(mutate)

    def test_stale_base_epoch_rejected(self):
        enc, dec, cumulative, _ = delta_exchange()
        frame = enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)
        assert frame_info(frame).kind == "delta"
        fresh = DeltaDecoder()
        with pytest.raises(StaleBaseError):
            fresh.decode(frame)
        assert fresh.base_epoch == NO_BASE

    def test_non_monotonic_epoch_rejected(self):
        enc, dec, cumulative, _ = delta_exchange()
        frame = enc.encode(cumulative.copy(), base_epoch=dec.base_epoch)
        assert frame_info(frame).kind == "delta"
        epoch_before = dec.base_epoch
        with pytest.raises(StaleBaseError):
            dec.decode(reframe(frame, epoch=epoch_before - 1))
        assert dec.base_epoch == epoch_before

    def test_geometry_mismatch_rejected(self):
        def mutate(body, dec):
            struct.pack_into("<I", body, 8, 63)  # width 64 -> 63
            return body
        self.assert_rejected_cleanly(mutate)

    def test_heap_count_above_capacity_rejected(self):
        def mutate(body, dec):
            # walk to level 0's heap count field
            offset = 24 + 8 + 16
            (nchanged,) = struct.unpack_from("<I", body, offset)
            heap_at = offset + 4 + 12 * nchanged
            struct.pack_into("<I", body, heap_at, 1 << 20)
            return body
        self.assert_rejected_cleanly(mutate)

    def test_full_frame_carrying_garbage_rejected(self):
        enc, dec = DeltaEncoder(), DeltaDecoder()
        frame = enc.encode(fill(factory()))
        with pytest.raises(CodecError):
            dec.decode(reframe(frame, flags=0, body=b"UMS1garbage"))
        assert dec.base_epoch == NO_BASE

    def test_zlib_bomb_bounded(self):
        # 128 MiB of zeros compresses tiny; decompression must stop at
        # the payload ceiling instead of ballooning.
        bomb = zlib.compress(b"\x00" * (128 * 1024 * 1024), 9)
        header = _HEADER.pack(b"UMF1", FRAME_FULL, 1, 0, NO_BASE,
                              len(bomb), zlib.crc32(bomb) & 0xFFFFFFFF)
        with pytest.raises(CodecError):
            DeltaDecoder().decode(header + bomb)

    def test_trailing_bytes_rejected(self):
        def mutate(body, dec):
            return body + b"\x00"
        self.assert_rejected_cleanly(mutate)

    def test_recovery_after_reject_via_full_repoll(self):
        dec, corrupt, _ = self.hostile(
            lambda body, dec: body + b"\x00")
        with pytest.raises(CodecError):
            dec.decode(corrupt)
        dec.reset()
        enc = DeltaEncoder()
        sketch = fill(factory(), seed=123)
        got = dec.decode(enc.encode(sketch, base_epoch=NO_BASE))
        assert_equal_state(sketch, got)
