"""Tests for the fault-tolerant remote coordinator (real sockets)."""

import random

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.controlplane.apps.cardinality import CardinalityApp
from repro.controlplane.rpc import RemoteSwitchClient, RetryPolicy, SwitchAgent
from repro.network.health import HealthState, HealthTracker
from repro.network.remote import RemoteCoordinator
from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=5, rows=3, width=256, heap_size=16, seed=3)


def make_agent(name="s0", port=0):
    switch = MonitoredSwitch(name)
    switch.attach("univmon", factory, src_ip_key)
    return SwitchAgent(switch, port=port).start()


NO_SLEEP = lambda seconds: None  # noqa: E731
FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def make_coordinator(agents, **kwargs):
    kwargs.setdefault("sketch_factory", factory)
    kwargs.setdefault("retry", FAST)
    kwargs.setdefault("sleep", NO_SLEEP)
    kwargs.setdefault("health",
                      HealthTracker(agents, suspect_after=1, fail_after=1))
    return RemoteCoordinator(
        {name: agent.address for name, agent in agents.items()}, **kwargs)


@pytest.fixture()
def two_agents():
    agents = {"s0": make_agent("s0"), "s1": make_agent("s1")}
    yield agents
    for agent in agents.values():
        agent.stop()


class TestConfiguration:
    def test_needs_agents(self):
        with pytest.raises(ConfigurationError):
            RemoteCoordinator({})

    def test_needs_seeded_factory(self, two_agents):
        with pytest.raises(ConfigurationError):
            make_coordinator(
                two_agents,
                sketch_factory=lambda: UniversalSketch(levels=3, rows=3,
                                                       width=64, seed=None))

    def test_duplicate_app_rejected(self, two_agents):
        with make_coordinator(two_agents) as coordinator:
            coordinator.register(CardinalityApp())
            with pytest.raises(ConfigurationError):
                coordinator.register(CardinalityApp())


class TestHappyPath:
    def test_full_coverage_epoch(self, two_agents, tiny_trace):
        for agent in two_agents.values():
            agent.switch.process_trace(tiny_trace)
        with make_coordinator(two_agents) as coordinator:
            coordinator.register(CardinalityApp())
            report = coordinator.run_epoch()
        coverage = report["coverage"]
        assert coverage["switches_polled"] == 2
        assert coverage["lost"] == [] and coverage["failed"] == []
        assert coverage["packets_covered"] == 2 * len(tiny_trace)
        assert report.packets == 2 * len(tiny_trace)
        assert coverage["retries"] == 0
        assert report["cardinality"]["distinct"] > 0

    def test_epoch_indices_autoincrement(self, two_agents):
        with make_coordinator(two_agents) as coordinator:
            reports = coordinator.run_epochs(3)
        assert [r.epoch_index for r in reports] == [0, 1, 2]

    def test_poll_resets_between_epochs(self, two_agents, tiny_trace):
        with make_coordinator(two_agents) as coordinator:
            two_agents["s0"].switch.process_trace(tiny_trace)
            first = coordinator.run_epoch()
            second = coordinator.run_epoch()
        assert first["coverage"]["packets_covered"] == len(tiny_trace)
        assert second["coverage"]["packets_covered"] == 0


class TestDegradation:
    def test_dead_agent_auto_marked_failed(self, two_agents, tiny_trace):
        two_agents["s0"].switch.process_trace(tiny_trace)
        with make_coordinator(two_agents) as coordinator:
            coordinator.register(CardinalityApp())
            two_agents["s1"].stop()
            report = coordinator.run_epoch()
        coverage = report["coverage"]
        assert coverage["lost"] == ["s1"]
        assert coverage["failed"] == ["s1"]
        assert coverage["switches_polled"] == 1
        assert coverage["packets_covered"] == len(tiny_trace)
        # Retries were burned on the dead switch and reported.
        assert coverage["retries"] == FAST.max_attempts - 1
        assert coverage["transport_failures"] == 1
        # Apps still run on the surviving coverage.
        assert report["cardinality"]["distinct"] > 0

    def test_failed_switch_skipped_not_retried(self, two_agents):
        with make_coordinator(
                two_agents,
                health=HealthTracker(two_agents, fail_after=1,
                                     probe_every=3)) as coordinator:
            two_agents["s1"].stop()
            coordinator.run_epoch()  # marks s1 FAILED (epochs_failed -> 1)
            before = coordinator.transport_counters()["calls"]
            report = coordinator.run_epoch()  # probe not due: s1 skipped
            after = coordinator.transport_counters()["calls"]
        assert report["coverage"]["switches_polled"] == 1
        assert after - before == 1  # only s0 was contacted at all

    def test_all_agents_dead_yields_empty_epoch(self, two_agents):
        with make_coordinator(two_agents) as coordinator:
            coordinator.register(CardinalityApp())
            for agent in two_agents.values():
                agent.stop()
            report = coordinator.run_epoch()
        assert report["coverage"]["switches_polled"] == 0
        assert report["coverage"]["packets_covered"] == 0
        assert "cardinality" not in report.results


class TestRecovery:
    def test_restarted_agent_is_probed_back(self, two_agents, tiny_trace):
        with make_coordinator(two_agents) as coordinator:
            host, port = two_agents["s1"].address
            two_agents["s1"].stop()
            report = coordinator.run_epoch()
            assert report["coverage"]["failed"] == ["s1"]

            two_agents["s1"] = make_agent("s1", port=port)
            two_agents["s1"].switch.process_trace(tiny_trace)
            report = coordinator.run_epoch()
        coverage = report["coverage"]
        assert coverage["recovered"] == ["s1"]
        assert coverage["failed"] == []
        assert coverage["switches_polled"] == 2
        assert coverage["packets_covered"] == len(tiny_trace)
        assert coverage["health"]["s1"]["recoveries"] == 1

    def test_probe_is_single_shot(self, two_agents):
        """A still-dead FAILED switch costs one connect, not a retry storm."""
        with make_coordinator(two_agents) as coordinator:
            two_agents["s1"].stop()
            coordinator.run_epoch()
            retries_before = coordinator.transport_counters()["retries"]
            coordinator.run_epoch()  # probe_every=1: ping probe fails fast
            retries_after = coordinator.transport_counters()["retries"]
        assert retries_after == retries_before


class TestDeterministicBackoff:
    def test_retry_delays_follow_seeded_policy(self):
        """The slept delays are exactly the policy's seeded schedule."""
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                             max_delay=10.0, jitter=0.25, seed=42)
        slept = []
        client = RemoteSwitchClient("127.0.0.1", 1, retry=policy,
                                    sleep=slept.append, timeout=0.2)
        with pytest.raises(TransportError):
            client._call("PING")

        rng = random.Random(42)
        expected = [policy.backoff(i, rng) for i in range(3)]
        assert slept == expected
        assert client.counters["retries"] == 3
        assert client.counters["failures"] == 1

    def test_two_clients_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=7)
        schedules = []
        for _ in range(2):
            slept = []
            client = RemoteSwitchClient("127.0.0.1", 1, retry=policy,
                                        sleep=slept.append, timeout=0.2)
            with pytest.raises(TransportError):
                client.ping()
            schedules.append(slept)
        assert schedules[0] == schedules[1]


class TestMetricsHygiene:
    def test_stale_per_agent_series_cleared_on_construction(self, two_agents):
        """Regression: a rebuilt coordinator with a different agent set
        must not leave the old coordinator's per-switch poll timings in
        the registry (they read as live series for absent agents)."""
        from repro.obs.metrics import MetricsRegistry, use_registry
        registry = MetricsRegistry()
        with use_registry(registry):
            with make_coordinator(two_agents) as coordinator:
                coordinator.run_epoch()
            assert registry.get("univmon_remote_poll_seconds",
                                switch="s0") is not None
            assert registry.get("univmon_remote_poll_seconds",
                                switch="s1") is not None

            survivor = {"s0": two_agents["s0"]}
            with make_coordinator(
                    survivor,
                    health=HealthTracker(survivor,
                                         fail_after=1)) as coordinator:
                # construction alone must have dropped the stale series
                assert registry.get("univmon_remote_poll_seconds",
                                    switch="s1") is None
                coordinator.run_epoch()
            assert registry.get("univmon_remote_poll_seconds",
                                switch="s0") is not None
            assert registry.get("univmon_remote_poll_seconds",
                                switch="s1") is None


class TestDeltaTransfer:
    def test_delta_transfer_matches_raw(self, two_agents, tiny_trace):
        for agent in two_agents.values():
            agent.switch.process_trace(tiny_trace)
        with make_coordinator(two_agents,
                              transfer="delta") as coordinator:
            coordinator.register(CardinalityApp())
            report = coordinator.run_epoch()
        coverage = report["coverage"]
        assert coverage["switches_polled"] == 2
        assert coverage["packets_covered"] == 2 * len(tiny_trace)
        assert report["cardinality"]["distinct"] > 0

    def test_transfer_mode_validated(self, two_agents):
        with pytest.raises(ConfigurationError):
            make_coordinator(two_agents, transfer="carrier-pigeon")


class TestHealthStates:
    def test_suspect_before_failed(self, two_agents):
        tracker = HealthTracker(two_agents, suspect_after=1, fail_after=2)
        with make_coordinator(two_agents, health=tracker) as coordinator:
            two_agents["s1"].stop()
            coordinator.run_epoch()
            assert tracker.state("s1") is HealthState.SUSPECT
            coordinator.run_epoch()
            assert tracker.state("s1") is HealthState.FAILED
