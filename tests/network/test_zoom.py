"""Tests for adaptive zoom-in monitoring."""

import numpy as np
import pytest

from repro.dataplane.trace import Trace
from repro.network.zoom import LADDER, ZoomMonitor, _truncate_scalar
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=5, rows=3, width=512, heap_size=32, seed=4)


def trace_from_sources(sources):
    n = len(sources)
    src = np.asarray(sources, dtype=np.uint32)
    return Trace(
        np.linspace(0, 1, n),
        src,
        np.full(n, 0x0A000001, dtype=np.uint32),
        np.full(n, 1000, dtype=np.uint16),
        np.full(n, 80, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8),
    )


HOT_PREFIX = 0x0B000000  # 11.0.0.0/8 will be the hot region


def hot_trace(count=3000, cold=500, seed=0):
    rng = np.random.default_rng(seed)
    hot = HOT_PREFIX | rng.integers(0, 1 << 24, size=count)
    cold_srcs = rng.integers(0x20000000, 0xDF000000, size=cold)
    return trace_from_sources(np.concatenate([hot, cold_srcs]))


class TestTruncation:
    def test_truncate_scalar(self):
        assert _truncate_scalar(0x0B123456, 8) == 0x0B000000
        assert _truncate_scalar(0x0B123456, 16) == 0x0B120000
        assert _truncate_scalar(0x0B123456, 32) == 0x0B123456


class TestGranularity:
    def test_starts_coarse(self):
        mon = ZoomMonitor(sketch_factory=factory)
        assert mon.granularity_of(0x0B123456) == 8
        assert mon.monitored_regions() == []

    def test_initial_keys_are_slash8(self):
        mon = ZoomMonitor(sketch_factory=factory)
        keys = mon.keys_for(hot_trace())
        assert set(int(k) & 0x00FFFFFF for k in np.unique(keys)) == {0}

    def test_zooms_into_hot_prefix(self):
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3)
        mon.process_epoch(hot_trace(seed=1))
        assert (HOT_PREFIX, 8) in mon.refined
        assert mon.granularity_of(HOT_PREFIX | 0x123456) == 16

    def test_second_epoch_keys_are_finer_in_hot_region(self):
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3)
        mon.process_epoch(hot_trace(seed=2))
        keys = mon.keys_for(hot_trace(seed=3))
        hot_keys = {int(k) for k in np.unique(keys)
                    if (int(k) >> 24) == 0x0B}
        # The hot /8 now appears as many /16 keys, not one /8 key.
        assert len(hot_keys) > 10

    def test_progressive_zoom_descends_ladder(self):
        """If one /16 inside the hot /8 stays hot, zoom reaches /24."""
        rng = np.random.default_rng(5)
        hot16 = 0x0B0C0000
        srcs = hot16 | rng.integers(0, 1 << 16, size=4000)
        trace = trace_from_sources(srcs.astype(np.uint32))
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3)
        mon.process_epoch(trace)
        assert mon.granularity_of(hot16 | 5) == 16
        mon.process_epoch(trace)
        assert mon.granularity_of(hot16 | 5) == 24

    def test_cold_regions_unzoom(self):
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3,
                          hold_down=2)
        mon.process_epoch(hot_trace(seed=6))
        assert mon.refined
        # Traffic moves elsewhere entirely; after hold_down cold epochs
        # the stale refinement expires.
        rng = np.random.default_rng(7)
        other = trace_from_sources(
            (0x20000000 | rng.integers(0, 1 << 24, size=2000)).astype(np.uint32))
        mon.process_epoch(other)
        assert (HOT_PREFIX, 8) in mon.refined  # still inside the hold-down
        mon.process_epoch(other)
        assert (HOT_PREFIX, 8) not in mon.refined

    def test_hold_down_one_restores_eager_collapse(self):
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3,
                          hold_down=1)
        mon.process_epoch(hot_trace(seed=6))
        assert mon.refined
        rng = np.random.default_rng(7)
        other = trace_from_sources(
            (0x20000000 | rng.integers(0, 1 << 24, size=2000)).astype(np.uint32))
        mon.process_epoch(other)
        assert (HOT_PREFIX, 8) not in mon.refined

    def test_epoch_counter_advances(self):
        mon = ZoomMonitor(sketch_factory=factory)
        mon.process_epoch(hot_trace())
        mon.process_epoch(hot_trace())
        assert mon.epoch == 2

    def test_sealed_sketch_returned(self):
        mon = ZoomMonitor(sketch_factory=factory)
        trace = hot_trace()
        sealed = mon.process_epoch(trace)
        assert sealed.total_weight == len(trace)

    def test_empty_epoch_no_adapt(self):
        mon = ZoomMonitor(sketch_factory=factory)
        sealed = mon.process_epoch(trace_from_sources(
            np.array([], dtype=np.uint32)))
        assert sealed.total_weight == 0
        assert mon.refined == set()


class TestHoldDown:
    """Regression tests for refinement flapping: `_adapt` used to
    rebuild ``refined`` from scratch each epoch, so a region oscillating
    around ``zoom_fraction`` snapped between /8 and finer every epoch."""

    def test_hold_down_validated(self):
        with pytest.raises(ValueError):
            ZoomMonitor(sketch_factory=factory, hold_down=0)

    def test_oscillating_region_does_not_flap(self):
        """One cold epoch must not drop a refinement (hold_down=2).

        Pre-fix, granularity snapped 16 -> 8 -> 16 -> 8 across the
        hot/cold alternation; post-fix it stays at 16 throughout.
        """
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3,
                          hold_down=2)
        rng = np.random.default_rng(11)
        cold_trace = trace_from_sources(
            (0x20000000 | rng.integers(0, 1 << 24, size=2000))
            .astype(np.uint32))
        mon.process_epoch(hot_trace(seed=1))
        assert mon.granularity_of(HOT_PREFIX | 1) == 16
        granularities = []
        for epoch in range(6):
            trace = hot_trace(seed=epoch) if epoch % 2 == 0 else cold_trace
            mon.process_epoch(trace)
            granularities.append(mon.granularity_of(HOT_PREFIX | 1))
        assert granularities == [16] * 6, \
            f"refinement flapped: {granularities}"

    def test_cold_streak_resets_when_region_reheats(self):
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3,
                          hold_down=2)
        rng = np.random.default_rng(12)
        cold_trace = trace_from_sources(
            (0x20000000 | rng.integers(0, 1 << 24, size=2000))
            .astype(np.uint32))
        mon.process_epoch(hot_trace(seed=2))
        mon.process_epoch(cold_trace)           # cold streak = 1
        mon.process_epoch(hot_trace(seed=3))    # hot again: streak resets
        mon.process_epoch(cold_trace)           # cold streak = 1 again
        assert (HOT_PREFIX, 8) in mon.refined
        mon.process_epoch(cold_trace)           # streak = 2: expires
        assert (HOT_PREFIX, 8) not in mon.refined

    def test_deep_tree_collapses_one_ladder_step_per_epoch(self):
        """De-refinement walks back one step per cold epoch, leaves
        first — never a region that still has a refined descendant."""
        rng = np.random.default_rng(13)
        hot16 = 0x0B0C0000
        deep = trace_from_sources(
            (hot16 | rng.integers(0, 1 << 16, size=4000)).astype(np.uint32))
        cold_trace = trace_from_sources(
            (0x20000000 | rng.integers(0, 1 << 24, size=2000))
            .astype(np.uint32))
        mon = ZoomMonitor(sketch_factory=factory, zoom_fraction=0.3,
                          hold_down=1)
        mon.process_epoch(deep)
        mon.process_epoch(deep)
        assert {(hot16 & 0xFF000000, 8), (hot16, 16)} <= mon.refined
        mon.process_epoch(cold_trace)
        # Only the /16 leaf collapsed; the /8 still has had a child.
        assert (hot16, 16) not in mon.refined
        assert (hot16 & 0xFF000000, 8) in mon.refined
        mon.process_epoch(cold_trace)
        assert (hot16 & 0xFF000000, 8) not in mon.refined
