"""Tests for the resilient aggregation tree (in-process simulation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.faults import SimLink, SimulatedSwitch, zipf_keys
from repro.network.hierarchy import (
    ROOT,
    HierarchicalCoordinator,
    ResiliencePolicy,
    TreePlan,
)
from repro.core.universal import UniversalSketch


def factory():
    return UniversalSketch(levels=4, rows=2, width=64, heap_size=8, seed=7)


class Net:
    """A small simulated deployment the tests drive epoch by epoch."""

    def __init__(self, n=20, fanout=4, drop_rate=0.0, policy=None,
                 transfer="delta"):
        self.names = [f"sw{i:03d}" for i in range(n)]
        self.switches = {n_: SimulatedSwitch(n_, factory)
                         for n_ in self.names}
        self.links = {
            n_: SimLink(self.switches[n_], drop_rate=drop_rate,
                        max_attempts=6, seed=i)
            for i, n_ in enumerate(self.names)}
        self.coord = HierarchicalCoordinator(
            self.links, factory, fanout=fanout, policy=policy,
            transfer=transfer)
        self.rng = np.random.default_rng(42)
        self.fed = 0
        self.lost_in_flight = 0

    def feed(self, per_switch=50):
        for name in self.names:
            self.fed += self.switches[name].feed(
                zipf_keys(self.rng, per_switch, flows=128))

    def epoch(self, on_tier=None):
        report = self.coord.run_epoch(on_tier=on_tier)
        self.lost_in_flight += \
            report.results["coverage"]["lost_in_flight_packets"]
        return report

    def conservation_holds(self, packets_at_root):
        lost_kill = sum(s.lost_total for s in self.switches.values())
        pending = sum(s.pending for s in self.switches.values())
        return packets_at_root + lost_kill + pending \
            + self.lost_in_flight == self.fed


class TestTreePlan:
    def test_shape_and_naming(self):
        plan = TreePlan.build([f"s{i}" for i in range(20)], fanout=4)
        assert len(plan.tiers) == 3
        assert [a for a, _ in plan.tiers[0]] == [
            "rack00", "rack01", "rack02", "rack03", "rack04"]
        assert [a for a, _ in plan.tiers[1]] == ["pod00", "pod01"]
        assert plan.tiers[-1][0][0] == ROOT
        assert plan.parent["rack00"] == "pod00"
        assert plan.parent["pod01"] == ROOT
        assert len(plan.leaves_under[ROOT]) == 20
        assert len(plan.leaves_under["rack00"]) == 4

    def test_every_leaf_has_exactly_one_parent(self):
        plan = TreePlan.build([f"s{i}" for i in range(100)], fanout=8)
        for leaf in plan.leaves:
            assert leaf in plan.parent
        covered = [leaf for agg, kids in plan.tiers[0] for leaf in kids]
        assert sorted(covered) == sorted(plan.leaves)

    def test_fanout_wider_than_leaves_is_flat(self):
        plan = TreePlan.build(["a", "b", "c"], fanout=8)
        assert plan.depth == 1
        assert plan.children[ROOT] == ("a", "b", "c")

    def test_deep_tree_tier_names(self):
        plan = TreePlan.build([f"s{i:03d}" for i in range(32)], fanout=2)
        prefixes = [tier[0][0] for tier in plan.tiers[:-1]]
        assert prefixes[0].startswith("rack")
        assert prefixes[1].startswith("pod")
        assert prefixes[2].startswith("zone")
        assert prefixes[3].startswith("t3")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TreePlan.build([], fanout=4)
        with pytest.raises(ConfigurationError):
            TreePlan.build(["a", "a"], fanout=4)
        with pytest.raises(ConfigurationError):
            TreePlan.build(["a", "b"], fanout=1)
        with pytest.raises(ConfigurationError):
            TreePlan.build(["a", ROOT], fanout=2)


class TestResiliencePolicy:
    def test_full_coverage_publishes(self):
        policy = ResiliencePolicy(min_coverage=0.9, quorum=1.0,
                                  fail_open=False)
        assert policy.decide(1.0, 1.0) == ("published", False)

    def test_degraded_above_thresholds(self):
        policy = ResiliencePolicy(min_coverage=0.5, quorum=0.5)
        assert policy.decide(0.8, 0.6) == ("published_degraded", False)

    def test_fail_open_publishes_violations(self):
        policy = ResiliencePolicy(min_coverage=0.9, fail_open=True)
        assert policy.decide(0.2, 1.0) == ("published_degraded", True)

    def test_fail_closed_withholds_violations(self):
        policy = ResiliencePolicy(min_coverage=0.9, fail_open=False)
        assert policy.decide(0.2, 1.0) == ("withheld", True)
        policy = ResiliencePolicy(quorum=0.9, fail_open=False)
        assert policy.decide(0.95, 0.5) == ("withheld", True)

    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(min_coverage=1.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(quorum=-0.1)


class TestHealthyTree:
    def test_full_coverage_and_packet_exactness(self):
        net = Net()
        net.feed()
        report = net.epoch()
        cov = report.results["coverage"]
        assert cov["coverage"] == 1.0
        assert cov["status"] == "published"
        assert not cov["degraded"]
        assert cov["missing_switches"] == []
        assert report.packets == net.fed
        assert net.conservation_holds(report.packets)

    def test_tree_merge_equals_flat_merge(self):
        # Linearity: aggregating rack-then-pod-then-root must equal the
        # flat all-at-once merge, counter for counter.
        net = Net(n=12, fanout=3)
        flat = Net(n=12, fanout=100)
        keys = [zipf_keys(np.random.default_rng(5), 80, flows=64)
                for _ in range(12)]
        for i, name in enumerate(net.names):
            net.switches[name].feed(keys[i])
            flat.switches[name].feed(keys[i])
        merged_tree = net.epoch()
        merged_flat = flat.epoch()
        assert merged_tree.packets == merged_flat.packets

    def test_apps_run_on_published_epochs(self):
        from repro.controlplane.apps.cardinality import CardinalityApp
        net = Net(n=8, fanout=3)
        net.coord.register(CardinalityApp())
        net.feed()
        report = net.epoch()
        assert report.results["cardinality"]["distinct"] > 0

    def test_transfer_raw_forces_full_frames(self):
        net = Net(n=6, fanout=3, transfer="raw")
        for _ in range(3):
            net.feed()
            cov = net.epoch().results["coverage"]
            assert cov["frames_delta"] == 0


class TestDegradation:
    def test_dead_rack_reported_as_missing_subtree(self):
        net = Net()
        rack0 = net.coord.plan.children["rack00"]
        for name in rack0:
            net.switches[name].kill()
        net.feed()
        net.epoch()  # consecutive-failure threshold
        net.feed()
        cov = net.epoch().results["coverage"]
        assert "rack00" in cov["missing_subtrees"]
        assert set(cov["missing_switches"]) == set(rack0)
        assert cov["coverage"] == pytest.approx(16 / 20)
        assert cov["degraded"]

    def test_aggregator_death_reparents_to_sibling(self):
        net = Net()
        net.coord.kill_aggregator("rack01")
        net.feed()
        cov = net.epoch().results["coverage"]
        # rack01's leaves were adopted by the first live sibling.
        adopted = {cov["reparented"][leaf]
                   for leaf in net.coord.plan.children["rack01"]}
        assert adopted == {"rack00"}
        assert cov["coverage"] == 1.0  # re-parenting loses nothing

    def test_whole_tier_dead_escalates_to_parent(self):
        net = Net()
        for agg, _ in net.coord.plan.tiers[0]:
            net.coord.kill_aggregator(agg)
        net.feed()
        cov = net.epoch().results["coverage"]
        assert cov["coverage"] == 1.0
        assert set(cov["reparented"].values()) <= {"pod00", "pod01", ROOT}

    def test_mid_epoch_kill_loses_collected_data(self):
        net = Net()
        net.feed()

        def chaos(tier, coord):
            if tier == 0:
                coord.kill_aggregator("rack02")

        report = net.epoch(on_tier=chaos)
        cov = report.results["coverage"]
        assert cov["lost_in_flight_packets"] > 0
        assert set(cov["lost_in_flight_switches"]) == set(
            net.coord.plan.children["rack02"])
        assert cov["coverage"] == pytest.approx(16 / 20)
        assert net.conservation_holds(report.packets)

    def test_root_cannot_be_killed(self):
        net = Net()
        with pytest.raises(ConfigurationError):
            net.coord.kill_aggregator(ROOT)

    def test_withheld_epoch_skips_apps(self):
        from repro.controlplane.apps.cardinality import CardinalityApp
        net = Net(policy=ResiliencePolicy(min_coverage=0.99,
                                          fail_open=False))
        net.coord.register(CardinalityApp())
        for name in net.coord.plan.children["rack00"]:
            net.switches[name].kill()
        net.feed()
        net.epoch()
        net.feed()
        report = net.epoch()
        assert report.results["coverage"]["status"] == "withheld"
        assert "cardinality" not in report.results


class TestRecovery:
    def test_coverage_recovers_within_two_epochs(self):
        net = Net(drop_rate=0.1)
        rack0 = net.coord.plan.children["rack00"]
        net.feed()
        net.epoch()
        for name in rack0:
            net.switches[name].kill()
        for _ in range(3):
            net.feed()
            net.epoch()
        for name in rack0:
            net.switches[name].restart()
        coverages = []
        for _ in range(2):
            net.feed()
            coverages.append(
                net.epoch().results["coverage"]["coverage"])
        assert coverages[-1] == 1.0

    def test_aggregator_restart_returns_children(self):
        net = Net()
        net.coord.kill_aggregator("rack01")
        net.feed()
        net.epoch()
        net.coord.restart_aggregator("rack01")
        net.feed()
        cov = net.epoch().results["coverage"]
        assert cov["reparented"] == {}
        assert cov["coverage"] == 1.0

    def test_reparenting_degrades_codec_to_full_then_recovers(self):
        # While adopted, a leaf talks to a collector with no decoder
        # history -> full frames; nothing is lost either way.
        net = Net()
        net.feed()
        net.epoch()
        net.coord.kill_aggregator("rack00")
        total = 0
        for _ in range(3):
            net.feed()
            report = net.epoch()
            total += report.packets
            assert report.results["coverage"]["coverage"] == 1.0
        net.coord.restart_aggregator("rack00")
        net.feed()
        report = net.epoch()
        assert report.results["coverage"]["coverage"] == 1.0
        assert net.conservation_holds(
            net.fed - sum(s.pending for s in net.switches.values()))


class TestDeterminism:
    def test_identical_seeds_identical_reports(self):
        def run():
            net = Net(drop_rate=0.3)
            out = []
            for epoch in range(4):
                net.feed(per_switch=40)
                if epoch == 1:
                    net.coord.kill_aggregator("rack03")
                cov = net.epoch().results["coverage"]
                out.append((cov["coverage"], cov["bytes_wire"],
                            tuple(cov["missing_switches"]),
                            cov["frames_full"], cov["frames_delta"]))
            return out
        assert run() == run()


class TestConfigurationErrors:
    def test_needs_links(self):
        with pytest.raises(ConfigurationError):
            HierarchicalCoordinator({}, factory)

    def test_needs_seeded_factory(self):
        unseeded = lambda: UniversalSketch(  # noqa: E731
            levels=3, rows=2, width=32, seed=None)
        sw = SimulatedSwitch("a", factory)
        with pytest.raises(ConfigurationError):
            HierarchicalCoordinator({"a": SimLink(sw)}, unseeded)

    def test_bad_transfer_mode(self):
        sw = SimulatedSwitch("a", factory)
        with pytest.raises(ConfigurationError):
            HierarchicalCoordinator({"a": SimLink(sw)}, factory,
                                    transfer="gzip")

    def test_plan_must_match_links(self):
        plan = TreePlan.build(["a", "b"], fanout=2)
        sw = SimulatedSwitch("a", factory)
        with pytest.raises(ConfigurationError):
            HierarchicalCoordinator({"a": SimLink(sw)}, factory,
                                    plan=plan)
