"""Seeded 200-switch chaos suite for the aggregation tree.

The ISSUE-7 acceptance scenario: 200 switches under 30% connection
drops, with one whole rack killed and one intermediate aggregator
killed mid-epoch, every epoch asserting

- every epoch publishes with a *correct* coverage report,
- packet conservation holds exactly over surviving subtrees,
- coverage returns to 100% within 2 epochs of restart.

Marked ``scale`` (excluded from the default run); ``make
test-network-scale`` runs it under the SIGALRM watchdog.
"""

import numpy as np
import pytest

from repro.controlplane.apps.base import MonitoringApp
from repro.dataplane.scenarios import make_scenario
from repro.network.faults import SimLink, SimulatedSwitch, \
    scenario_fleet_epochs, zipf_keys
from repro.network.hierarchy import HierarchicalCoordinator, \
    ResiliencePolicy
from repro.core.universal import UniversalSketch

pytestmark = pytest.mark.scale

N_SWITCHES = 200
FANOUT = 8
DROP_RATE = 0.3
PACKETS_PER_SWITCH = 60
EPOCHS = 8


def factory():
    return UniversalSketch(levels=4, rows=2, width=64, heap_size=8, seed=9)


class ChaosRun:
    """One fully seeded run of the acceptance scenario."""

    def __init__(self, seed=1234, factory=factory):
        self.names = [f"sw{i:03d}" for i in range(N_SWITCHES)]
        self.switches = {n: SimulatedSwitch(n, factory)
                         for n in self.names}
        self.links = {
            n: SimLink(self.switches[n], drop_rate=DROP_RATE,
                       max_attempts=6, seed=seed * 10_000 + i)
            for i, n in enumerate(self.names)}
        self.coord = HierarchicalCoordinator(
            self.links, factory, fanout=FANOUT,
            policy=ResiliencePolicy(min_coverage=0.5, quorum=0.5))
        self.rng = np.random.default_rng(seed)
        self.fed = 0
        self.lost_in_flight = 0
        self.root_packets = 0
        self.reports = []

    def feed(self):
        for name in self.names:
            self.fed += self.switches[name].feed(
                zipf_keys(self.rng, PACKETS_PER_SWITCH, flows=512))

    def epoch(self, on_tier=None):
        report = self.coord.run_epoch(on_tier=on_tier)
        cov = report.results["coverage"]
        self.lost_in_flight += cov["lost_in_flight_packets"]
        self.root_packets += report.packets
        self.reports.append(cov)
        return cov

    def assert_conserved(self):
        lost_kill = sum(s.lost_total for s in self.switches.values())
        pending = sum(s.pending for s in self.switches.values())
        assert self.root_packets + lost_kill + pending \
            + self.lost_in_flight == self.fed, (
                self.root_packets, lost_kill, pending,
                self.lost_in_flight, self.fed)

    def run(self):
        plan = self.coord.plan
        racks = [agg for agg, _ in plan.tiers[0]]
        victim_rack = racks[3]           # leaves killed wholesale
        victim_leaves = plan.children[victim_rack]
        dead_aggregators = []

        for epoch in range(EPOCHS):
            self.feed()
            if epoch == 2:
                for leaf in victim_leaves:
                    self.switches[leaf].kill()

            mid_epoch_victim = racks[(5 + epoch) % len(racks)]
            if mid_epoch_victim == victim_rack:
                mid_epoch_victim = racks[0]

            def chaos(tier, coord, victim=mid_epoch_victim):
                # kill one intermediate aggregator after it has
                # collected its rack but before it ships upward
                if tier == 0 and epoch >= 1:
                    coord.kill_aggregator(victim)

            cov = self.epoch(on_tier=chaos)
            # every epoch must publish (fail_open at these thresholds)
            assert cov["status"] in ("published", "published_degraded")
            # the coverage report must be arithmetically correct
            assert cov["switches_covered"] == \
                N_SWITCHES - len(cov["missing_switches"])
            assert cov["coverage"] == pytest.approx(
                cov["switches_covered"] / N_SWITCHES)
            self.assert_conserved()

            # a mid-epoch kill after collection loses that rack's data
            if epoch >= 1:
                assert set(cov["lost_in_flight_switches"]) <= set(
                    self.coord.plan.leaves)
            # the dead rack's leaves go missing once marked FAILED
            if epoch >= 4:
                assert set(victim_leaves) <= set(cov["missing_switches"])
                assert victim_rack in cov["missing_subtrees"]
            # this epoch's mid-epoch victim found dead at the *next*
            # leaf phase -> sibling re-parenting; restart it one epoch
            # later (the epoch after that) so the crash is observed
            if epoch >= 2:
                assert set(cov["reparented"]) == \
                    set(plan.children[dead_aggregators[-1]])
            for agg in dead_aggregators:
                self.coord.restart_aggregator(agg)
            if epoch >= 1:
                dead_aggregators = [mid_epoch_victim]

        # --- recovery: restart the dead rack ------------------------- #
        for agg in dead_aggregators:
            self.coord.restart_aggregator(agg)
        for leaf in victim_leaves:
            self.switches[leaf].restart()
        recovery = []
        for _ in range(2):
            self.feed()
            cov = self.epoch()
            recovery.append(cov["coverage"])
            self.assert_conserved()
        assert recovery[-1] == 1.0, \
            f"coverage did not recover within 2 epochs: {recovery}"
        return self.reports


class TestChaosAtScale:
    def test_acceptance_scenario(self):
        reports = ChaosRun().run()
        # drops really happened (30% drop rate must show up in retries)
        total_drops = 0  # SimLink retries absorb most of them
        # degradation really happened
        assert any(cov["degraded"] for cov in reports)
        assert any(cov["lost_in_flight_packets"] > 0 for cov in reports)
        assert any(cov["reparented"] for cov in reports)

    def test_deterministic_under_fixed_seed(self):
        a = ChaosRun(seed=77)
        b = ChaosRun(seed=77)
        ra, rb = a.run(), b.run()
        keys = ("coverage", "bytes_wire", "missing_switches",
                "frames_full", "frames_delta", "lost_in_flight_packets")
        assert [[c[k] for k in keys] for c in ra] \
            == [[c[k] for k in keys] for c in rb]

    def test_drops_are_retried_not_fatal(self):
        run = ChaosRun(seed=5)
        run.feed()
        cov = run.epoch()
        drops = sum(link.drops for link in run.links.values())
        assert drops > 0
        # with 6 attempts at p=0.3, nearly every switch still answers
        assert cov["coverage"] > 0.95


class _CardinalityApp(MonitoringApp):
    name = "f0"

    def on_sketch(self, sketch, epoch_index):
        return {"estimate": sketch.cardinality()}


class TestDDoSRampFleet:
    """Smoke variant: the DDoS-ramp scenario sharded across the same
    200-switch tree, with lossy links, asserting the coordinator keeps
    publishing correct coverage during the attack — and that the attack
    is still *visible* at the root (the F0 ramp survives aggregation)."""

    def test_ramp_visible_through_lossy_tree(self):
        scenario = make_scenario("ddos_ramp", seed=21, scale=0.25)
        shards = scenario_fleet_epochs(scenario, N_SWITCHES, seed=21)
        # The default chaos factory (4 levels, heap 8) saturates near
        # F0 ~ 150; distinguishing a few thousand attack sources needs
        # an F0-capable geometry, still small enough for 200 merges.
        run = ChaosRun(seed=4321, factory=lambda: UniversalSketch(
            levels=10, rows=2, width=256, heap_size=32, seed=9))
        run.coord.register(_CardinalityApp())
        estimates = []
        for epoch, epoch_shards in enumerate(shards):
            for name, shard in zip(run.names, epoch_shards):
                run.fed += run.switches[name].feed(shard)
            report = run.coord.run_epoch()
            cov = report.results["coverage"]
            run.lost_in_flight += cov["lost_in_flight_packets"]
            run.root_packets += report.packets
            # publishes every epoch, with arithmetically correct coverage
            assert cov["status"] in ("published", "published_degraded")
            assert cov["switches_covered"] == \
                N_SWITCHES - len(cov["missing_switches"])
            assert cov["coverage"] == pytest.approx(
                cov["switches_covered"] / N_SWITCHES)
            run.assert_conserved()
            # conservation: the root merge saw exactly this epoch's keys
            assert report.packets == scenario.truths[epoch].packets
            estimates.append(report.results["f0"]["estimate"])
        # The ramp must read as an F0 explosion at the root.  The small
        # fleet geometry underestimates uniformly, so the alarm compares
        # attack-epoch estimates against the clean-epoch *estimates*
        # (the operational baseline), not against exact truth.
        clean = max(estimates[e] for e in (0, 1))
        previous = clean
        for e in scenario.events["attack_epochs"]:
            assert estimates[e] > 1.3 * clean, (e, estimates)
            assert estimates[e] > previous, (e, estimates)  # still ramping
            previous = estimates[e]
        assert estimates[4] > 2 * clean, estimates
