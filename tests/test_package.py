"""Package-level checks: public exports, version, and the README-style
doctest in the package docstring."""

import doctest

import repro


class TestPublicSurface:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_importable_from_top_level(self):
        # The names a downstream user will reach for first.
        for name in ("UniversalSketch", "Controller", "Trace",
                     "generate_trace", "MonitoredSwitch",
                     "NetworkTopology"):
            assert name in repro.__all__

    def test_exceptions_share_base(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.IncompatibleSketchError, repro.ReproError)
        assert issubclass(repro.NotSketchableError, repro.ReproError)
        assert issubclass(repro.TraceFormatError, repro.ReproError)
        assert issubclass(repro.TopologyError, repro.ReproError)


class TestDocstringExample:
    def test_package_doctest(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 3
        assert results.failed == 0
