"""Scenario acceptance matrix: every workload scenario crossed with
every headline statistic at the 256 KB budget.

Each cell regenerates one scenario over the shared seed panel (the
panels and their per-epoch sketches are memoised in ``conftest``, so
the 28 cells share seven generation passes) and asserts the estimation
error against a **per-scenario calibrated ceiling**.

Calibration method (see DESIGN.md §12): the matrix was run once at the
exact panel seeds and sketch parameters used here, the worst and median
observed errors per cell recorded in ``CALIBRATION`` below, and every
ceiling derived as ``1.8x`` the observed value.  Because 1.8 < 2, a
regression that doubles any cell's error is guaranteed to trip its
ceiling; ``TestCeilingSanity`` re-measures the matrix and proves both
directions (pass-at-seed and trip-on-doubling) hold for the committed
table, so a stale table fails loudly instead of going soft.

Detection-rate cells (heavy hitters, churn coverage) frequently observe
0.0, where "1.8x" is meaningless; they use a 0.15 floor instead, kept
below 1/3 so that losing a third of the true set always trips.

Run with ``pytest -m acceptance``.
"""

import functools

import numpy as np
import pytest

from tests.acceptance.conftest import assert_ceiling, scenario_panel

from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    g_core,
    heavy_changes,
)
from repro.dataplane.scenarios import scenario_names
from repro.eval.metrics import detection_rates, relative_error

pytestmark = pytest.mark.acceptance

ALL_SCENARIOS = scenario_names()

ALPHA = 0.005     # heavy-hitter fraction (Fig 4's operating point)
PHI = 0.03        # heavy-change fraction (Fig 6's operating point)
MARGIN = 1.8      # ceiling = MARGIN x observed; < 2 so doubling trips
RATE_FLOOR = 0.15 # detection-rate cells; < 1/3 so losing a third trips

#: Observed (max, median) error per cell, measured at the panel seeds
#: in ``conftest.PANEL_SEEDS`` with the 256 KB acceptance sketch.
#: Regenerate with the matrix itself (``TestCeilingSanity`` prints the
#: fresh numbers on failure).  Notes on the two outliers:
#: - ``heavy_churn`` F0 max 0.53 is one unlucky (workload, hash-seed)
#:   pair — the elephants hold ~37% of the stream and inflate the F0
#:   estimator's variance; the same trace at another sketch seed reads
#:   <= 0.22, and the median cell keeps the regression bound tight.
#: - ``port_scan`` change-D ~0.45 is a systematic underestimate: the
#:   scan-to-scan difference stream is 30k singleton deltas, the
#:   worst case for the L1-of-difference estimator at this budget.
CALIBRATION = {
    "datamining_mix": dict(hh_fp=(0.0, 0.0), hh_fn=(0.0, 0.0),
                           f0=(0.1688, 0.0956), entropy=(0.0304, 0.0178),
                           change_d=(0.0765, 0.0256)),
    "ddos_ramp": dict(hh_fp=(0.0435, 0.0), hh_fn=(0.0455, 0.0),
                      f0=(0.1058, 0.0640), entropy=(0.0234, 0.0079),
                      change_d=(0.0680, 0.0358)),
    "flash_crowd": dict(hh_fp=(0.0, 0.0), hh_fn=(0.0435, 0.0),
                        f0=(0.0883, 0.0687), entropy=(0.0097, 0.0065),
                        change_d=(0.0949, 0.0074)),
    "heavy_churn": dict(hh_fp=(0.0714, 0.0), hh_fn=(0.0, 0.0),
                        f0=(0.5264, 0.1311), entropy=(0.0332, 0.0063),
                        change_d=(0.0550, 0.0180)),
    "keyspace_shift": dict(hh_fp=(0.0455, 0.0), hh_fn=(0.0455, 0.0),
                           f0=(0.1469, 0.0514), entropy=(0.0189, 0.0054),
                           change_d=(0.0348, 0.0200),
                           window_f0=(0.1860, 0.0908)),
    "port_scan": dict(hh_fp=(0.1250, 0.0), hh_fn=(0.0, 0.0),
                      f0=(0.1960, 0.0932), entropy=(0.0086, 0.0040),
                      change_d=(0.4776, 0.4537)),
    "websearch_mix": dict(hh_fp=(0.0303, 0.0), hh_fn=(0.0, 0.0),
                          f0=(0.2217, 0.1458), entropy=(0.0901, 0.0207),
                          change_d=(0.0779, 0.0508)),
}

#: Which cells are detection rates (floor policy) vs relative errors.
RATE_CELLS = frozenset({"hh_fp", "hh_fn"})


def rate_ceiling(observed_max):
    return max(MARGIN * observed_max, RATE_FLOOR)


def relerr_ceilings(observed):
    observed_max, observed_median = observed
    return MARGIN * observed_max, MARGIN * observed_median


# --------------------------------------------------------------------- #
# measurement (shared by the cells and the sanity meta-test)
# --------------------------------------------------------------------- #

@functools.lru_cache(maxsize=None)
def measure(name):
    """Every cell statistic for one scenario, over the whole panel.

    Returns ``{cell: [per-observation errors]}`` — one observation per
    (panel seed, epoch) for single-epoch statistics, per (panel seed,
    adjacent epoch pair) for change detection.
    """
    out = {"hh_fp": [], "hh_fn": [], "f0": [], "entropy": [],
           "change_d": []}
    for scenario, sketches in scenario_panel(name):
        for e, (truth, sketch) in enumerate(zip(scenario.truths,
                                                sketches)):
            true_hh = truth.heavy_hitter_keys(ALPHA)
            assert len(true_hh) >= 5, (name, e)  # task must be posed
            reported = {k for k, _ in g_core(sketch, ALPHA)}
            fp, fn = detection_rates(true_hh, reported)
            out["hh_fp"].append(fp)
            out["hh_fn"].append(fn)
            out["f0"].append(relative_error(
                estimate_cardinality(sketch), truth.distinct))
            out["entropy"].append(relative_error(
                estimate_entropy(sketch, base=2.0),
                truth.entropy(base=2.0)))
            if e > 0:
                _, total = heavy_changes(sketch, sketches[e - 1], PHI)
                out["change_d"].append(relative_error(
                    total, truth.total_change(scenario.truths[e - 1])))
    if name == "keyspace_shift":
        out["window_f0"] = _measure_window_f0()
    return out


def _measure_window_f0():
    """Sliding-window F0 on the shifting key space: merge the last
    three epoch sketches (linearity; they share a seed) and compare
    against the exact window union truth."""
    errors = []
    for scenario, sketches in scenario_panel("keyspace_shift"):
        for end in range(2, scenario.n_epochs):
            merged = sketches[end]
            for e in range(end - 2, end):
                merged = merged.merge(sketches[e])
            errors.append(relative_error(
                estimate_cardinality(merged),
                scenario.window_truth(end, 3).distinct))
    return errors


# --------------------------------------------------------------------- #
# the matrix: scenario x statistic
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestScenarioMatrix:
    def test_heavy_hitters(self, name):
        m = measure(name)
        cal = CALIBRATION[name]
        assert_ceiling(m["hh_fp"], rate_ceiling(cal["hh_fp"][0]),
                       label=f"{name}/hh_fp")
        assert_ceiling(m["hh_fn"], rate_ceiling(cal["hh_fn"][0]),
                       label=f"{name}/hh_fn")

    def test_f0(self, name):
        ceiling_max, ceiling_median = relerr_ceilings(
            CALIBRATION[name]["f0"])
        assert_ceiling(measure(name)["f0"], ceiling_max,
                       label=f"{name}/f0", median_ceiling=ceiling_median)

    def test_change_detection(self, name):
        ceiling_max, ceiling_median = relerr_ceilings(
            CALIBRATION[name]["change_d"])
        assert_ceiling(measure(name)["change_d"], ceiling_max,
                       label=f"{name}/change_d",
                       median_ceiling=ceiling_median)

    def test_entropy(self, name):
        ceiling_max, ceiling_median = relerr_ceilings(
            CALIBRATION[name]["entropy"])
        assert_ceiling(measure(name)["entropy"], ceiling_max,
                       label=f"{name}/entropy",
                       median_ceiling=ceiling_median)


class TestWindowedKeyspaceShift:
    """The scenario built to stress the epoch-ring sliding window."""

    def test_window_f0(self):
        ceiling_max, ceiling_median = relerr_ceilings(
            CALIBRATION["keyspace_shift"]["window_f0"])
        assert_ceiling(measure("keyspace_shift")["window_f0"],
                       ceiling_max, label="keyspace_shift/window_f0",
                       median_ceiling=ceiling_median)


# --------------------------------------------------------------------- #
# detection events
# --------------------------------------------------------------------- #

class TestDetectionEvents:
    def test_ddos_ramp_trips_f0_alarm(self):
        """Every ramp epoch's F0 estimate must cross the midpoint
        between the clean-epoch truth and that epoch's truth — and no
        clean epoch may cross the lowest such alarm line."""
        for scenario, sketches in scenario_panel("ddos_ramp"):
            attack = scenario.events["attack_epochs"]
            clean_epochs = [e for e in range(scenario.n_epochs)
                            if e not in attack]
            clean_truth = max(scenario.truths[e].distinct
                              for e in clean_epochs)
            thresholds = {
                e: (clean_truth + scenario.truths[e].distinct) / 2.0
                for e in attack}
            for e in attack:
                estimate = estimate_cardinality(sketches[e])
                assert estimate > thresholds[e], (scenario.seed, e)
            lowest = min(thresholds.values())
            for e in clean_epochs:
                estimate = estimate_cardinality(sketches[e])
                assert estimate < lowest, (scenario.seed, e)

    def test_churn_shows_in_heavy_changes(self):
        """Between adjacent churn epochs, the rising and the fading
        elephant cohorts must both appear among the reported heavy
        changes (missing more than the rate floor's share trips)."""
        misses = []
        for scenario, sketches in scenario_panel("heavy_churn"):
            elephants = scenario.events["elephants"]
            for e in range(1, scenario.n_epochs):
                changes, _ = heavy_changes(sketches[e], sketches[e - 1],
                                           PHI)
                reported = {k for k, _ in changes}
                cohort = set(elephants[e]) | set(elephants[e - 1])
                misses.append(len(cohort - reported) / len(cohort))
        assert_ceiling(misses, RATE_FLOOR, label="heavy_churn/cohort_fn")


# --------------------------------------------------------------------- #
# ceiling sanity
# --------------------------------------------------------------------- #

class TestCeilingSanity:
    """The meta-test the matrix's credibility rests on: the committed
    calibration table must match what the panel measures *now*, every
    ceiling must pass at seed, and every ceiling must trip if the
    measured error doubles."""

    def test_table_covers_matrix(self):
        assert set(CALIBRATION) == set(ALL_SCENARIOS)
        cells = sum(len(v) for v in CALIBRATION.values())
        assert cells >= 20  # the acceptance bar: >= 20 matrix cells

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_pass_at_seed_and_trip_on_doubling(self, name):
        m = measure(name)
        for cell, observed in CALIBRATION[name].items():
            values = m[cell]
            measured_max = max(values)
            measured_median = float(np.median(values))
            fresh = (round(measured_max, 4), round(measured_median, 4))
            if cell in RATE_CELLS:
                ceiling = rate_ceiling(observed[0])
                # Pass at seed; a lost third of the true set trips.
                assert measured_max <= ceiling, (name, cell, fresh)
                assert ceiling < 1.0 / 3.0, (name, cell)
            else:
                ceiling_max, ceiling_median = relerr_ceilings(observed)
                assert measured_max <= ceiling_max, (name, cell, fresh)
                assert measured_median <= ceiling_median, \
                    (name, cell, fresh)
                # Doubling the measured error must trip a ceiling —
                # this is what keeps the table honest: if estimation
                # improves, the table must be re-calibrated downward.
                assert (2 * measured_max > ceiling_max
                        or 2 * measured_median > ceiling_median), \
                    (name, cell, "stale calibration; re-measure:", fresh)
