"""Shared acceptance-test machinery.

Everything the statistical acceptance suites have in common lives here:
the acceptance-grade sketch builder (256 KB budget, the mid-range point
of the paper sweep), the ceiling-assert helper, and the memoised
scenario panels the scenario matrix reuses across its 28 cells (each
scenario is generated — and its per-epoch sketches filled — exactly
once per session, not once per cell).
"""

import functools

import numpy as np
import pytest

from repro.dataplane.scenarios import make_scenario
from repro.eval.experiments import _univmon_for

#: The acceptance memory budget (mid-range point of the paper sweep).
MEMORY_BYTES = 256 * 1024

#: Expected distinct keys the sketch is sized for (the acceptance
#: workload: 5k flows / 30k packets per 5 s epoch).
BASE_FLOWS = 5_000

#: Seed panel for the scenario matrix.  Two independent full-scale
#: builds per scenario keep the 28-cell matrix affordable while still
#: catching seed-specific flukes; the statistical suite keeps its wider
#: five-seed panel on the cheaper stationary workload.
PANEL_SEEDS = (1000, 1001)


def build_sketch(seed, flows=BASE_FLOWS, memory_bytes=MEMORY_BYTES):
    """The acceptance-grade universal sketch at the 256 KB budget."""
    return _univmon_for(memory_bytes, flows, seed=seed)


def assert_ceiling(values, ceiling, label="", median_ceiling=None):
    """Assert every observed error sits under its calibrated ceiling."""
    values = [float(v) for v in values]
    assert values, f"{label}: no observations"
    assert max(values) <= ceiling, (
        f"{label}: max {max(values):.4f} > ceiling {ceiling} "
        f"(all: {[round(v, 4) for v in values]})")
    if median_ceiling is not None:
        med = float(np.median(values))
        assert med <= median_ceiling, (
            f"{label}: median {med:.4f} > {median_ceiling}")


@functools.lru_cache(maxsize=None)
def scenario_panel(name):
    """``(scenario, per-epoch sketches)`` for each panel seed.

    All epoch sketches of one run share a sketch seed, so adjacent
    epochs subtract exactly (Count Sketch linearity) — the change-
    detection cells depend on that.
    """
    panel = []
    for seed in PANEL_SEEDS:
        scenario = make_scenario(name, seed=seed)
        sketches = []
        for keys in scenario.epoch_keys():
            sketch = build_sketch(seed + 17)
            sketch.update_array(keys)
            sketches.append(sketch)
        panel.append((scenario, sketches))
    return tuple(panel)


# Fixture wrappers so test modules can take these by name instead of
# importing conftest (tests are not a package).

@pytest.fixture(scope="session")
def sketch_builder():
    return build_sketch


@pytest.fixture(scope="session")
def ceiling_assert():
    return assert_ceiling


@pytest.fixture(scope="session")
def panel_of():
    return scenario_panel
