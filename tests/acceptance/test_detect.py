"""Detection-pipeline acceptance cell: the calibrated surge rule over
the workload scenario matrix at the 256 KB budget.

The cell asserts the end-to-end detection contract from the ISSUE:

- the two attack scenarios (``ddos_ramp``, ``port_scan``) reach
  CONFIRMED on **every** attack/scan epoch on both panel seeds, and at
  least one key recovered during each confirmed epoch lies in the
  ground-truth heavy set (the scenario's victim address or a true
  source heavy hitter);
- the clean CDF-mix scenarios (and the stricter churn/shift workloads)
  never leave IDLE.

Calibration (same method as the scenario matrix, DESIGN.md §12): at
the panel seeds and the 256 KB acceptance sketch, the attack epochs'
distinct-source counts sit >= 1.64x their frozen EWMA baseline
(ddos_ramp; port_scan reads ~5x), while the worst clean-epoch ratio
across every benign scenario/seed/epoch is 1.304x (heavy_churn, seed
1001, epoch 1).  The rule threshold 1.4x splits the two populations
with margin on both sides; a regression that inflates clean-epoch
cardinality noise by ~8% or dampens the attack signal by ~15% trips
the cell.

Run with ``pytest -m acceptance``.
"""

import functools

import pytest

from tests.acceptance.conftest import scenario_panel

from repro.detect import DetectionPipeline, Rule

pytestmark = pytest.mark.acceptance

#: Calibrated spike threshold (see module docstring).
SPIKE = 1.4

#: Ground-truth heavy-hitter fraction for the recovery cross-check
#: (matches the scenario matrix operating point).
ALPHA = 0.005

#: scenario name -> events key holding its hot epochs.
ATTACKS = {"ddos_ramp": "attack_epochs", "port_scan": "scan_epochs"}

#: Scenarios the rule must stay silent on.  The two CDF mixes are the
#: ISSUE's required clean set; churn and shift are the two noisiest
#: benign workloads and make the cell strictly harder.
CLEAN = ("websearch_mix", "datamining_mix", "heavy_churn",
         "keyspace_shift")


def surge_rule():
    return Rule(
        name="surge",
        when=f"cardinality spikes > {SPIKE}x baseline",
        confirm_epochs=1,       # port_scan has a single clean lead-in epoch
        cooldown_epochs=2,
        min_baseline_epochs=1,
        actions=("recover",),
    )


@functools.lru_cache(maxsize=None)
def run_detection(name):
    """Drive the pipeline over one scenario's panel.

    Returns ``[(scenario, states, recovered)]`` with one entry per
    panel seed; ``states`` is the per-epoch state string and
    ``recovered`` the per-epoch set of recovered keys.
    """
    runs = []
    for scenario, sketches in scenario_panel(name):
        pipeline = DetectionPipeline([surge_rule()], keep_events=False)
        states, recovered = [], []
        for e, (trace, sketch) in enumerate(
                zip(scenario.epoch_traces(), sketches)):
            pipeline.observe_trace(trace)
            out = pipeline.on_sketch(sketch, e)
            states.append(out["states"]["surge"])
            keys = set()
            for event in out["events"]:
                keys.update(r["key"] for r in event["recovered_keys"])
            recovered.append(keys)
        runs.append((scenario, states, recovered))
    return runs


def truth_keys(scenario, epoch):
    """Ground-truth heavy set for one epoch: the attack victim plus the
    epoch's true source heavy hitters."""
    keys = set(scenario.truths[epoch].heavy_hitter_keys(ALPHA))
    keys.add(int(scenario.events["victim"]))
    return keys


class TestAttackScenarios:
    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_confirmed_on_every_attack_epoch(self, name):
        hot = set(scenario_panel(name)[0][0].events[ATTACKS[name]])
        for scenario, states, _recovered in run_detection(name):
            for epoch in hot:
                assert states[epoch] == "confirmed", (
                    f"{name} seed {scenario.seed}: epoch {epoch} is "
                    f"{states[epoch]}, expected confirmed "
                    f"(states: {states})")

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_recovered_keys_hit_ground_truth(self, name):
        hot = set(scenario_panel(name)[0][0].events[ATTACKS[name]])
        for scenario, _states, recovered in run_detection(name):
            for epoch in hot:
                assert recovered[epoch], (
                    f"{name} seed {scenario.seed}: no keys recovered "
                    f"at confirmed epoch {epoch}")
                truth = truth_keys(scenario, epoch)
                assert recovered[epoch] & truth, (
                    f"{name} seed {scenario.seed} epoch {epoch}: none "
                    f"of {sorted(recovered[epoch])} in the ground-truth "
                    f"heavy set")

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_clean_lead_in_epochs_stay_quiet(self, name):
        """Epochs before the attack must not alert (the baseline is
        still warming on epoch 0, so IDLE is the only legal state)."""
        hot = set(scenario_panel(name)[0][0].events[ATTACKS[name]])
        for scenario, states, _recovered in run_detection(name):
            for epoch, state in enumerate(states):
                if epoch < min(hot):
                    assert state == "idle", (
                        f"{name} seed {scenario.seed}: pre-attack epoch "
                        f"{epoch} is {state}")


class TestCleanScenarios:
    @pytest.mark.parametrize("name", CLEAN)
    def test_stays_idle_throughout(self, name):
        for scenario, states, recovered in run_detection(name):
            assert set(states) == {"idle"}, (
                f"{name} seed {scenario.seed}: rule left idle "
                f"(states: {states})")
            assert not any(recovered), (
                f"{name} seed {scenario.seed}: keys recovered on a "
                f"clean workload")
