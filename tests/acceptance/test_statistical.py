"""Statistical acceptance tests: seeded end-to-end error ceilings.

Each test regenerates one paper task (Section 4's setup: Zipfian
source-IP workload, 5-second epochs) at a 256 KB memory budget over a
fixed seed panel and asserts the estimation error stays below a ceiling.

Ceilings were calibrated by running the identical seeds at the identical
budget and taking ~2-3x the worst observed value (see
``docs/observability.md`` for the calibration table), so a failure means
a genuine regression in estimation quality — not an unlucky seed.  Run
with ``pytest -m acceptance`` (excluded from the default test run).
"""

import pytest

from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    g_core,
    heavy_changes,
)
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import (
    DDoSEvent,
    SyntheticTraceConfig,
    generate_epoch_pair,
    generate_trace,
)
from repro.eval.experiments import DEFAULT_WORKLOAD
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates, relative_error

from tests.acceptance.conftest import MEMORY_BYTES, assert_ceiling, \
    build_sketch

pytestmark = pytest.mark.acceptance

WORKLOAD = DEFAULT_WORKLOAD          # 30k packets, 5k flows, skew 1.1
SEEDS = (1000, 1001, 1002, 1003, 1004)


def _sketch(seed):
    return build_sketch(seed, flows=WORKLOAD.flows)


class TestHeavyHitters:
    """Fig 4 task: L1 heavy hitters at alpha = 0.5% of link traffic."""

    ALPHA = 0.005
    FP_CEILING = 0.15   # observed: 0.0 on every seed
    FN_CEILING = 0.15

    def test_error_ceilings(self):
        fps, fns = [], []
        for seed in SEEDS:
            trace = generate_trace(WORKLOAD.epoch_config(seed))
            keys = trace.key_array(src_ip_key)
            truth = GroundTruth(trace, src_ip_key)
            true_hh = truth.heavy_hitter_keys(self.ALPHA)
            assert len(true_hh) >= 10  # the workload must pose the task
            sketch = _sketch(seed)
            sketch.update_array(keys)
            reported = {k for k, _ in g_core(sketch, self.ALPHA)}
            fp, fn = detection_rates(true_hh, reported)
            fps.append(fp)
            fns.append(fn)
        assert_ceiling(fps, self.FP_CEILING, label="hh/fp",
                       median_ceiling=0.05)
        assert_ceiling(fns, self.FN_CEILING, label="hh/fn",
                       median_ceiling=0.05)


class TestDDoSDistinctSources:
    """Fig 5 task: F0 (distinct sources) under a DDoS burst."""

    ATTACK_SOURCES = 4000
    ERR_CEILING = 0.30      # observed per-epoch max: 0.143
    MEDIAN_CEILING = 0.15

    def test_f0_error_and_detection(self):
        errors = []
        for seed in SEEDS:
            config = SyntheticTraceConfig(
                packets=WORKLOAD.packets * 2, flows=WORKLOAD.flows,
                zipf_skew=WORKLOAD.zipf_skew, duration=10.0, seed=seed,
                ddos_events=(DDoSEvent(start=5.0, end=10.0,
                                       num_sources=self.ATTACK_SOURCES,
                                       packets_per_source=2),))
            trace = generate_trace(config)
            epochs = [trace.slice_time(0.0, 5.0),
                      trace.slice_time(5.0, 10.0)]
            normal = epochs[0].distinct(src_ip_key)
            attacked = epochs[1].distinct(src_ip_key)
            threshold = (normal + attacked) / 2.0
            for epoch, is_attack in zip(epochs, (False, True)):
                sketch = _sketch(seed)
                sketch.update_array(epoch.key_array(src_ip_key))
                estimate = estimate_cardinality(sketch)
                errors.append(relative_error(
                    estimate, epoch.distinct(src_ip_key)))
                # Every epoch must land on the right side of the alarm.
                assert (estimate > threshold) == is_attack, (seed, is_attack)
        assert_ceiling(errors, self.ERR_CEILING, label="ddos/f0",
                       median_ceiling=self.MEDIAN_CEILING)


class TestChangeDetection:
    """Fig 6 task: heavy changes between adjacent epochs via sketch
    subtraction (phi = 3% of total change)."""

    PHI = 0.03
    FP_CEILING = 0.25   # observed: 0.0 on every seed
    FN_CEILING = 0.15

    def test_error_ceilings(self):
        fps, fns = [], []
        for seed in SEEDS:
            epoch_a, epoch_b = generate_epoch_pair(
                packets=WORKLOAD.packets, flows=WORKLOAD.flows,
                zipf_skew=WORKLOAD.zipf_skew, num_changes=20,
                change_factor=10.0, seed=seed, rank_lo=10, rank_hi=100)
            truth_a = GroundTruth(epoch_a, src_ip_key)
            truth_b = GroundTruth(epoch_b, src_ip_key)
            true_changes = truth_b.heavy_change_keys(truth_a, self.PHI)
            assert len(true_changes) >= 2
            half = MEMORY_BYTES // 2
            sketch_a = build_sketch(seed + 17, flows=WORKLOAD.flows,
                                    memory_bytes=half)
            sketch_b = build_sketch(seed + 17, flows=WORKLOAD.flows,
                                    memory_bytes=half)
            sketch_a.update_array(epoch_a.key_array(src_ip_key))
            sketch_b.update_array(epoch_b.key_array(src_ip_key))
            changes, _total = heavy_changes(sketch_b, sketch_a, self.PHI)
            fp, fn = detection_rates(true_changes,
                                     {k for k, _ in changes})
            fps.append(fp)
            fns.append(fn)
        assert_ceiling(fps, self.FP_CEILING, label="change/fp",
                       median_ceiling=0.0)
        assert_ceiling(fns, self.FN_CEILING, label="change/fn",
                       median_ceiling=0.0)


class TestEntropy:
    """Fig 7 task: empirical Shannon entropy of the source-IP stream."""

    ERR_CEILING = 0.05   # observed per-seed max: 0.0098

    def test_relative_error(self):
        errors = []
        for seed in SEEDS:
            trace = generate_trace(WORKLOAD.epoch_config(seed))
            truth = GroundTruth(trace, src_ip_key)
            sketch = _sketch(seed)
            sketch.update_array(trace.key_array(src_ip_key))
            estimate = estimate_entropy(sketch, base=2.0)
            errors.append(relative_error(estimate, truth.entropy(base=2.0)))
        assert_ceiling(errors, self.ERR_CEILING, label="entropy",
                       median_ceiling=0.02)


class TestBatchedQueryPath:
    """The batched engine must meet the same ceilings as the individual
    estimators above — and agree with them exactly, statistic for
    statistic, because both routes reduce over one shared snapshot."""

    ALPHA = 0.005
    FP_CEILING = 0.15
    FN_CEILING = 0.15
    F0_ERR_CEILING = 0.30
    ENTROPY_ERR_CEILING = 0.05

    def test_ceilings_and_exact_agreement(self):
        from repro.core.query import QueryEngine, Statistic

        statistics = (Statistic.heavy_hitters(self.ALPHA),
                      Statistic.cardinality(),
                      Statistic.entropy())
        fps, fns, f0_errors, h_errors = [], [], [], []
        for seed in SEEDS:
            trace = generate_trace(WORKLOAD.epoch_config(seed))
            truth = GroundTruth(trace, src_ip_key)
            sketch = _sketch(seed)
            sketch.update_array(trace.key_array(src_ip_key))
            results = QueryEngine(sketch).evaluate_many(statistics)

            # Statistic-for-statistic equality with the scalar wrappers.
            assert results["heavy_hitters"] == g_core(sketch, self.ALPHA)
            assert results["cardinality"] == estimate_cardinality(sketch)
            assert results["entropy"] == estimate_entropy(sketch, base=2.0)

            true_hh = truth.heavy_hitter_keys(self.ALPHA)
            fp, fn = detection_rates(
                true_hh, {k for k, _ in results["heavy_hitters"]})
            fps.append(fp)
            fns.append(fn)
            f0_errors.append(relative_error(
                results["cardinality"], trace.distinct(src_ip_key)))
            h_errors.append(relative_error(
                results["entropy"], truth.entropy(base=2.0)))
        assert_ceiling(fps, self.FP_CEILING, label="batched/fp")
        assert_ceiling(fns, self.FN_CEILING, label="batched/fn")
        assert_ceiling(f0_errors, self.F0_ERR_CEILING,
                       label="batched/f0")
        assert_ceiling(h_errors, self.ENTROPY_ERR_CEILING,
                       label="batched/entropy")
