"""Instrumentation overhead guard.

Two contracts from DESIGN.md §8:

1. with the default no-op registry installed, the instrumented ingest
   path costs within 5% of a raw (uninstrumented) update loop on the
   same seeded key stream;
2. with a real :class:`MetricsRegistry` installed, ingest stays under
   2x the raw loop (instrumentation is chunk-granularity, never
   per-packet, so the overhead is bounded by chunk count).

Timings use min-over-repeats (the standard way to strip scheduler
noise) with interleaved measurement, plus one retry, so the 5% bound is
a real regression tripwire rather than a coin flip.
"""

import time

import numpy as np
import pytest

from repro.core.universal import UniversalSketch
from repro.dataplane.replay import BatchIngest
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    use_registry,
)

pytestmark = pytest.mark.acceptance

PACKETS = 120_000
FLOWS = 20_000
CHUNK = 8192
REPEATS = 5


@pytest.fixture(scope="module")
def keys(zipf_keys_factory):
    return zipf_keys_factory(packets=PACKETS, flows=FLOWS, skew=1.1, seed=7)


def _sketch():
    return UniversalSketch(levels=10, rows=5, width=2048, heap_size=64,
                           seed=1)


def _time_baseline(keys):
    """The uninstrumented reference: the bulk update body, chunked the
    same way BatchIngest chunks, with no registry lookups at all."""
    sketch = _sketch()
    start = time.perf_counter()
    for lo in range(0, len(keys), CHUNK):
        chunk = keys[lo:lo + CHUNK]
        sketch._update_array(chunk, None, len(chunk))
    return time.perf_counter() - start


def _time_ingest(keys, registry=None):
    sketch = _sketch()
    ingest = BatchIngest(sketch, chunk_size=CHUNK)
    if registry is None:
        start = time.perf_counter()
        ingest.ingest_keys(keys)
        return time.perf_counter() - start
    with use_registry(registry):
        start = time.perf_counter()
        ingest.ingest_keys(keys)
        return time.perf_counter() - start


def _interleaved_minimums(keys, make_registry):
    """Min-over-repeats for baseline and ingest, measured alternately so
    machine-load drift hits both sides equally."""
    baseline, ingest = [], []
    for _ in range(REPEATS):
        baseline.append(_time_baseline(keys))
        ingest.append(_time_ingest(keys, make_registry()))
    return min(baseline), min(ingest)


def test_noop_registry_within_5_percent_of_raw(keys):
    assert get_registry() is NULL_REGISTRY  # the documented default
    _time_baseline(keys)  # warm caches / JIT-less but import-lazy paths
    _time_ingest(keys)
    ratio = None
    for _attempt in range(2):  # one retry absorbs a rogue scheduler blip
        base, noop = _interleaved_minimums(keys, lambda: None)
        ratio = noop / base
        if ratio <= 1.05:
            break
    assert ratio <= 1.05, (
        f"no-op instrumentation costs {ratio:.3f}x the raw update loop")


@pytest.mark.slow
def test_live_registry_within_2x_of_raw(keys):
    _time_baseline(keys)
    registry_box = []

    def make_registry():
        registry_box.append(MetricsRegistry())
        return registry_box[-1]

    base, instrumented = _interleaved_minimums(keys, make_registry)
    ratio = instrumented / base
    assert ratio <= 2.0, (
        f"live instrumentation costs {ratio:.3f}x the raw update loop")
    # And it actually recorded: one span per chunk on the last run.
    expected_chunks = -(-PACKETS // CHUNK)
    hist = registry_box[-1].get("univmon_ingest_chunk_seconds")
    assert hist.count == expected_chunks
