"""Cross-module property-based tests (hypothesis).

These pin down the *algebraic* invariants the system leans on — the
linearity that makes distributed merging and change detection exact,
threshold monotonicity of G-core, serialization round-trips, and trace
epoch partitioning — over randomly generated streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serialization
from repro.core.gsum import g_core, heavy_changes
from repro.core.universal import UniversalSketch

streams = st.lists(st.integers(0, 200), min_size=1, max_size=120)


def sketch_of(keys, seed=11):
    u = UniversalSketch(levels=4, rows=3, width=64, heap_size=16, seed=seed)
    u.update_array(np.array(keys, dtype=np.uint64))
    return u


class TestLinearity:
    @given(streams, streams)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = sketch_of(a).merge(sketch_of(b))
        whole = sketch_of(a + b)
        for lm, lw in zip(merged.levels, whole.levels):
            assert np.array_equal(lm.sketch.table, lw.sketch.table)
        assert merged.total_weight == whole.total_weight

    @given(streams, streams)
    @settings(max_examples=40, deadline=None)
    def test_subtract_then_add_back_is_identity(self, a, b):
        sa, sb = sketch_of(a), sketch_of(b)
        restored = sa.subtract(sb).merge(sb)
        for lr, la in zip(restored.levels, sa.levels):
            assert np.array_equal(lr.sketch.table, la.sketch.table)

    @given(streams)
    @settings(max_examples=30, deadline=None)
    def test_self_subtraction_is_empty(self, a):
        diff = sketch_of(a).subtract(sketch_of(a))
        assert diff.total_weight == 0
        for level in diff.levels:
            assert not level.sketch.table.any()


class TestGCore:
    @given(streams, st.floats(min_value=0.01, max_value=0.4),
           st.floats(min_value=1.5, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotone(self, keys, fraction, factor):
        """Raising the threshold can only shrink the reported set."""
        sketch = sketch_of(keys)
        low = {k for k, _ in g_core(sketch, fraction)}
        high = {k for k, _ in g_core(sketch, min(fraction * factor, 0.99))}
        assert high <= low

    @given(streams)
    @settings(max_examples=30, deadline=None)
    def test_reported_estimates_meet_threshold(self, keys):
        sketch = sketch_of(keys)
        threshold = 0.2 * sketch.total_weight
        for _key, est in g_core(sketch, 0.2):
            assert abs(est) >= threshold


class TestHeavyChanges:
    @given(streams, streams)
    @settings(max_examples=30, deadline=None)
    def test_direction_symmetry(self, a, b):
        """Swapping epochs flips delta signs but keeps keys and |D|."""
        sa, sb = sketch_of(a), sketch_of(b)
        fwd, d_fwd = heavy_changes(sb, sa, phi=0.2)
        rev, d_rev = heavy_changes(sa, sb, phi=0.2)
        assert d_fwd == pytest.approx(d_rev, rel=0.3, abs=2.0)
        fwd_map = dict(fwd)
        rev_map = dict(rev)
        shared = set(fwd_map) & set(rev_map)
        for key in shared:
            assert fwd_map[key] == pytest.approx(-rev_map[key], abs=1e-6)


class TestSerializationRoundTrip:
    @given(streams, st.integers(0, 1 << 30))
    @settings(max_examples=30, deadline=None)
    def test_universal_roundtrip_any_stream(self, keys, seed):
        original = sketch_of(keys, seed=seed)
        back = serialization.loads(serialization.dumps(original))
        assert back.total_weight == original.total_weight
        for lo, lb in zip(original.levels, back.levels):
            assert np.array_equal(lo.sketch.table, lb.sketch.table)


class TestTraceInvariants:
    @given(st.integers(50, 400), st.integers(5, 60),
           st.floats(min_value=0.3, max_value=2.0),
           st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_generation_invariants(self, packets, flows, skew, seed):
        from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
        trace = generate_trace(SyntheticTraceConfig(
            packets=packets, flows=flows, zipf_skew=skew, duration=3.0,
            seed=seed))
        assert abs(len(trace) - packets) <= 2
        assert np.all(np.diff(trace.timestamps) >= 0)
        assert np.all(trace.timestamps >= 0)
        assert np.all(trace.timestamps <= 3.0)

    @given(st.floats(min_value=0.2, max_value=3.0), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_epochs_partition(self, epoch_seconds, seed):
        from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
        trace = generate_trace(SyntheticTraceConfig(
            packets=300, flows=30, duration=4.0, seed=seed))
        epochs = trace.epochs(epoch_seconds)
        assert sum(len(e) for e in epochs) == len(trace)
        # Epochs are disjoint in time and ordered.
        for i, epoch in enumerate(epochs):
            if len(epoch) == 0:
                continue
            lo = trace.timestamps[0] + i * epoch_seconds
            assert np.all(epoch.timestamps >= lo - 1e-9)
            assert np.all(epoch.timestamps < lo + epoch_seconds + 1e-9)


class TestScalarVectorParity:
    """The vectorised ingest rewrite must be *bit-identical* to the
    per-packet scalar path: same Count Sketch tables, same substream
    counters, and (when the heaps are big enough to hold every distinct
    key) the same tracked key sets."""

    uint64_keys = st.lists(st.integers(0, (1 << 64) - 1),
                           min_size=1, max_size=150)

    @given(uint64_keys)
    @settings(max_examples=25, deadline=None)
    def test_universal_update_paths_agree(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        bulk = UniversalSketch(levels=4, rows=3, width=64, heap_size=256,
                               seed=11)
        scalar = UniversalSketch(levels=4, rows=3, width=64, heap_size=256,
                                 seed=11)
        bulk.update_array(arr)
        for k in keys:
            scalar.update(k)
        assert bulk.packets == scalar.packets
        for lb, ls in zip(bulk.levels, scalar.levels):
            assert np.array_equal(lb.sketch.table, ls.sketch.table)
            assert lb.packets == ls.packets
            assert lb.weight == ls.weight
            # heap_size exceeds the distinct-key count, so both paths
            # must track exactly the substream's distinct keys.
            assert set(lb.topk.keys()) == set(ls.topk.keys())

    @given(uint64_keys, st.lists(st.integers(1, 1000),
                                 min_size=150, max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_weighted_universal_update_paths_agree(self, keys, weights):
        arr = np.array(keys, dtype=np.uint64)
        w = np.array(weights[:len(keys)], dtype=np.uint64)
        bulk = UniversalSketch(levels=3, rows=3, width=32, heap_size=256,
                               seed=23)
        scalar = UniversalSketch(levels=3, rows=3, width=32, heap_size=256,
                                 seed=23)
        bulk.update_array(arr, w)
        for k, wt in zip(keys, w.tolist()):
            scalar.update(k, int(wt))
        for lb, ls in zip(bulk.levels, scalar.levels):
            assert np.array_equal(lb.sketch.table, ls.sketch.table)
            assert lb.weight == ls.weight

    @given(uint64_keys, st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_deepest_level_paths_agree(self, keys, levels):
        from repro.hashing.sampling import LevelSampler
        sampler = LevelSampler(levels, seed=3)
        vec = sampler.deepest_level_array(np.array(keys, dtype=np.uint64))
        assert vec.tolist() == [sampler.deepest_level(k) for k in keys]
