"""Tests for the OpenSketch superspreader task."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_dst_key
from repro.opensketch.superspreader import SuperSpreaderTask


def pair(src: int, dst: int) -> int:
    return (src << 32) | dst


class TestConstruction:
    def test_requires_seed(self):
        with pytest.raises(ConfigurationError):
            SuperSpreaderTask()

    def test_source_extraction(self):
        assert SuperSpreaderTask.source_of(pair(0xC0A80101, 7)) == 0xC0A80101


class TestDetection:
    def test_scanner_detected(self):
        task = SuperSpreaderTask(seed=1)
        scanner = 0x0A000001
        for dst in range(500):
            task.update(pair(scanner, dst))
        # Normal host: few destinations, many packets each.
        normal = 0x0A000002
        for _ in range(50):
            for dst in range(3):
                task.update(pair(normal, dst))
        spreaders = {src for src, _ in task.superspreaders(100)}
        assert scanner in spreaders
        assert normal not in spreaders

    def test_repeat_contacts_not_counted(self):
        task = SuperSpreaderTask(seed=2)
        src = 0x0B000001
        for _ in range(1000):
            task.update(pair(src, 42))  # same destination over and over
        assert task.distinct_destinations(src) <= 2

    def test_estimate_tracks_truth(self):
        task = SuperSpreaderTask(seed=3)
        src = 0x0C000001
        for dst in range(300):
            task.update(pair(src, dst))
        est = task.distinct_destinations(src)
        assert abs(est - 300) / 300 < 0.15

    def test_bulk_path(self):
        task = SuperSpreaderTask(seed=4)
        keys = np.array([pair(1, d) for d in range(200)], dtype=np.uint64)
        task.update_array(keys)
        assert task.distinct_destinations(1) > 150

    def test_weight_ignored(self):
        """Contact uniqueness, not bytes, drives superspreaders."""
        task = SuperSpreaderTask(seed=5)
        task.update(pair(9, 1), weight=10_000)
        assert task.distinct_destinations(9) <= 2

    def test_no_superspreaders_in_normal_traffic(self):
        rng = np.random.default_rng(6)
        task = SuperSpreaderTask(seed=7)
        # 200 hosts each contacting <= 5 destinations.
        for src in range(200):
            for dst in rng.integers(0, 5, size=5):
                task.update(pair(src + 1, int(dst)))
        assert task.superspreaders(50) == []

    def test_memory_accounts_all_parts(self):
        task = SuperSpreaderTask(rows=3, width=1024, bloom_bits=1 << 12,
                                 heap_size=16, seed=8)
        assert task.memory_bytes() == \
            (1 << 12) // 8 + 3 * 1024 * 4 + 16 * 16
