"""Tests for the OpenSketch task library (the paper's baselines)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates
from repro.opensketch.tasks import (
    ChangeDetectionTask,
    DDoSDetectionTask,
    HeavyHitterTask,
    HierarchicalHeavyHitterTask,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SyntheticTraceConfig(
        packets=12_000, flows=2_000, zipf_skew=1.2, duration=5.0, seed=41))


@pytest.fixture(scope="module")
def truth(trace):
    return GroundTruth(trace, src_ip_key)


class TestHeavyHitterTask:
    def test_finds_true_heavy_hitters(self, trace, truth):
        task = HeavyHitterTask(rows=3, width=4096, heap_size=64, seed=1)
        task.update_array(trace.key_array(src_ip_key))
        reported = {k for k, _ in task.heavy_hitters(0.01)}
        fp, fn = detection_rates(truth.heavy_hitter_keys(0.01), reported)
        assert fn == 0.0  # CM overestimates: misses are the rare failure
        assert fp < 0.5

    def test_scalar_and_bulk_totals_agree(self):
        a = HeavyHitterTask(rows=3, width=128, seed=2)
        b = HeavyHitterTask(rows=3, width=128, seed=2)
        keys = np.array([1, 1, 2, 5], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert a.total == b.total == 4

    def test_memory_includes_heap(self):
        task = HeavyHitterTask(rows=3, width=128, heap_size=16, seed=1)
        assert task.memory_bytes() == 3 * 128 * 4 + 16 * 16

    def test_update_cost_counts_query(self):
        task = HeavyHitterTask(rows=3, width=128, seed=1)
        assert task.update_cost().memory_words > 3


class TestHierarchicalHeavyHitterTask:
    def test_step_must_divide_key_bits(self):
        with pytest.raises(ConfigurationError):
            HierarchicalHeavyHitterTask(key_bits=32, step=5)

    def test_finds_elephant(self):
        task = HierarchicalHeavyHitterTask(rows=3, width=2048, seed=3)
        keys = np.concatenate([
            np.full(5000, 0xC0A80101, dtype=np.uint64),
            np.random.default_rng(0).integers(
                0, 1 << 32, size=3000).astype(np.uint64),
        ])
        task.update_array(keys)
        hh = task.heavy_hitters(0.3)
        assert [k for k, _ in hh] == [0xC0A80101]

    def test_agrees_with_truth_on_trace(self, trace, truth):
        task = HierarchicalHeavyHitterTask(rows=3, width=4096, seed=4)
        task.update_array(trace.key_array(src_ip_key))
        reported = {k for k, _ in task.heavy_hitters(0.01)}
        fp, fn = detection_rates(truth.heavy_hitter_keys(0.01), reported)
        assert fn == 0.0
        assert fp < 0.5

    def test_scalar_matches_bulk(self):
        a = HierarchicalHeavyHitterTask(rows=2, width=64, seed=5)
        b = HierarchicalHeavyHitterTask(rows=2, width=64, seed=5)
        keys = np.array([123456, 123456, 999], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.table, lb.table)

    def test_empty_returns_nothing(self):
        task = HierarchicalHeavyHitterTask(rows=2, width=64, seed=6)
        assert task.heavy_hitters(0.1) == []

    def test_cost_scales_with_levels(self):
        task = HierarchicalHeavyHitterTask(rows=3, width=64, step=4, seed=1)
        assert task.update_cost().hashes == 3 * 8  # 8 levels for 32 bits

    def test_memory_sums_levels(self):
        task = HierarchicalHeavyHitterTask(rows=3, width=64, step=8, seed=1)
        assert task.memory_bytes() == 4 * 3 * 64 * 4


class TestChangeDetectionTask:
    def test_requires_seed(self):
        with pytest.raises(ConfigurationError):
            ChangeDetectionTask()

    def test_no_report_before_two_epochs(self):
        task = ChangeDetectionTask(rows=3, width=256, seed=7)
        task.update(1, 100)
        changes, total = task.heavy_changes(0.1, np.array([1], dtype=np.uint64))
        assert changes == [] and total == 0.0

    def test_detects_surge(self):
        task = ChangeDetectionTask(rows=5, width=1024, seed=8)
        base = np.random.default_rng(1).integers(
            0, 300, size=5000).astype(np.uint64)
        task.update_array(base)
        task.advance_epoch()
        task.update_array(np.concatenate(
            [base, np.full(3000, 999, dtype=np.uint64)]))
        candidates = np.unique(np.concatenate(
            [base, np.array([999], dtype=np.uint64)]))
        changes, total = task.heavy_changes(0.3, candidates)
        assert total >= 3000
        assert changes and changes[0][0] == 999
        assert changes[0][1] > 0

    def test_detects_disappearance_with_sign(self):
        task = ChangeDetectionTask(rows=5, width=1024, seed=9)
        task.update_array(np.full(2000, 77, dtype=np.uint64))
        task.advance_epoch()
        task.update_array(np.full(100, 77, dtype=np.uint64))
        changes, _ = task.heavy_changes(
            0.3, np.array([77], dtype=np.uint64))
        assert changes and changes[0][1] < 0

    def test_memory_doubles_once_previous_exists(self):
        task = ChangeDetectionTask(rows=3, width=128, seed=10)
        m1 = task.memory_bytes()
        task.advance_epoch()
        assert task.memory_bytes() == 2 * m1


class TestDDoSDetectionTask:
    def test_method_validated(self):
        with pytest.raises(ConfigurationError):
            DDoSDetectionTask(method="magic")

    @pytest.mark.parametrize("method", ["bitmap", "hll", "bloom"])
    def test_distinct_estimate_reasonable(self, method):
        task = DDoSDetectionTask(method=method, memory_bytes=8192, seed=11)
        task.update_array(np.arange(3000, dtype=np.uint64))
        est = task.distinct_estimate()
        assert abs(est - 3000) / 3000 < 0.15

    @pytest.mark.parametrize("method", ["bitmap", "hll", "bloom"])
    def test_duplicates_ignored(self, method):
        task = DDoSDetectionTask(method=method, memory_bytes=4096, seed=12)
        for _ in range(500):
            task.update(42)
        assert task.distinct_estimate() < 5

    def test_is_victim_threshold(self):
        task = DDoSDetectionTask(method="bitmap", memory_bytes=8192, seed=13)
        task.update_array(np.arange(2000, dtype=np.uint64))
        assert task.is_victim(1000)
        assert not task.is_victim(5000)

    def test_memory_accounted(self):
        assert DDoSDetectionTask(method="bitmap",
                                 memory_bytes=4096).memory_bytes() == 4096


class TestChangeDetectionForecast:
    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            ChangeDetectionTask(seed=1, forecast_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ChangeDetectionTask(seed=1, forecast_alpha=1.5)

    def test_ewma_smooths_out_one_epoch_blip(self):
        """A one-epoch spike then return-to-normal: against the EWMA
        forecast, the *return* epoch shows less change than against the
        raw previous epoch (which contains the whole blip)."""
        base = np.random.default_rng(1).integers(
            0, 300, size=5000).astype(np.uint64)
        blip = np.concatenate([base, np.full(4000, 999, dtype=np.uint64)])

        def run(alpha):
            task = ChangeDetectionTask(rows=5, width=1024, seed=2,
                                       forecast_alpha=alpha)
            for epoch_keys in (base, base, blip):
                task.update_array(epoch_keys)
                task.advance_epoch()
            task.update_array(base)  # back to normal
            _, total = task.heavy_changes(
                0.3, np.array([999], dtype=np.uint64))
            return total

        # alpha=1.0 == last-epoch reference; alpha=0.3 remembers the
        # calmer history and reports a smaller "change" on recovery? No:
        # the EWMA still contains 0.3 of the blip, so LESS change than
        # diffing directly against the blip epoch.
        assert run(0.3) < run(1.0)

    def test_alpha_one_equals_previous_epoch_mode(self):
        base = np.arange(500, dtype=np.uint64)
        surged = np.concatenate([base, np.full(800, 42, dtype=np.uint64)])
        candidates = np.array([42], dtype=np.uint64)

        plain = ChangeDetectionTask(rows=3, width=512, seed=3)
        ewma = ChangeDetectionTask(rows=3, width=512, seed=3,
                                   forecast_alpha=1.0)
        for task in (plain, ewma):
            task.update_array(base)
            task.advance_epoch()
            task.update_array(surged)
        changes_plain, d_plain = plain.heavy_changes(0.3, candidates)
        changes_ewma, d_ewma = ewma.heavy_changes(0.3, candidates)
        assert d_plain == pytest.approx(d_ewma)
        assert changes_plain == changes_ewma

    def test_still_detects_genuine_surge(self):
        task = ChangeDetectionTask(rows=5, width=1024, seed=4,
                                   forecast_alpha=0.5)
        base = np.random.default_rng(5).integers(
            0, 200, size=3000).astype(np.uint64)
        for _ in range(3):
            task.update_array(base)
            task.advance_epoch()
        task.update_array(np.concatenate(
            [base, np.full(2500, 777, dtype=np.uint64)]))
        changes, total = task.heavy_changes(
            0.3, np.array([777], dtype=np.uint64))
        assert changes and changes[0][0] == 777
        assert total >= 2000
