"""Tests for the OpenSketch three-stage pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dataplane.keys import dst_ip_key, src_ip_key
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
from repro.opensketch.primitives import (
    ClassificationStage,
    CountingStage,
    HashingStage,
    MeasurementPipeline,
    PrefixRule,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactCounter


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SyntheticTraceConfig(
        packets=1000, flows=200, duration=2.0, seed=31))


class TestPrefixRule:
    def test_field_validated(self):
        with pytest.raises(ConfigurationError):
            PrefixRule(field="sport", value=0, prefix_len=8)

    def test_prefix_len_validated(self):
        with pytest.raises(ConfigurationError):
            PrefixRule(field="src", value=0, prefix_len=33)

    def test_mask_values(self):
        assert PrefixRule("src", 0, 0).mask() == 0
        assert PrefixRule("src", 0, 32).mask() == 0xFFFFFFFF
        assert PrefixRule("src", 0, 8).mask() == 0xFF000000

    def test_matches_array(self, trace):
        # Build a rule from an actual packet's /8 and check it matches it.
        target = int(trace.src[0])
        rule = PrefixRule("src", target, 8)
        mask = rule.matches_array(trace)
        assert mask[0]
        expected = (trace.src.astype(np.int64) >> 24) == (target >> 24)
        assert np.array_equal(mask, expected)


class TestClassification:
    def test_empty_rules_match_all(self, trace):
        stage = ClassificationStage()
        assert stage.select(trace).all()

    def test_or_semantics(self, trace):
        r1 = PrefixRule("src", int(trace.src[0]), 32)
        r2 = PrefixRule("src", int(trace.src[1]), 32)
        mask = ClassificationStage([r1, r2]).select(trace)
        assert mask.sum() >= 2


class TestPipeline:
    def test_counts_match_exact(self, trace):
        exact = ExactCounter()
        pipeline = MeasurementPipeline(
            HashingStage(src_ip_key), CountingStage(exact))
        pipeline.process_trace(trace)
        assert exact.total() == len(trace)
        assert pipeline.packets_matched == len(trace)

    def test_classification_scopes_counting(self, trace):
        target = int(trace.dst[0])
        rule = PrefixRule("dst", target, 32)
        exact = ExactCounter()
        pipeline = MeasurementPipeline(
            HashingStage(src_ip_key), CountingStage(exact),
            ClassificationStage([rule]))
        pipeline.process_trace(trace)
        expected = int((trace.dst == np.uint32(target)).sum())
        assert exact.total() == expected
        assert pipeline.packets_matched == expected
        assert pipeline.packets_processed == len(trace)

    def test_scalar_path(self):
        exact = ExactCounter()
        pipeline = MeasurementPipeline(
            HashingStage(src_ip_key), CountingStage(exact))
        pipeline.process_key(7)
        assert exact.total() == 1

    def test_memory_and_cost_delegate(self):
        cm = CountMinSketch(rows=3, width=64, seed=1)
        pipeline = MeasurementPipeline(
            HashingStage(src_ip_key), CountingStage(cm))
        assert pipeline.memory_bytes() == cm.memory_bytes()
        assert pipeline.update_cost() == cm.update_cost()

    def test_bulk_sketch_used_when_available(self, trace):
        cm = CountMinSketch(rows=3, width=256, seed=2)
        pipeline = MeasurementPipeline(
            HashingStage(src_ip_key), CountingStage(cm))
        pipeline.process_trace(trace)
        assert cm.l1_estimate() == len(trace)
