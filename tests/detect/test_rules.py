"""Tests for the detection-rule grammar, AST, and baselines."""

import pytest

from repro.errors import ConfigurationError
from repro.detect.rules import (And, Baseline, Comparison, Not, Or, Rule,
                                RuleSyntaxError, parse_condition)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


class TestParsing:
    def test_absolute_comparison(self):
        c = parse_condition("cardinality > 5000")
        assert isinstance(c, Comparison)
        assert c.metric == "cardinality"
        assert c.op == ">"
        assert c.threshold == 5000.0

    def test_all_absolute_operators(self):
        for op in (">", ">=", "<", "<="):
            c = parse_condition(f"l1 {op} 3.5")
            assert c.op == op and c.threshold == 3.5

    def test_spikes_with_x_and_baseline(self):
        c = parse_condition("cardinality spikes > 4x baseline")
        assert c.op == "spikes"
        assert c.threshold == 4.0

    def test_spikes_sugar_optional(self):
        # the '>' and trailing 'baseline' are both optional sugar
        assert parse_condition("cardinality spikes 4 x") == \
            parse_condition("cardinality spikes > 4x baseline")

    def test_drops_percent(self):
        c = parse_condition("entropy drops > 30%")
        assert c.op == "drops"
        assert c.threshold == 30.0

    def test_rises_percent(self):
        c = parse_condition("packets rises > 150%")
        assert c.op == "rises"
        assert c.threshold == 150.0

    def test_feature_tag(self):
        c = parse_condition("entropy(src) drops > 30%")
        assert c.feature == "src"
        assert c.metric == "entropy"

    def test_metric_parameter(self):
        c = parse_condition("moment:1.5 > 100")
        assert c.metric == "moment:1.5"
        c = parse_condition("hh_count:0.01 > 3")
        assert c.metric == "hh_count:0.01"

    def test_issue_headline_expression(self):
        c = parse_condition(
            "entropy(src) drops > 30% AND cardinality spikes > 4x baseline")
        assert isinstance(c, And)
        assert len(c.children) == 2
        assert c.metrics() == {"entropy", "cardinality"}

    def test_keywords_case_insensitive(self):
        a = parse_condition("l1 > 1 AND l2 > 2 OR NOT f2 > 3")
        b = parse_condition("l1 > 1 and l2 > 2 or not f2 > 3")
        assert a == b

    def test_precedence_and_binds_tighter_than_or(self):
        c = parse_condition("l1 > 1 or l2 > 2 and f2 > 3")
        assert isinstance(c, Or)
        assert isinstance(c.children[1], And)

    def test_parentheses_override_precedence(self):
        c = parse_condition("(l1 > 1 or l2 > 2) and f2 > 3")
        assert isinstance(c, And)
        assert isinstance(c.children[0], Or)

    def test_not_parses(self):
        c = parse_condition("not cardinality > 10")
        assert isinstance(c, Not)

    def test_describe_round_trips_through_parser(self):
        source = ("entropy(src) drops > 30% and "
                  "(cardinality spikes > 4x baseline or packets > 1000)")
        c = parse_condition(source)
        assert parse_condition(c.describe()) == c


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "cardinality >",
        "> 5",
        "cardinality ~ 5",
        "bogus_metric > 5",
        "cardinality > 5 extra",
        "(cardinality > 5",
        "cardinality spikes x",
        "and and",
        "cardinality > 5 and",
        "entropy(src",
        "cardinality !! 5",
    ])
    def test_rejected(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse_condition(bad)

    def test_spike_ratio_validated(self):
        with pytest.raises(RuleSyntaxError):
            Comparison("cardinality", "spikes", 0.0)

    def test_percent_range_validated(self):
        with pytest.raises(RuleSyntaxError):
            Comparison("entropy", "drops", 0.0)
        with pytest.raises(RuleSyntaxError):
            Comparison("entropy", "drops", 1000.0)


class TestEvaluation:
    def test_absolute(self):
        c = parse_condition("cardinality > 100")
        assert c.evaluate({"cardinality": 150.0}, {})
        assert not c.evaluate({"cardinality": 50.0}, {})

    def test_missing_value_is_false(self):
        c = parse_condition("cardinality > 100")
        assert not c.evaluate({}, {})
        assert not c.evaluate({"cardinality": None}, {})

    def test_spikes_needs_baseline(self):
        c = parse_condition("cardinality spikes > 2x baseline")
        assert not c.evaluate({"cardinality": 500.0}, {})  # still warming
        assert c.evaluate({"cardinality": 500.0}, {"cardinality": 200.0})
        assert not c.evaluate({"cardinality": 300.0}, {"cardinality": 200.0})

    def test_drops_relative_to_baseline(self):
        c = parse_condition("entropy drops > 30%")
        baselines = {"entropy": 10.0}
        assert c.evaluate({"entropy": 6.0}, baselines)    # -40%
        assert not c.evaluate({"entropy": 8.0}, baselines)  # -20%

    def test_rises_relative_to_baseline(self):
        c = parse_condition("packets rises > 100%")
        baselines = {"packets": 1000.0}
        assert c.evaluate({"packets": 2500.0}, baselines)
        assert not c.evaluate({"packets": 1500.0}, baselines)

    def test_boolean_combinators(self):
        c = parse_condition("l1 > 1 and not l2 > 5")
        assert c.evaluate({"l1": 2.0, "l2": 3.0}, {})
        assert not c.evaluate({"l1": 2.0, "l2": 9.0}, {})


class TestBaseline:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Baseline(alpha=0.0)
        with pytest.raises(ConfigurationError):
            Baseline(min_epochs=0)

    def test_warmup_gate(self):
        b = Baseline(min_epochs=2)
        assert b.current() is None
        b.observe(10.0)
        assert b.current() is None      # one sample, needs two
        b.observe(10.0)
        assert b.current() == pytest.approx(10.0)

    def test_ewma_update(self):
        b = Baseline(alpha=0.5, min_epochs=1)
        b.observe(10.0)
        b.observe(20.0)
        assert b.current() == pytest.approx(15.0)


class TestRule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Rule(name="", when="l1 > 1")
        with pytest.raises(ConfigurationError):
            Rule(name="r", when="l1 > 1", confirm_epochs=0)
        with pytest.raises(ConfigurationError):
            Rule(name="r", when="l1 > 1", cooldown_epochs=0)
        with pytest.raises(ConfigurationError):
            Rule(name="r", when="l1 > 1", actions=("explode",))
        with pytest.raises(RuleSyntaxError):
            Rule(name="r", when="nope > 1")

    def test_baseline_learned_from_clean_epochs(self):
        rule = Rule(name="r", when="cardinality spikes > 2x baseline",
                    min_baseline_epochs=1)
        assert not rule.evaluate({"cardinality": 100.0})  # warms baseline
        assert rule.evaluate({"cardinality": 500.0})      # 5x -> trigger

    def test_baseline_frozen_while_triggering(self):
        """A ramping attack must not drag its own baseline up."""
        rule = Rule(name="r", when="cardinality spikes > 2x baseline",
                    min_baseline_epochs=1, baseline_alpha=1.0)
        rule.evaluate({"cardinality": 100.0})
        assert rule.evaluate({"cardinality": 300.0})
        # Had the baseline absorbed 300, 650 would be only 2.2x; against
        # the frozen baseline of 100 it is 6.5x either way — so probe
        # with a value that distinguishes: 550 vs baseline 100 = 5.5x,
        # vs baseline 300 it would be 1.8x (no trigger).
        assert rule.evaluate({"cardinality": 550.0})

    def test_reset_forgets_baselines(self):
        rule = Rule(name="r", when="cardinality spikes > 2x baseline",
                    min_baseline_epochs=1)
        rule.evaluate({"cardinality": 100.0})
        rule.reset()
        assert not rule.evaluate({"cardinality": 500.0})  # warming again


if HAVE_HYPOTHESIS:
    _metric = st.sampled_from(
        ["cardinality", "entropy", "l1", "l2", "f2", "packets"])
    _number = st.floats(min_value=0.001, max_value=1e6,
                        allow_nan=False, allow_infinity=False)

    @st.composite
    def _expressions(draw, depth=0):
        if depth >= 3 or draw(st.booleans()):
            metric = draw(_metric)
            kind = draw(st.sampled_from(["abs", "spikes", "drops", "rises"]))
            if kind == "abs":
                op = draw(st.sampled_from([">", ">=", "<", "<="]))
                return f"{metric} {op} {draw(_number):g}"
            if kind == "spikes":
                return f"{metric} spikes > {draw(_number):g}x baseline"
            percent = draw(st.floats(min_value=1, max_value=999,
                                     allow_nan=False))
            return f"{metric} {kind} > {percent:g}%"
        left = draw(_expressions(depth=depth + 1))
        right = draw(_expressions(depth=depth + 1))
        joiner = draw(st.sampled_from(["and", "or"]))
        if draw(st.booleans()):
            return f"not ({left}) {joiner} {right}"
        return f"({left}) {joiner} ({right})"

    class TestParserProperties:
        @settings(max_examples=60, deadline=None)
        @given(_expressions())
        def test_generated_expressions_parse(self, source):
            condition = parse_condition(source)
            assert condition.metrics()

        @settings(max_examples=60, deadline=None)
        @given(_expressions())
        def test_describe_is_idempotent_through_the_parser(self, source):
            """describe() output re-parses, and is stable from then on.

            (Exact AST equality only holds for thresholds ``%g`` renders
            losslessly — the hand-written round-trip test covers that;
            here arbitrary floats may round once, then must fix.)
            """
            first = parse_condition(source).describe()
            assert parse_condition(first).describe() == first

        @settings(max_examples=60, deadline=None)
        @given(_expressions(),
               st.dictionaries(_metric, _number, min_size=6),
               st.dictionaries(_metric, _number, min_size=6))
        def test_evaluation_is_total_and_boolean(self, source, values,
                                                 baselines):
            condition = parse_condition(source)
            result = condition.evaluate(values, baselines)
            assert isinstance(result, bool)
