"""Tests for the detection pipeline app (wiring, actions, specs, obs)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.controlplane.controller import Controller
from repro.dataplane.trace import Trace
from repro.detect import (DetectionPipeline, Rule, RuleState, default_rules,
                          load_rules, rules_from_spec)
from repro.obs import MetricsRegistry, use_registry
from repro.core.universal import UniversalSketch


def sketch_of(keys, seed=3):
    u = UniversalSketch(levels=6, rows=5, width=512, heap_size=32, seed=seed)
    u.update_array(np.asarray(keys, dtype=np.uint64))
    return u


def trace_of(sources, dst=0x0A000001, t0=0.0):
    n = len(sources)
    return Trace(
        np.linspace(t0, t0 + 0.9, n) if n else np.empty(0),
        np.asarray(sources, dtype=np.uint32),
        np.full(n, dst, dtype=np.uint32),
        np.full(n, 1000, dtype=np.uint16),
        np.full(n, 80, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8),
    )


def quiet_keys(rng, n=800):
    return rng.integers(1, 2_000, size=n)


def surge_keys(rng, n=800, fresh=4000):
    return np.concatenate([quiet_keys(rng, n),
                           rng.integers(1 << 20, (1 << 20) + 10 ** 6,
                                        size=fresh)])


def spike_rule(**overrides):
    kwargs = dict(name="surge", when="cardinality spikes > 2x baseline",
                  confirm_epochs=1, cooldown_epochs=1)
    kwargs.update(overrides)
    return Rule(**kwargs)


def feed(pipeline, epochs, seed=3):
    """Run key arrays through the pipeline as sketch-only epochs."""
    results = []
    for i, keys in enumerate(epochs):
        results.append(pipeline.on_sketch(sketch_of(keys, seed=seed), i))
    return results


class TestConfiguration:
    def test_needs_rules(self):
        with pytest.raises(ConfigurationError):
            DetectionPipeline([])

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ConfigurationError):
            DetectionPipeline([spike_rule(), spike_rule()])

    def test_app_protocol_name(self):
        assert DetectionPipeline([spike_rule()]).name == "detect"


class TestDetection:
    def test_quiet_epochs_stay_idle(self):
        rng = np.random.default_rng(0)
        pipe = DetectionPipeline([spike_rule()])
        results = feed(pipe, [quiet_keys(rng) for _ in range(4)])
        for result in results:
            assert result["states"] == {"surge": "idle"}
            assert result["alerting"] == []
        assert pipe.events == []

    def test_surge_confirms_and_recovers(self):
        rng = np.random.default_rng(1)
        pipe = DetectionPipeline([spike_rule(cooldown_epochs=2)])
        results = feed(pipe, [quiet_keys(rng), quiet_keys(rng),
                              surge_keys(rng), quiet_keys(rng),
                              quiet_keys(rng)])
        states = [r["states"]["surge"] for r in results]
        assert states == ["idle", "idle", "confirmed", "recovering", "idle"]
        assert results[2]["alerting"] == ["surge"]

    def test_confirm_epochs_debounce(self):
        rng = np.random.default_rng(2)
        pipe = DetectionPipeline([spike_rule(confirm_epochs=2)])
        results = feed(pipe, [quiet_keys(rng), surge_keys(rng),
                              surge_keys(rng)])
        states = [r["states"]["surge"] for r in results]
        assert states == ["idle", "triggered", "confirmed"]

    def test_rules_evaluated_independently(self):
        rng = np.random.default_rng(3)
        never = Rule(name="never", when="packets > 1e12",
                     confirm_epochs=1, cooldown_epochs=1)
        pipe = DetectionPipeline([spike_rule(), never])
        results = feed(pipe, [quiet_keys(rng), surge_keys(rng)])
        assert results[1]["states"] == {"surge": "confirmed",
                                        "never": "idle"}

    def test_events_have_values_and_baselines(self):
        rng = np.random.default_rng(4)
        pipe = DetectionPipeline([spike_rule()])
        feed(pipe, [quiet_keys(rng), surge_keys(rng)])
        [event] = [e for e in pipe.events if e.state_to == "confirmed"]
        assert event.rule == "surge"
        assert event.values["cardinality"] > 0
        assert event.baselines["cardinality"] > 0
        payload = event.to_dict()
        assert payload["epoch"] == 1 and payload["to"] == "confirmed"

    def test_reset_clears_everything(self):
        rng = np.random.default_rng(5)
        pipe = DetectionPipeline([spike_rule()])
        feed(pipe, [quiet_keys(rng), surge_keys(rng)])
        pipe.reset()
        assert pipe.states()["surge"] is RuleState.IDLE
        assert pipe.events == []
        # baselines forgot too: the next epoch warms, not triggers
        result = pipe.on_sketch(sketch_of(surge_keys(rng)), 0)
        assert result["states"]["surge"] == "idle"


class TestMetricResolution:
    def test_derived_metrics_resolve(self):
        rule = Rule(name="derived",
                    when="packets > 1 and hh_count:0.2 >= 1 "
                         "and max_share > 0.1",
                    confirm_epochs=1, cooldown_epochs=1)
        pipe = DetectionPipeline([rule])
        keys = np.concatenate([np.full(500, 7, dtype=np.uint64),
                               np.arange(100, dtype=np.uint64)])
        result = pipe.on_sketch(sketch_of(keys), 0)
        values = result["values"]
        assert values["packets"] == pytest.approx(600)
        assert values["hh_count:0.2"] >= 1
        assert 0.1 < values["max_share"] <= 1.0
        assert result["states"]["derived"] == "confirmed"

    def test_total_change_warms_up_then_resolves(self):
        rule = Rule(name="churn", when="total_change > 500",
                    confirm_epochs=1, cooldown_epochs=1)
        pipe = DetectionPipeline([rule])
        base = np.arange(300, dtype=np.uint64)
        first = pipe.on_sketch(sketch_of(base, seed=9), 0)
        assert first["values"]["total_change"] is None
        assert first["states"]["churn"] == "idle"
        surged = np.concatenate([base, np.full(2000, 777, dtype=np.uint64)])
        second = pipe.on_sketch(sketch_of(surged, seed=9), 1)
        assert second["values"]["total_change"] > 500
        assert second["states"]["churn"] == "confirmed"


class TestActions:
    def test_snapshot_recovery_without_trace(self):
        """Sketch-only hosts (remote coordinator) still get keys."""
        rng = np.random.default_rng(6)
        pipe = DetectionPipeline([spike_rule()], recover_fraction=0.2)
        heavy = np.concatenate([surge_keys(rng),
                                np.full(3000, 42, dtype=np.uint64)])
        feed(pipe, [quiet_keys(rng), heavy])
        [event] = [e for e in pipe.events if e.state_to == "confirmed"]
        streams = {r["stream"] for r in event.recovered_keys}
        assert streams == {"snapshot"}
        assert 42 in {r["key"] for r in event.recovered_keys}

    def test_trace_recovery_names_the_heavy_source_and_destination(self):
        rng = np.random.default_rng(7)
        pipe = DetectionPipeline([spike_rule()], recover_fraction=0.1)
        attacker, victim = 0x0B0B0B0B, 0xC0A80001
        quiet = trace_of(rng.integers(1, 2_000, size=800))
        pipe.observe_trace(quiet)
        pipe.on_sketch(sketch_of(quiet.src), 0)
        surge_srcs = np.concatenate([
            rng.integers(1, 2_000, size=800),
            rng.integers(1 << 20, (1 << 20) + 10 ** 6, size=3000),
            np.full(4000, attacker, dtype=np.uint64)])
        surge = trace_of(surge_srcs, dst=victim)
        pipe.observe_trace(surge)
        pipe.on_sketch(sketch_of(surge.src), 1)
        [event] = [e for e in pipe.events if e.state_to == "confirmed"]
        raw = {(r["feature"], r["key"]) for r in event.recovered_keys
               if r["stream"] == "raw"}
        diff = {(r["feature"], r["key"]) for r in event.recovered_keys
                if r["stream"] == "difference"}
        assert ("src", attacker) in raw
        assert ("dst", victim) in raw
        assert ("src", attacker) in diff  # fresh this epoch

    def test_zoom_refines_on_confirmed_epochs(self):
        rng = np.random.default_rng(8)
        pipe = DetectionPipeline([spike_rule()])
        quiet = trace_of(rng.integers(1, 2_000, size=800))
        pipe.observe_trace(quiet)
        pipe.on_sketch(sketch_of(quiet.src), 0)
        hot = 0x0B000000 | rng.integers(0, 1 << 24, size=4000)
        surge = trace_of(np.concatenate([rng.integers(1, 2_000, size=800),
                                         hot]))
        pipe.observe_trace(surge)
        pipe.on_sketch(sketch_of(surge.src), 1)
        [event] = [e for e in pipe.events if e.state_to == "confirmed"]
        assert (0x0B000000, 8) in event.zoom_regions

    def test_actions_opt_out(self):
        rng = np.random.default_rng(9)
        rule = spike_rule(actions=())
        pipe = DetectionPipeline([rule])
        assert pipe.recovery is None and pipe.zoom_action is None
        feed(pipe, [quiet_keys(rng), surge_keys(rng)])
        [event] = [e for e in pipe.events if e.state_to == "confirmed"]
        assert event.recovered_keys == [] and event.zoom_regions == []


class TestControllerIntegration:
    def test_controller_feeds_trace_and_collects_results(self):
        rng = np.random.default_rng(10)
        quiet = rng.integers(1, 2_000, size=800)
        surge = np.concatenate([quiet,
                                rng.integers(1 << 20, (1 << 20) + 10 ** 6,
                                             size=4000)])
        chunks = []
        for i, sources in enumerate([quiet, quiet, surge]):
            chunks.append(trace_of(sources, t0=float(i)))
        trace = Trace.concat(chunks)
        factory = lambda: UniversalSketch(levels=6, rows=3, width=512,  # noqa
                                          heap_size=32, seed=5)
        controller = Controller(sketch_factory=factory, epoch_seconds=1.0)
        controller.register(DetectionPipeline([spike_rule()]))
        reports = controller.run_trace(trace)
        assert [r["detect"]["states"]["surge"] for r in reports] == \
            ["idle", "idle", "confirmed"]
        # the controller handed the pipeline the raw trace: trace-backed
        # recovery streams, not the snapshot fallback
        confirmed = [e for r in reports for e in r["detect"]["events"]
                     if e["to"] == "confirmed"]
        assert confirmed and confirmed[0]["recovered_keys"]
        assert {r["stream"] for r in confirmed[0]["recovered_keys"]} \
            <= {"raw", "difference"}
        controller.close()

    def test_controller_reset_propagates(self):
        pipe = DetectionPipeline([spike_rule()])
        factory = lambda: UniversalSketch(levels=6, rows=3, width=512,  # noqa
                                          heap_size=32, seed=5)
        controller = Controller(sketch_factory=factory, epoch_seconds=1.0)
        controller.register(pipe)
        rng = np.random.default_rng(11)
        feed(pipe, [quiet_keys(rng), surge_keys(rng)])
        controller.reset()
        assert pipe.states()["surge"] is RuleState.IDLE
        controller.close()


class TestObservability:
    def test_detect_metric_families_emitted(self):
        rng = np.random.default_rng(12)
        with use_registry(MetricsRegistry()) as registry:
            pipe = DetectionPipeline([spike_rule()])
            feed(pipe, [quiet_keys(rng), surge_keys(rng), quiet_keys(rng)])
            names = set(registry.families())
        assert "univmon_detect_epochs_total" in names
        assert "univmon_detect_rules" in names
        assert "univmon_detect_transitions_total" in names
        assert "univmon_detect_confirmed_epochs_total" in names
        assert "univmon_detect_eval_seconds" in names
        assert "univmon_detect_keys_recovered_total" in names
        assert "univmon_detect_action_seconds" in names


class TestRuleSpecs:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            rules_from_spec({})
        with pytest.raises(ConfigurationError):
            rules_from_spec({"rules": []})
        with pytest.raises(ConfigurationError):
            rules_from_spec({"rules": [{"name": "x"}]})     # missing when
        with pytest.raises(ConfigurationError):
            rules_from_spec({"rules": [{"name": "x", "when": "l1 > 1",
                                        "bogus": 1}]})

    def test_spec_round_trip(self):
        rules = rules_from_spec({"rules": [
            {"name": "a", "when": "cardinality spikes > 4x baseline",
             "confirm_epochs": 3, "actions": ["recover"]},
            {"name": "b", "when": "entropy drops > 30%"},
        ]})
        assert [r.name for r in rules] == ["a", "b"]
        assert rules[0].confirm_epochs == 3
        assert rules[0].actions == ("recover",)

    def test_load_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "j", "when": "l2 > 10"}]}))
        [rule] = load_rules(str(path))
        assert rule.name == "j"

    def test_load_toml(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\n'
            'name = "t"\n'
            'when = "entropy(src) drops > 30% and '
            'cardinality spikes > 4x baseline"\n'
            'confirm_epochs = 2\n'
            'actions = ["zoom", "recover"]\n')
        [rule] = load_rules(str(path))
        assert rule.name == "t"
        assert rule.metrics() == {"entropy", "cardinality"}

    def test_default_rules_parse(self):
        rules = default_rules()
        assert rules
        DetectionPipeline(rules)    # constructible with actions wired
