"""Tests for the per-rule detection state machine."""

import random

import pytest

from repro.detect.state import RuleState, RuleStateMachine


def drive(machine, outcomes):
    """Step through a trigger sequence; returns the visited states."""
    return [machine.step(bool(o))[1] for o in outcomes]


class TestValidation:
    def test_confirm_epochs_validated(self):
        with pytest.raises(ValueError):
            RuleStateMachine(confirm_epochs=0)

    def test_cooldown_epochs_validated(self):
        with pytest.raises(ValueError):
            RuleStateMachine(cooldown_epochs=0)


class TestTransitionTable:
    """Every edge of the IDLE/TRIGGERED/CONFIRMED/RECOVERING diagram."""

    def test_starts_idle(self):
        assert RuleStateMachine().state is RuleState.IDLE

    def test_idle_stays_idle_on_quiet(self):
        m = RuleStateMachine()
        assert m.step(False) == (RuleState.IDLE, RuleState.IDLE)

    def test_idle_to_triggered_on_first_hot_epoch(self):
        m = RuleStateMachine(confirm_epochs=2)
        assert m.step(True) == (RuleState.IDLE, RuleState.TRIGGERED)
        assert not m.active

    def test_confirm_epochs_one_skips_triggered(self):
        m = RuleStateMachine(confirm_epochs=1)
        assert m.step(True) == (RuleState.IDLE, RuleState.CONFIRMED)
        assert m.active

    def test_triggered_to_confirmed_after_confirm_epochs(self):
        m = RuleStateMachine(confirm_epochs=3)
        states = drive(m, [1, 1, 1])
        assert states == [RuleState.TRIGGERED, RuleState.TRIGGERED,
                          RuleState.CONFIRMED]

    def test_one_noisy_epoch_does_not_alert(self):
        """The debouncing the ISSUE asks for: a single hot epoch under
        confirm_epochs=2 falls straight back to IDLE."""
        m = RuleStateMachine(confirm_epochs=2)
        assert drive(m, [1, 0]) == [RuleState.TRIGGERED, RuleState.IDLE]
        assert not m.active

    def test_interrupted_confirmation_restarts_count(self):
        m = RuleStateMachine(confirm_epochs=2)
        states = drive(m, [1, 0, 1, 1])
        assert states == [RuleState.TRIGGERED, RuleState.IDLE,
                          RuleState.TRIGGERED, RuleState.CONFIRMED]

    def test_confirmed_stays_confirmed_while_hot(self):
        m = RuleStateMachine(confirm_epochs=1)
        assert drive(m, [1, 1, 1]) == [RuleState.CONFIRMED] * 3

    def test_confirmed_to_recovering_on_quiet(self):
        m = RuleStateMachine(confirm_epochs=1, cooldown_epochs=2)
        assert drive(m, [1, 0]) == [RuleState.CONFIRMED,
                                    RuleState.RECOVERING]

    def test_cooldown_one_ends_alert_immediately(self):
        m = RuleStateMachine(confirm_epochs=1, cooldown_epochs=1)
        assert drive(m, [1, 0]) == [RuleState.CONFIRMED, RuleState.IDLE]

    def test_recovering_to_idle_after_cooldown(self):
        m = RuleStateMachine(confirm_epochs=1, cooldown_epochs=3)
        states = drive(m, [1, 0, 0, 0])
        assert states == [RuleState.CONFIRMED, RuleState.RECOVERING,
                          RuleState.RECOVERING, RuleState.IDLE]

    def test_flare_up_during_cooldown_reconfirms_without_delay(self):
        m = RuleStateMachine(confirm_epochs=3, cooldown_epochs=2)
        drive(m, [1, 1, 1, 0])       # confirmed, then recovering
        assert m.state is RuleState.RECOVERING
        assert m.step(True) == (RuleState.RECOVERING, RuleState.CONFIRMED)

    def test_reset_returns_to_idle(self):
        m = RuleStateMachine(confirm_epochs=1)
        drive(m, [1, 1])
        m.reset()
        assert m.state is RuleState.IDLE
        # and the hot-epoch counter restarted too
        m2 = RuleStateMachine(confirm_epochs=2)
        drive(m2, [1])
        m2.reset()
        assert m2.step(True)[1] is RuleState.TRIGGERED


class TestSeededNoise:
    """Invariants under long random trigger sequences."""

    def make_sequence(self, seed, n=500, hot_probability=0.3):
        rng = random.Random(seed)
        return [rng.random() < hot_probability for _ in range(n)]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_confirmed_only_after_confirm_epochs_consecutive_hots(self, seed):
        confirm = 3
        m = RuleStateMachine(confirm_epochs=confirm, cooldown_epochs=2)
        outcomes = self.make_sequence(seed)
        streak = 0
        was_alerting = False
        for hot in outcomes:
            previous, current = m.step(hot)
            streak = streak + 1 if hot else 0
            if current is RuleState.CONFIRMED and not was_alerting \
                    and previous in (RuleState.IDLE, RuleState.TRIGGERED):
                # A *fresh* confirmation requires the full streak.
                assert streak >= confirm
            was_alerting = current in (RuleState.CONFIRMED,
                                       RuleState.RECOVERING)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_idle_reached_only_after_cooldown_quiet_epochs(self, seed):
        cooldown = 3
        m = RuleStateMachine(confirm_epochs=1, cooldown_epochs=cooldown)
        quiet_streak = 0
        for hot in self.make_sequence(seed, hot_probability=0.5):
            previous, current = m.step(hot)
            quiet_streak = 0 if hot else quiet_streak + 1
            if previous in (RuleState.CONFIRMED, RuleState.RECOVERING) \
                    and current is RuleState.IDLE:
                assert quiet_streak >= cooldown

    @pytest.mark.parametrize("seed", [8, 9])
    def test_no_illegal_transitions(self, seed):
        legal = {
            RuleState.IDLE: {RuleState.IDLE, RuleState.TRIGGERED,
                             RuleState.CONFIRMED},
            RuleState.TRIGGERED: {RuleState.TRIGGERED, RuleState.CONFIRMED,
                                  RuleState.IDLE},
            RuleState.CONFIRMED: {RuleState.CONFIRMED, RuleState.RECOVERING,
                                  RuleState.IDLE},
            RuleState.RECOVERING: {RuleState.RECOVERING, RuleState.CONFIRMED,
                                   RuleState.IDLE},
        }
        m = RuleStateMachine(confirm_epochs=2, cooldown_epochs=2)
        for hot in self.make_sequence(seed):
            previous, current = m.step(hot)
            assert current in legal[previous], (previous, current)

    def test_quiet_sequence_never_leaves_idle(self):
        m = RuleStateMachine()
        assert set(drive(m, [0] * 100)) == {RuleState.IDLE}
