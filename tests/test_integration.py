"""End-to-end integration tests: one universal sketch, every task.

The paper's central claim, exercised literally: a *single* data-plane
sketch supports heavy hitters, DDoS detection, change detection, and
entropy estimation with accuracy comparable to the per-task custom
sketches, at comparable memory.
"""

import numpy as np
import pytest

from repro.controlplane import (
    CardinalityApp,
    ChangeDetectionApp,
    Controller,
    DDoSApp,
    EntropyApp,
    HeavyHitterApp,
)
from repro.dataplane.keys import src_ip_key
from repro.dataplane.trace import (
    DDoSEvent,
    SyntheticTraceConfig,
    generate_trace,
)
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates, relative_error
from repro.core.universal import UniversalSketch

BUDGET = 512 * 1024


@pytest.fixture(scope="module")
def story_trace():
    """20 s of traffic: steady-state, then a DDoS burst in [10, 15)."""
    return generate_trace(SyntheticTraceConfig(
        packets=60_000, flows=6_000, zipf_skew=1.1, duration=20.0, seed=77,
        ddos_events=(DDoSEvent(start=10.0, end=15.0, num_sources=5000,
                               packets_per_source=2),),
    ))


@pytest.fixture(scope="module")
def reports(story_trace):
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        BUDGET, levels=8, rows=5, heap_size=64, seed=13)
    controller = Controller(sketch_factory=factory,
                            key_function=src_ip_key, epoch_seconds=5.0)
    controller.register(HeavyHitterApp(alpha=0.005))
    controller.register(DDoSApp(threshold_k=6000))
    controller.register(ChangeDetectionApp(phi=0.05))
    controller.register(EntropyApp())
    controller.register(CardinalityApp())
    return controller.run_trace(story_trace), story_trace


class TestSingleSketchManyTasks:
    def test_four_epochs_reported(self, reports):
        rs, _ = reports
        assert len(rs) == 4
        for r in rs:
            assert set(r.results) == {"heavy_hitters", "ddos", "change",
                                      "entropy", "cardinality"}

    def test_heavy_hitters_match_truth_per_epoch(self, reports):
        rs, trace = reports
        for r, epoch in zip(rs, trace.epochs(5.0)):
            truth = GroundTruth(epoch, src_ip_key)
            true_keys = truth.heavy_hitter_keys(0.005)
            fp, fn = detection_rates(true_keys,
                                     set(r["heavy_hitters"]["keys"]))
            assert fn <= 0.2, f"epoch {r.epoch_index}: fn={fn}"
            assert fp <= 0.2, f"epoch {r.epoch_index}: fp={fp}"

    def test_ddos_fires_exactly_during_attack(self, reports):
        rs, _ = reports
        flags = [r["ddos"]["victim"] for r in rs]
        # Attack spans [10, 15) = epoch 2 only.
        assert flags == [False, False, True, False]

    def test_cardinality_tracks_truth(self, reports):
        rs, trace = reports
        for r, epoch in zip(rs, trace.epochs(5.0)):
            true_distinct = epoch.distinct(src_ip_key)
            err = relative_error(r["cardinality"]["distinct"], true_distinct)
            assert err < 0.3, f"epoch {r.epoch_index}: err={err}"

    def test_entropy_tracks_truth(self, reports):
        rs, trace = reports
        for r, epoch in zip(rs, trace.epochs(5.0)):
            truth = GroundTruth(epoch, src_ip_key)
            err = relative_error(r["entropy"]["entropy"], truth.entropy())
            assert err < 0.15, f"epoch {r.epoch_index}: err={err}"

    def test_change_app_spikes_at_attack_boundaries(self, reports):
        """Total change must peak when the attack starts and stops."""
        rs, _ = reports
        changes = [r["change"]["total_change"] for r in rs]
        assert changes[2] > 2 * changes[1]  # attack onset
        assert changes[3] > 2 * changes[1]  # attack teardown

    def test_memory_budget_respected(self):
        u = UniversalSketch.for_memory_budget(BUDGET, levels=8, rows=5,
                                              heap_size=64, seed=13)
        assert u.memory_bytes() <= BUDGET


class TestSketchMergeAcrossEpochs:
    def test_daywide_view_from_epoch_sketches(self, story_trace):
        """Merging all epoch sketches == monitoring the whole trace."""
        factory = lambda: UniversalSketch(  # noqa: E731
            levels=8, rows=5, width=2048, heap_size=64, seed=21)
        epoch_sketches = []
        for epoch in story_trace.epochs(5.0):
            u = factory()
            u.update_array(epoch.key_array(src_ip_key))
            epoch_sketches.append(u)
        merged = epoch_sketches[0]
        for u in epoch_sketches[1:]:
            merged = merged.merge(u)
        whole = factory()
        whole.update_array(story_trace.key_array(src_ip_key))
        assert merged.total_weight == whole.total_weight
        np.testing.assert_array_equal(merged.levels[0].sketch.table,
                                      whole.levels[0].sketch.table)
