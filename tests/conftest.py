"""Shared fixtures: deterministic traces, seeded RNGs, Zipf key streams,
and a whole-suite hang watchdog."""

import faulthandler
import os
import random
import signal

import numpy as np
import pytest

from repro.dataplane.trace import SyntheticTraceConfig, generate_trace

# --------------------------------------------------------------------- #
# hang watchdog (every test, not just the network suite)
# --------------------------------------------------------------------- #

_TIMEOUT_SECONDS = int(os.environ.get(
    "REPRO_TEST_TIMEOUT",
    os.environ.get("REPRO_NETWORK_TEST_TIMEOUT", "120")))


@pytest.fixture(autouse=True)
def _test_watchdog():
    """Fail any test that outruns the watchdog instead of hanging CI.

    SIGALRM raises TimeoutError inside the test (clean traceback, normal
    teardown); the faulthandler backstop fires later and hard-exits with
    all thread stacks if even the signal cannot be delivered — e.g. a
    wedged C extension call that never returns to the interpreter.
    Tune with REPRO_TEST_TIMEOUT (seconds).
    """
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no watchdog
        yield
        return
    faulthandler.dump_traceback_later(_TIMEOUT_SECONDS + 30, exit=True)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_TIMEOUT_SECONDS}s watchdog "
            f"(set REPRO_TEST_TIMEOUT to adjust)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
        faulthandler.cancel_dump_traceback_later()


# --------------------------------------------------------------------- #
# seeded randomness
# --------------------------------------------------------------------- #

@pytest.fixture()
def make_rng():
    """Factory for seeded numpy generators: ``make_rng(seed)``."""
    return lambda seed=0: np.random.default_rng(seed)


@pytest.fixture()
def rng(make_rng):
    """The default deterministic numpy generator (seed 0)."""
    return make_rng(0)


@pytest.fixture()
def py_rng():
    """A deterministic stdlib ``random.Random`` (seed 0)."""
    return random.Random(0)


@pytest.fixture(scope="session")
def zipf_keys_factory():
    """Shared generator for Zipf-weighted ``uint64`` key streams.

    Keys are the flow ranks ``1..flows`` drawn with probability
    proportional to ``rank**-skew`` — the workload shape every
    statistical test in the repo uses.  Deterministic per seed.
    """

    def make(packets=20_000, flows=2_000, skew=1.2, seed=7):
        gen = np.random.default_rng(seed)
        ranks = np.arange(1, flows + 1)
        probs = ranks ** -float(skew)
        probs /= probs.sum()
        return gen.choice(ranks, size=packets, p=probs).astype(np.uint64)

    return make


# --------------------------------------------------------------------- #
# shared traces
# --------------------------------------------------------------------- #

@pytest.fixture(scope="session")
def small_trace():
    """A 8k-packet, 1.5k-flow Zipf trace (5 s) reused across tests."""
    return generate_trace(SyntheticTraceConfig(
        packets=8_000, flows=1_500, zipf_skew=1.1, duration=5.0, seed=12345))


@pytest.fixture(scope="session")
def tiny_trace():
    """A very small trace for fast structural tests."""
    return generate_trace(SyntheticTraceConfig(
        packets=500, flows=80, zipf_skew=1.2, duration=2.0, seed=99))
