"""Shared fixtures: small deterministic traces and sketches."""

import pytest

from repro.dataplane.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="session")
def small_trace():
    """A 8k-packet, 1.5k-flow Zipf trace (5 s) reused across tests."""
    return generate_trace(SyntheticTraceConfig(
        packets=8_000, flows=1_500, zipf_skew=1.1, duration=5.0, seed=12345))


@pytest.fixture(scope="session")
def tiny_trace():
    """A very small trace for fast structural tests."""
    return generate_trace(SyntheticTraceConfig(
        packets=500, flows=80, zipf_skew=1.2, duration=2.0, seed=99))
