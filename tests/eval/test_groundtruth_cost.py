"""Tests for ground truth computation and the op-cost model."""

import numpy as np
import pytest

from repro.dataplane.keys import src_ip_key
from repro.eval.cost import DEFAULT_COST_MODEL, CostModel
from repro.eval.groundtruth import GroundTruth
from repro.sketches.base import UpdateCost


class TestGroundTruth:
    def test_totals(self, small_trace):
        gt = GroundTruth(small_trace, src_ip_key)
        assert gt.total == len(small_trace)
        assert gt.distinct == small_trace.distinct(src_ip_key)

    def test_heavy_hitters_actually_heavy(self, small_trace):
        gt = GroundTruth(small_trace, src_ip_key)
        alpha = 0.01
        threshold = alpha * gt.total
        for key in gt.heavy_hitter_keys(alpha):
            assert gt.frequency(key) >= threshold

    def test_entropy_bounds(self, small_trace):
        import math
        gt = GroundTruth(small_trace, src_ip_key)
        assert 0 <= gt.entropy() <= math.log2(gt.distinct)

    def test_moment_one_is_total(self, small_trace):
        gt = GroundTruth(small_trace, src_ip_key)
        assert gt.moment(1) == gt.total

    def test_g_sum_identity_is_total(self, small_trace):
        gt = GroundTruth(small_trace, src_ip_key)
        assert gt.g_sum(lambda x: x) == gt.total

    def test_change_truth_between_epochs(self, small_trace):
        epochs = small_trace.epochs(2.5)
        a, b = GroundTruth(epochs[0], src_ip_key), \
            GroundTruth(epochs[1], src_ip_key)
        d = b.total_change(a)
        assert d > 0
        heavy = b.heavy_change_keys(a, phi=0.01)
        # Every reported heavy change must actually exceed the threshold.
        diff = b.counter.difference(a.counter)
        for key in heavy:
            assert abs(diff[key]) >= 0.01 * d

    def test_union_keys_covers_both(self, small_trace):
        epochs = small_trace.epochs(2.5)
        a, b = GroundTruth(epochs[0], src_ip_key), \
            GroundTruth(epochs[1], src_ip_key)
        union = set(b.union_keys(a).tolist())
        assert set(a.counter.counts) <= union
        assert set(b.counter.counts) <= union


class TestCostModel:
    def test_cycles_linear_in_ops(self):
        model = CostModel(cycles_per_hash=10, cycles_per_counter_update=2,
                          cycles_per_memory_word=5)
        cost = UpdateCost(hashes=3, counter_updates=4, memory_words=6)
        assert model.cycles(cost) == 30 + 8 + 30

    def test_cycles_per_packet(self):
        model = DEFAULT_COST_MODEL
        cost = UpdateCost(hashes=10, counter_updates=10, memory_words=10)
        assert model.cycles_per_packet(cost, 10) == \
            pytest.approx(model.cycles(cost) / 10)

    def test_zero_packets_guarded(self):
        assert DEFAULT_COST_MODEL.cycles_per_packet(UpdateCost(), 0) == 0.0

    def test_update_cost_addition_and_scaling(self):
        a = UpdateCost(hashes=1, counter_updates=2, memory_words=3)
        b = UpdateCost(hashes=10, counter_updates=20, memory_words=30)
        assert a + b == UpdateCost(11, 22, 33)
        assert a.scaled(4) == UpdateCost(4, 8, 12)
