"""Tests for the detection/error metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    detection_rates,
    f1_score,
    precision_recall,
    relative_error,
)


class TestDetectionRates:
    def test_perfect_detection(self):
        assert detection_rates({1, 2}, {1, 2}) == (0.0, 0.0)

    def test_all_missed(self):
        fp, fn = detection_rates({1, 2}, set())
        assert (fp, fn) == (0.0, 1.0)

    def test_all_spurious(self):
        fp, fn = detection_rates(set(), {1, 2})
        assert (fp, fn) == (1.0, 0.0)

    def test_partial(self):
        fp, fn = detection_rates({1, 2, 3, 4}, {3, 4, 5})
        assert fp == pytest.approx(1 / 3)
        assert fn == pytest.approx(2 / 4)

    def test_accepts_iterables(self):
        assert detection_rates([1, 1, 2], iter([2])) == (0.0, 0.5)

    @given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
    @settings(max_examples=100)
    def test_property_rates_in_unit_interval(self, truth, reported):
        fp, fn = detection_rates(truth, reported)
        assert 0.0 <= fp <= 1.0 and 0.0 <= fn <= 1.0


class TestPrecisionRecallF1:
    def test_complements(self):
        truth, reported = {1, 2, 3}, {2, 3, 4}
        fp, fn = detection_rates(truth, reported)
        precision, recall = precision_recall(truth, reported)
        assert precision == pytest.approx(1 - fp)
        assert recall == pytest.approx(1 - fn)

    def test_f1_perfect(self):
        assert f1_score({1}, {1}) == 1.0

    def test_f1_both_empty_is_one(self):
        assert f1_score(set(), set()) == 1.0

    def test_f1_disjoint_is_zero(self):
        assert f1_score({1}, {2}) == 0.0

    @given(st.sets(st.integers(0, 30), min_size=1),
           st.sets(st.integers(0, 30), min_size=1))
    @settings(max_examples=100)
    def test_property_f1_bounds(self, truth, reported):
        assert 0.0 <= f1_score(truth, reported) <= 1.0


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10, 10) == 0.0

    def test_symmetric_magnitude(self):
        assert relative_error(8, 10) == pytest.approx(0.2)
        assert relative_error(12, 10) == pytest.approx(0.2)

    def test_zero_truth_falls_back_to_absolute(self):
        assert relative_error(3, 0) == 3.0

    def test_negative_truth_uses_magnitude(self):
        assert relative_error(-8, -10) == pytest.approx(0.2)
