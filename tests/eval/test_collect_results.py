"""Tests for the EXPERIMENTS.md result-splicing script."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "collect_results.py"


@pytest.fixture(scope="module")
def collect():
    spec = importlib.util.spec_from_file_location("collect_results",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSplice:
    def test_marker_replaced_with_table(self, collect, tmp_path,
                                        monkeypatch):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4_heavy_hitters.txt").write_text("THE TABLE\nrow")
        monkeypatch.setattr(collect, "RESULTS", results)
        out = collect.splice("before\n<!-- RESULT:fig4 -->\nafter")
        assert "THE TABLE" in out
        assert "<!-- RESULT:fig4 -->" in out  # marker survives
        assert out.index("THE TABLE") < out.index("after")

    def test_idempotent(self, collect, tmp_path, monkeypatch):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4_heavy_hitters.txt").write_text("v1")
        monkeypatch.setattr(collect, "RESULTS", results)
        once = collect.splice("<!-- RESULT:fig4 -->")
        (results / "fig4_heavy_hitters.txt").write_text("v2")
        twice = collect.splice(once)
        assert "v2" in twice and "v1" not in twice
        assert twice.count("```text") == 1

    def test_missing_file_yields_placeholder(self, collect, tmp_path,
                                             monkeypatch):
        monkeypatch.setattr(collect, "RESULTS", tmp_path / "nope")
        out = collect.splice("<!-- RESULT:fig5 -->")
        assert "run pytest benchmarks/" in out

    def test_unknown_marker_untouched(self, collect):
        text = "<!-- RESULT:mystery -->"
        assert collect.splice(text) == text

    def test_json_marker_spliced_as_json_block(self, collect, tmp_path,
                                               monkeypatch):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_query.json").write_text('{"speedup": 7.5}')
        monkeypatch.setattr(collect, "RESULTS", results)
        out = collect.splice("<!-- RESULT:bench-query -->")
        assert "```json" in out and '"speedup": 7.5' in out
        # idempotent for json blocks too
        (results / "BENCH_query.json").write_text('{"speedup": 8.0}')
        again = collect.splice(out)
        assert '"speedup": 8.0' in again and '"speedup": 7.5' not in again
        assert again.count("```json") == 1

    def test_repo_experiments_markers_all_known(self, collect):
        """Every marker in the real EXPERIMENTS.md must have a source."""
        experiments = collect.EXPERIMENTS.read_text()
        import re
        known = {**collect.SOURCES, **collect.JSON_SOURCES}
        for match in re.finditer(r"<!-- RESULT:([\w-]+) -->", experiments):
            assert match.group(1) in known, match.group(1)
