"""Fast sanity runs of the figure experiments (tiny workloads).

These verify the experiment *harness* (workload wiring, paired seeds,
metric plumbing) and the coarse qualitative shapes; the full-size
reproductions live in ``benchmarks/``.
"""

import pytest

from repro.eval.experiments import (
    DEFAULT_WORKLOAD,
    WorkloadSpec,
    ablation_heap_size,
    ablation_levels,
    fig4_heavy_hitters,
    fig5_ddos,
    fig6_change_detection,
    fig7_entropy,
    overhead_cycles,
)

TINY = WorkloadSpec(packets=4_000, flows=800, zipf_skew=1.1)


class TestFig4:
    def test_reports_both_systems(self):
        points = fig4_heavy_hitters(memory_kb=[256], runs=2, workload=TINY)
        metrics = points[0].metrics
        assert set(metrics) == {"univmon_fp", "univmon_fn",
                                "opensketch_fp", "opensketch_fn"}

    def test_low_error_at_generous_memory(self):
        points = fig4_heavy_hitters(memory_kb=[1024], runs=3, workload=TINY)
        m = points[0].metrics
        assert m["univmon_fn"].median <= 0.25
        assert m["opensketch_fn"].median <= 0.25


class TestFig5:
    def test_detection_and_error_reported(self):
        points = fig5_ddos(memory_kb=[512], runs=2, workload=TINY,
                           attack_sources=1500)
        m = points[0].metrics
        assert set(m) == {"univmon_err", "opensketch_err",
                          "univmon_detect_err", "opensketch_detect_err"}
        assert m["opensketch_err"].median < 0.2  # bitmap is accurate here

    def test_univmon_error_reasonable(self):
        points = fig5_ddos(memory_kb=[1024], runs=3, workload=TINY,
                           attack_sources=1500)
        assert points[0].metrics["univmon_err"].median < 0.4


class TestFig6:
    def test_univmon_detects_changes(self):
        points = fig6_change_detection(memory_kb=[512], runs=3,
                                       workload=TINY, num_changes=8,
                                       change_factor=12.0)
        m = points[0].metrics
        assert m["univmon_fn"].median <= 0.5
        assert m["univmon_fp"].median <= 0.5


class TestFig7:
    def test_univmon_beats_coarse_sampling_eventually(self):
        points = fig7_entropy(memory_kb=[512], runs=3, workload=TINY)
        m = points[0].metrics
        assert m["univmon_err"].median < 0.15
        assert m["sampling_err"].median < 0.5


class TestOverhead:
    def test_suite_ratio_below_one(self):
        """The paper's headline: one UnivMon instance costs less than the
        suite of custom sketches it replaces."""
        result = overhead_cycles(workload=TINY, epochs=2)
        assert result.ratio < 1.0

    def test_per_task_breakdown_sums(self):
        result = overhead_cycles(workload=TINY, epochs=2)
        assert sum(result.opensketch_per_task_cycles.values()) == \
            pytest.approx(result.opensketch_suite_cycles)

    def test_hh_is_dominant_opensketch_cost(self):
        """The hierarchical HH task dominates the custom suite's cost —
        the structural reason UnivMon wins on the suite."""
        result = overhead_cycles(workload=TINY, epochs=2)
        per = result.opensketch_per_task_cycles
        assert per["hh"] > per["change"] > per["ddos"]


class TestAblations:
    def test_levels_sweep_shapes(self):
        points = ablation_levels(level_counts=[2, 10], runs=2, workload=TINY)
        few, many = points[0].metrics, points[1].metrics
        # Too few levels biases F0 badly; enough levels fixes it.
        assert many["f0_err"].median < few["f0_err"].median

    def test_heap_sweep_runs(self):
        points = ablation_heap_size(heap_sizes=[16, 64], runs=2,
                                    workload=TINY)
        assert all("f0_err" in p.metrics for p in points)
