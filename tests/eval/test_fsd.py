"""Flow-size-distribution ground truth, WMRD metric, and the MRAC
end-to-end check on a realistic trace."""

import numpy as np
import pytest

from repro.dataplane.keys import src_ip_key
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import wmrd
from repro.sketches.mrac import MRACSketch


class TestWMRD:
    def test_identical_is_zero(self):
        assert wmrd([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_is_two(self):
        assert wmrd([10, 0], [0, 10]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert wmrd([], []) == 0.0
        assert wmrd([0, 0], [0, 0]) == 0.0

    def test_scale_of_partial_overlap(self):
        # |5-10|/( (5+10)/2 ) = 5/7.5
        assert wmrd([5], [10]) == pytest.approx(2 / 3)


class TestGroundTruthFSD:
    def test_counts_per_size(self, tiny_trace):
        truth = GroundTruth(tiny_trace, src_ip_key)
        phi = truth.flow_size_distribution(max_size=50)
        # Total flows match, total packets match (modulo clamping).
        assert phi.sum() == truth.distinct
        if phi[50] == 0:  # no clamped flows: packet mass preserved
            assert (np.arange(51) * phi).sum() == truth.total

    def test_clamping(self):
        from repro.dataplane.trace import Trace
        from repro.dataplane.packet import Packet, FiveTuple
        packets = [Packet(flow=FiveTuple(1, 2, 3, 4, 6), timestamp=0.0)
                   for _ in range(10)]
        trace = Trace.from_packets(packets)
        truth = GroundTruth(trace, src_ip_key)
        phi = truth.flow_size_distribution(max_size=4)
        assert phi[4] == 1  # the size-10 flow clamps into the last bucket


class TestMRACOnTrace:
    def test_wmrd_small_at_low_load(self, small_trace):
        truth = GroundTruth(small_trace, src_ip_key)
        sketch = MRACSketch(counters=16384, seed=9, max_size=40,
                            em_iterations=15)
        sketch.update_array(small_trace.key_array(src_ip_key))
        phi = sketch.estimate_distribution()
        true_phi = truth.flow_size_distribution(max_size=40)
        error = wmrd(phi[1:], true_phi[1:])
        assert error < 0.35

    def test_em_beats_raw_histogram_at_load(self, small_trace):
        truth = GroundTruth(small_trace, src_ip_key)
        sketch = MRACSketch(counters=2048, seed=10, max_size=40,
                            em_iterations=15)
        sketch.update_array(small_trace.key_array(src_ip_key))
        true_phi = truth.flow_size_distribution(max_size=40)

        phi = sketch.estimate_distribution()
        raw = np.zeros(41)
        for value, count in sketch.observed_histogram().items():
            raw[min(value, 40)] += count
        assert wmrd(phi[1:], true_phi[1:]) < wmrd(raw[1:], true_phi[1:])
