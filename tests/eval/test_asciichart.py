"""Tests for the terminal chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.asciichart import chart_sweep, render_chart
from repro.eval.runner import SweepPoint, aggregate


class TestRenderChart:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart({})
        with pytest.raises(ConfigurationError):
            render_chart({"a": []})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(0, 0), (1, 1)] for i in range(9)}
        with pytest.raises(ConfigurationError):
            render_chart(series)

    def test_log_x_needs_positive(self):
        with pytest.raises(ConfigurationError):
            render_chart({"a": [(0.0, 1.0), (1.0, 2.0)]}, log_x=True)

    def test_contains_marks_and_legend(self):
        out = render_chart({"err": [(1, 0.5), (2, 0.1)]}, width=30,
                           height=8, title="T")
        assert out.startswith("T")
        assert "o" in out
        assert "o=err" in out

    def test_extremes_land_on_borders(self):
        out = render_chart({"a": [(1, 0.0), (10, 1.0)]}, width=20,
                           height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        # max y (1.0) on the first grid row, min y on the last.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_axis_labels_rendered(self):
        out = render_chart({"a": [(1, 2), (3, 4)]}, x_label="kb",
                           y_label="err")
        assert "x: kb" in out and "y: err" in out

    def test_flat_series_does_not_crash(self):
        out = render_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "o" in out

    def test_two_series_distinct_marks(self):
        out = render_chart({"a": [(1, 1), (2, 2)],
                            "b": [(1, 2), (2, 1)]})
        assert "o=a" in out and "x=b" in out


class TestChartSweep:
    def test_charts_medians(self):
        points = [
            SweepPoint(x=32, metrics={"err": aggregate([0.5, 0.6])}),
            SweepPoint(x=2048, metrics={"err": aggregate([0.05])}),
        ]
        out = chart_sweep(points, ["err"], title="fig")
        assert out.startswith("fig")
        assert "o=err" in out

    def test_missing_metric_skipped(self):
        points = [SweepPoint(x=32, metrics={"err": aggregate([0.5])})]
        out = chart_sweep(points, ["err", "missing"])
        assert "missing" not in out
