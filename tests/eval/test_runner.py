"""Tests for the median/std sweep runner and table formatting."""

import pytest

from repro.eval.runner import SweepPoint, TrialStats, aggregate, format_table, run_sweep


class TestAggregate:
    def test_median_and_std(self):
        stats = aggregate([1.0, 2.0, 3.0])
        assert stats.median == 2.0
        assert stats.std == pytest.approx(0.8165, abs=1e-3)
        assert stats.runs == 3

    def test_single_value(self):
        stats = aggregate([5.0])
        assert stats.median == 5.0 and stats.std == 0.0

    def test_str_format(self):
        assert "±" in str(aggregate([1.0, 2.0]))


class TestRunSweep:
    def test_runs_trial_per_x_and_seed(self):
        calls = []

        def trial(x, seed):
            calls.append((x, seed))
            return {"metric": x + seed}

        points = run_sweep([1, 2], trial, runs=3, base_seed=100)
        assert len(calls) == 6
        assert {s for _, s in calls} == {100, 101, 102}
        assert len(points) == 2
        assert points[0].metrics["metric"].runs == 3

    def test_paired_seeds_across_x(self):
        """Same run index gets the same seed at every x (paired trials)."""
        seen = {}

        def trial(x, seed):
            seen.setdefault(x, []).append(seed)
            return {"m": 0.0}

        run_sweep([10, 20], trial, runs=4)
        assert seen[10] == seen[20]

    def test_multiple_metrics_collected(self):
        points = run_sweep([1], lambda x, s: {"a": 1.0, "b": 2.0}, runs=2)
        assert set(points[0].metrics) == {"a", "b"}


class TestFormatTable:
    def test_contains_all_rows_and_metrics(self):
        points = [
            SweepPoint(x=128, metrics={"err": aggregate([0.1, 0.2])}),
            SweepPoint(x=256, metrics={"err": aggregate([0.05])}),
        ]
        table = format_table(points, ["err"], x_label="kb", title="T")
        assert table.startswith("T")
        assert "128" in table and "256" in table
        assert "err" in table

    def test_missing_metric_rendered_as_dash(self):
        points = [SweepPoint(x=1, metrics={})]
        table = format_table(points, ["missing"])
        assert "-" in table
