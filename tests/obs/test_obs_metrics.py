"""Metric-type semantics: monotonicity, conservation, merge, registry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
    to_dict,
    use_registry,
)

FINITE = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
POSITIVE = st.floats(allow_nan=False, allow_infinity=False,
                     min_value=0, max_value=1e9)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)
        assert c.value == 0

    @given(st.lists(POSITIVE, max_size=50))
    def test_monotone_under_any_increment_sequence(self, amounts):
        c = Counter("x_total")
        last = 0.0
        for amount in amounts:
            c.inc(amount)
            assert c.value >= last
            last = c.value


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8
        assert g.touched

    def test_untouched_until_written(self):
        assert not Gauge("x").touched


class TestHistogram:
    def test_bounds_validated(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0), (0.0, float("inf"))):
            with pytest.raises(ConfigurationError):
                Histogram("h", bounds=bad)

    def test_observation_placement(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(0.5)   # <= 1
        h.observe(1.0)   # inclusive upper bound
        h.observe(5.0)   # <= 10
        h.observe(50.0)  # overflow
        assert h.bucket_counts == [2, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(56.5)

    @given(st.lists(FINITE, max_size=200))
    def test_bucket_count_conservation(self, values):
        """Every observation lands in exactly one bucket."""
        h = Histogram("h", bounds=(-10.0, 0.0, 1e3, 1e9))
        for v in values:
            h.observe(v)
        assert sum(h.bucket_counts) == h.count == len(values)
        assert h.cumulative_counts()[-1] == h.count
        assert math.isclose(h.sum, sum(values), rel_tol=1e-9, abs_tol=1e-9)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g", level="1") is reg.gauge("g", level="1")
        assert reg.gauge("g", level="1") is not reg.gauge("g", level="2")
        assert len(reg) == 3

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a="1", b="2") is reg.counter("c", b="2",
                                                             a="1")

    def test_type_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        reg.histogram("h", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            reg.histogram("h", buckets=(2.0,))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("0bad")
        with pytest.raises(ConfigurationError):
            reg.gauge("ok", **{"9bad": "1"})

    def test_histogram_buckets_default_shared_per_family(self):
        reg = MetricsRegistry()
        first = reg.histogram("h", buckets=(1.0, 2.0), op="a")
        second = reg.histogram("h", op="b")  # inherits family buckets
        assert second.bounds == first.bounds

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        reg.counter("present")
        assert reg.get("present") is not None
        assert len(reg) == 1

    def test_clear_family_drops_every_label_set(self):
        reg = MetricsRegistry()
        for shard in range(4):
            reg.counter("pkts_total", shard=str(shard)).inc(10)
        reg.gauge("other").set(1)
        assert reg.clear_family("pkts_total") == 4
        assert reg.get("pkts_total", shard="0") is None
        assert reg.get("other") is not None
        # the family's type registration survives: same kind recreates,
        # a conflicting kind is still rejected
        assert reg.kind("pkts_total") == "counter"
        with pytest.raises(ConfigurationError):
            reg.gauge("pkts_total")
        reg.counter("pkts_total", shard="0").inc(1)
        assert reg.get("pkts_total", shard="0").value == 1

    def test_clear_family_missing_is_harmless(self):
        assert MetricsRegistry().clear_family("nope") == 0
        assert NullRegistry().clear_family("nope") == 0


def _apply(reg, ops):
    """Replay (kind, name-index, value) observation ops onto a registry."""
    for kind, idx, value in ops:
        if kind == "counter":
            reg.counter(f"c{idx}_total").inc(abs(value))
        elif kind == "gauge":
            reg.gauge(f"g{idx}").set(value)
        else:
            reg.histogram(f"h{idx}", buckets=(0.0, 1.0, 100.0)).observe(value)


OPS = st.lists(
    st.tuples(st.sampled_from(["counter", "gauge", "histogram"]),
              st.integers(min_value=0, max_value=3), FINITE),
    max_size=60)


class TestMerge:
    @settings(max_examples=50)
    @given(OPS, st.integers(min_value=0, max_value=60))
    def test_merge_equals_sequential_observation(self, ops, cut):
        """Observing a stream split across two registries, then merging,
        is indistinguishable from observing it all in one registry.

        Histogram sums are the one field where "indistinguishable" is
        up to float rounding: the two sides accumulate the same values
        in a different association order, so they can differ in the
        last ulp (e.g. (0.03 + 0.5) - 0.5 vs 0.03 + (0.5 - 0.5)).
        Counts, buckets, counters, and gauges must match exactly.
        """
        cut = min(cut, len(ops))
        merged_input_a, merged_input_b = MetricsRegistry(), MetricsRegistry()
        sequential = MetricsRegistry()
        _apply(merged_input_a, ops[:cut])
        _apply(merged_input_b, ops[cut:])
        _apply(sequential, ops)
        merged_dict = to_dict(merged_input_a.merge(merged_input_b))
        sequential_dict = to_dict(sequential)
        for name, hist in merged_dict["histograms"].items():
            assert hist.pop("sum") == pytest.approx(
                sequential_dict["histograms"][name].pop("sum"),
                rel=1e-9, abs=1e-9)
        assert merged_dict == sequential_dict

    def test_merge_requires_matching_histogram_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_keeps_untouched_gauge_from_left(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(7)
        b.gauge("g")  # created but never written
        assert a.merge(b).get("g").value == 7


class TestNullRegistry:
    def test_shared_noop_metrics(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        reg.counter("a").inc(5)
        assert reg.counter("a").value == 0
        reg.gauge("g").set(3)
        assert reg.gauge("g").value == 0
        reg.histogram("h").observe(1)
        assert reg.histogram("h").count == 0
        assert not reg.enabled
        assert len(reg) == 0
        assert list(reg.metrics()) == []
        assert to_dict(reg) == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_null_span_records_nothing(self):
        reg = NullRegistry()
        with reg.span("s") as span:
            pass
        assert span.elapsed == 0.0


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_returns_previous(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as scoped:
            assert scoped is reg
            assert get_registry() is reg
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY
