"""Exporter contracts: text exposition, JSON snapshot, round trip."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    parse_text,
    to_dict,
    to_json,
    to_text,
)

FINITE = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
NAME = st.sampled_from(["univmon_a_total", "univmon_b", "repro_c_seconds",
                        "d:colon_total"])
LABEL_VALUE = st.text(alphabet="abcdefghij0123456789_.", min_size=0,
                      max_size=6)


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("univmon_packets_total", help="packets ingested").inc(1234)
    reg.counter("univmon_evictions_total", level="0").inc(7)
    reg.counter("univmon_evictions_total", level="1").inc(9)
    reg.gauge("univmon_heap_occupancy", level="0").set(64)
    reg.gauge("univmon_rate", help="pkts/sec").set(123456.75)
    h = reg.histogram("univmon_update_seconds", help="update latency",
                      buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.005, 0.05, 2.0):
        h.observe(v)
    return reg


class TestText:
    def test_exposition_shape(self):
        text = to_text(_sample_registry())
        assert "# TYPE univmon_packets_total counter" in text
        assert "# HELP univmon_packets_total packets ingested" in text
        assert "univmon_packets_total 1234" in text
        assert 'univmon_evictions_total{level="0"} 7' in text
        assert 'univmon_heap_occupancy{level="0"} 64' in text
        assert "# TYPE univmon_update_seconds histogram" in text
        assert 'univmon_update_seconds_bucket{le="0.001"} 1' in text
        assert 'univmon_update_seconds_bucket{le="0.01"} 3' in text
        assert 'univmon_update_seconds_bucket{le="+Inf"} 5' in text
        assert "univmon_update_seconds_count 5" in text
        assert text.endswith("\n")

    def test_bucket_series_is_cumulative(self):
        text = to_text(_sample_registry())
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
                  if line.startswith("univmon_update_seconds_bucket")]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_empty_registry_renders_empty(self):
        assert to_text(MetricsRegistry()) == ""


class TestJson:
    def test_json_matches_dict(self):
        reg = _sample_registry()
        assert json.loads(to_json(reg)) == to_dict(reg)

    def test_dict_shape(self):
        snap = to_dict(_sample_registry())
        assert snap["counters"]["univmon_packets_total"] == 1234
        hist = snap["histograms"]["univmon_update_seconds"]
        assert hist["count"] == 5
        assert hist["buckets"]["+Inf"] == 5
        assert hist["buckets"]["0.01"] == 3


class TestRoundTrip:
    def test_sample_round_trip(self):
        reg = _sample_registry()
        assert parse_text(to_text(reg)) == to_dict(reg)

    @settings(max_examples=50)
    @given(st.lists(
        st.tuples(st.sampled_from(["counter", "gauge", "histogram"]),
                  NAME, LABEL_VALUE, FINITE),
        max_size=40))
    def test_round_trip_property(self, ops):
        """parse_text(to_text(r)) == to_dict(r) for arbitrary contents."""
        reg = MetricsRegistry()
        for kind, name, label_value, value in ops:
            labels = {"who": label_value} if label_value else {}
            try:
                if kind == "counter":
                    reg.counter(name, **labels).inc(abs(value))
                elif kind == "gauge":
                    reg.gauge(name, **labels).set(value)
                else:
                    reg.histogram(name, buckets=(0.0, 1e3),
                                  **labels).observe(value)
            except ConfigurationError:
                # Same name drawn with two kinds — skip the second use.
                continue
        assert parse_text(to_text(reg)) == to_dict(reg)
        assert json.loads(to_json(reg)) == to_dict(reg)

    def test_parser_rejects_untyped_samples(self):
        with pytest.raises(ConfigurationError):
            parse_text("univmon_mystery 3\n")

    def test_parser_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_text("# TYPE x counter\n}{ nonsense\n")
