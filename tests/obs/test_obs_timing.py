"""Span timing against a deterministic fake clock."""

from repro.obs import MetricsRegistry, NULL_SPAN, Span


class FakeClock:
    """perf_counter stand-in advancing by a scripted step per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_span_records_elapsed_into_histogram():
    reg = MetricsRegistry(clock=FakeClock(step=0.25))
    with reg.span("op_seconds", buckets=(0.1, 0.5, 1.0)) as span:
        pass
    assert span.elapsed == 0.25
    hist = reg.get("op_seconds")
    assert hist.count == 1
    assert hist.bucket_counts == [0, 1, 0, 0]
    assert hist.sum == 0.25


def test_span_records_even_when_block_raises():
    reg = MetricsRegistry(clock=FakeClock(step=2.0))
    try:
        with reg.span("op_seconds", buckets=(1.0, 10.0)):
            raise ValueError("boom")
    except ValueError:
        pass
    assert reg.get("op_seconds").count == 1


def test_span_reusable_and_labelled():
    clock = FakeClock(step=1.0)
    reg = MetricsRegistry(clock=clock)
    for _ in range(3):
        with reg.span("op_seconds", buckets=(10.0,), op="query"):
            pass
    hist = reg.get("op_seconds", op="query")
    assert hist.count == 3
    assert hist.sum == 3.0


def test_standalone_span_uses_injected_clock():
    class Sink:
        def __init__(self):
            self.values = []

        def observe(self, value):
            self.values.append(value)

    sink = Sink()
    with Span(sink, clock=FakeClock(step=0.5)) as span:
        pass
    assert span.elapsed == 0.5
    assert sink.values == [0.5]


def test_null_span_is_inert():
    before = NULL_SPAN.elapsed
    with NULL_SPAN as span:
        pass
    assert span is NULL_SPAN
    assert NULL_SPAN.elapsed == before == 0.0
