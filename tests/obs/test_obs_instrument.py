"""Instrumentation wiring: sketches, ingest, controller, health tracker."""

import numpy as np
import pytest

from repro.controlplane.apps.cardinality import CardinalityApp
from repro.controlplane.apps.heavy_hitters import HeavyHitterApp
from repro.controlplane.controller import Controller
from repro.core.universal import UniversalSketch
from repro.dataplane.replay import BatchIngest
from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
from repro.network.health import HealthTracker
from repro.obs import (
    MetricsRegistry,
    observe_sketch,
    use_registry,
)
from repro.sketches.topk import TopK


def _small_sketch():
    return UniversalSketch(levels=4, rows=3, width=128, heap_size=8, seed=3)


def _keys(n=2000, flows=300, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, flows, size=n).astype(np.uint64)


class TestTopKChurnCounters:
    def test_scalar_offer_taxonomy(self):
        topk = TopK(capacity=2)
        assert topk.offer(1, 10.0)       # fill
        assert topk.offer(2, 20.0)       # fill
        assert not topk.offer(3, 5.0)    # too small: rejection
        assert topk.offer(4, 30.0)       # displaces key 1: eviction
        assert topk.offer(2, 25.0)       # tracked key re-offer: retained
        assert topk.offers == 5
        assert topk.evictions == 1
        assert topk.rejections == 1

    def test_bulk_offer_conserves_taxonomy(self):
        """offers == candidates seen; every dropped candidate is either
        an eviction (was tracked) or a rejection (never made it)."""
        topk = TopK(capacity=4)
        topk.offer_many(np.arange(1, 7, dtype=np.uint64),
                        np.arange(1.0, 7.0))
        tracked_before = set(topk.keys())
        offers_before = topk.offers
        ev_before, rej_before = topk.evictions, topk.rejections
        assert offers_before == 6
        assert ev_before + rej_before == 2  # two candidates never fit

        fresh = np.arange(100, 104, dtype=np.uint64)
        topk.offer_many(fresh, np.array([50.0, 60.0, 0.1, 0.2]))
        assert topk.offers == offers_before + 4
        survivors = set(topk.keys())
        evicted = len(tracked_before - survivors)
        dropped = len(tracked_before) + 4 - len(survivors)
        assert evicted > 0
        assert topk.evictions == ev_before + evicted
        assert topk.rejections == rej_before + (dropped - evicted)

    def test_copy_preserves_counters(self):
        topk = TopK(capacity=1)
        topk.offer(1, 1.0)
        topk.offer(2, 2.0)
        topk.offer(3, 0.5)
        clone = topk.copy()
        assert (clone.offers, clone.evictions, clone.rejections) == (3, 1, 1)
        clone.offer(9, 9.0)
        assert topk.offers == 3  # independent


class TestObserveSketch:
    def test_publishes_per_level_state(self):
        sketch = _small_sketch()
        sketch.update_array(_keys())
        reg = MetricsRegistry()
        observe_sketch(sketch, reg)
        for j, level in enumerate(sketch.levels):
            lab = {"level": str(j)}
            occupancy = reg.get("univmon_level_heap_occupancy", **lab)
            assert occupancy.value == len(level.topk)
            packets = reg.get("univmon_level_packets", **lab)
            assert packets.value == level.packets
            fill = reg.get("univmon_level_counter_fill_ratio", **lab)
            assert 0.0 < fill.value <= 1.0
            offers = reg.get("univmon_topk_offers_total", **lab)
            assert offers.value == level.topk.offers > 0
        # Level 0 sees the whole stream; its heap is full.
        assert reg.get("univmon_level_heap_occupancy",
                       level="0").value == 8

    def test_counters_accumulate_across_epochs(self):
        sketch = _small_sketch()
        sketch.update_array(_keys())
        reg = MetricsRegistry()
        observe_sketch(sketch, reg)
        once = reg.get("univmon_topk_offers_total", level="0").value
        observe_sketch(sketch, reg)
        assert reg.get("univmon_topk_offers_total",
                       level="0").value == 2 * once

    def test_noop_without_levels_or_disabled_registry(self):
        reg = MetricsRegistry()
        observe_sketch(object(), reg)
        assert len(reg) == 0
        with use_registry(reg):
            from repro.obs import NULL_REGISTRY
            observe_sketch(_small_sketch(), NULL_REGISTRY)
        assert len(reg) == 0


class TestSketchSpans:
    def test_update_array_records_latency_and_packets(self):
        reg = MetricsRegistry()
        sketch = _small_sketch()
        keys = _keys(n=1000)
        with use_registry(reg):
            sketch.update_array(keys[:600])
            sketch.update_array(keys[600:])
        hist = reg.get("univmon_sketch_update_seconds")
        assert hist.count == 2
        assert reg.get("univmon_sketch_update_packets_total").value == 1000

    def test_queries_record_per_op_latency(self):
        reg = MetricsRegistry()
        sketch = _small_sketch()
        sketch.update_array(_keys(n=500))
        with use_registry(reg):
            sketch.heavy_hitters(0.05)
            sketch.cardinality()
            sketch.entropy()
            sketch.entropy()
        assert reg.get("univmon_sketch_query_seconds",
                       op="heavy_hitters").count == 1
        assert reg.get("univmon_sketch_query_seconds",
                       op="cardinality").count == 1
        assert reg.get("univmon_sketch_query_seconds",
                       op="entropy").count == 2

    def test_default_registry_records_nothing(self):
        sketch = _small_sketch()
        sketch.update_array(_keys(n=200))
        # The global default is the null registry: nothing to flush,
        # nothing retained anywhere.
        from repro.obs import NULL_REGISTRY, get_registry, to_dict
        assert get_registry() is NULL_REGISTRY
        assert to_dict(NULL_REGISTRY) == {"counters": {}, "gauges": {},
                                          "histograms": {}}


class TestBatchIngestMetrics:
    def test_chunk_accounting(self):
        reg = MetricsRegistry()
        keys = _keys(n=2500)
        with use_registry(reg):
            report = BatchIngest(_small_sketch(),
                                 chunk_size=1000).ingest_keys(keys)
        assert report.packets == 2500
        assert report.chunks == 3
        assert reg.get("univmon_ingest_packets_total").value == 2500
        assert reg.get("univmon_ingest_chunks_total").value == 3
        assert reg.get("univmon_ingest_chunk_seconds").count == 3
        pps = reg.get("univmon_ingest_packets_per_second")
        assert pps.touched and pps.value > 0


class TestControllerMetrics:
    def test_epoch_pipeline_exports_everything(self):
        trace = generate_trace(SyntheticTraceConfig(
            packets=4000, flows=500, duration=10.0, seed=5))
        controller = Controller(sketch_factory=_small_sketch,
                                epoch_seconds=5.0)
        controller.register(HeavyHitterApp(alpha=0.01))
        controller.register(CardinalityApp())
        reg = MetricsRegistry()
        with use_registry(reg):
            reports = controller.run_trace(trace)
        epochs = len(reports)
        assert epochs >= 2
        assert reg.get("univmon_epochs_total").value == epochs
        assert reg.get("univmon_epoch_packets_total").value == 4000
        assert reg.get("univmon_epoch_ingest_seconds").count == epochs
        assert reg.get("univmon_app_seconds",
                       app="heavy_hitters").count == epochs
        assert reg.get("univmon_app_seconds",
                       app="cardinality").count == epochs
        # observe_sketch ran per epoch: occupancy gauges + churn counters.
        assert reg.get("univmon_level_heap_occupancy",
                       level="0") is not None
        assert reg.get("univmon_topk_offers_total", level="0").value > 0


class TestHealthTrackerMetrics:
    def test_transitions_exported_with_edge_labels(self):
        reg = MetricsRegistry()
        tracker = HealthTracker(["s1", "s2"], suspect_after=1, fail_after=2)
        with use_registry(reg):
            tracker.record_failure("s1")   # healthy -> suspect
            tracker.record_failure("s1")   # suspect -> failed
            tracker.record_success("s1")   # failed -> healthy
            tracker.record_success("s2")   # healthy stays healthy: no edge

        def edge(src, dst):
            metric = reg.get("univmon_health_transitions_total",
                             from_state=src, to_state=dst)
            return metric.value if metric is not None else 0

        assert edge("healthy", "suspect") == 1
        assert edge("suspect", "failed") == 1
        assert edge("failed", "healthy") == 1
        total = sum(m.value for m in reg.metrics()
                    if m.name == "univmon_health_transitions_total")
        assert total == 3

    def test_no_metrics_by_default(self):
        tracker = HealthTracker(["s1"])
        tracker.record_failure("s1")
        tracker.record_success("s1")  # exercises the null-registry path
