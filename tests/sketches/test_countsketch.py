"""Tests for Count Sketch: point queries, linearity, L2, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.countsketch import CountSketch


def _fill(sketch, frequencies):
    for key, count in frequencies.items():
        sketch.update(key, count)


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CountSketch(rows=0, width=10)
        with pytest.raises(ConfigurationError):
            CountSketch(rows=3, width=0)

    def test_starts_empty(self):
        cs = CountSketch(rows=3, width=16, seed=1)
        assert cs.table.sum() == 0
        assert cs.query(7) == 0.0


class TestPointQuery:
    def test_single_key_exact(self):
        cs = CountSketch(rows=5, width=64, seed=1)
        cs.update(42, 10)
        assert cs.query(42) == 10.0

    def test_negative_weights_supported(self):
        cs = CountSketch(rows=5, width=64, seed=1)
        cs.update(42, 10)
        cs.update(42, -4)
        assert cs.query(42) == 6.0

    def test_sparse_stream_near_exact(self):
        cs = CountSketch(rows=5, width=512, seed=2)
        freqs = {k: k + 1 for k in range(20)}
        _fill(cs, freqs)
        for key, count in freqs.items():
            assert abs(cs.query(key) - count) <= 2

    def test_heavy_hitter_dominates_noise(self):
        cs = CountSketch(rows=5, width=256, seed=3)
        cs.update(999, 5000)
        for k in range(500):
            cs.update(k, 1)
        est = cs.query(999)
        assert abs(est - 5000) / 5000 < 0.05

    def test_query_many_matches_scalar(self):
        cs = CountSketch(rows=4, width=128, seed=4)
        _fill(cs, {k: 3 * k for k in range(1, 30)})
        keys = np.arange(1, 30, dtype=np.uint64)
        many = cs.query_many(keys)
        for k, v in zip(keys.tolist(), many.tolist()):
            assert cs.query(int(k)) == pytest.approx(v)

    def test_unbiasedness_over_seeds(self):
        """E[estimate] = true frequency: average over many seeds."""
        estimates = []
        for seed in range(300):
            cs = CountSketch(rows=1, width=8, seed=seed)
            cs.update(1, 100)
            for k in range(2, 30):
                cs.update(k, 5)
            estimates.append(cs.query(1))
        assert abs(np.mean(estimates) - 100) < 10


class TestBulkUpdate:
    def test_update_array_matches_scalar(self):
        a = CountSketch(rows=4, width=64, seed=5)
        b = CountSketch(rows=4, width=64, seed=5)
        keys = np.array([1, 2, 3, 1, 1, 9], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.table, b.table)

    def test_update_array_with_weights(self):
        a = CountSketch(rows=3, width=32, seed=6)
        b = CountSketch(rows=3, width=32, seed=6)
        keys = np.array([1, 2, 1], dtype=np.uint64)
        weights = np.array([10, -3, 4], dtype=np.int64)
        a.update_array(keys, weights)
        b.update(1, 10)
        b.update(2, -3)
        b.update(1, 4)
        assert np.array_equal(a.table, b.table)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_bulk_equals_scalar(self, keys):
        a = CountSketch(rows=3, width=16, seed=7)
        b = CountSketch(rows=3, width=16, seed=7)
        a.update_array(np.array(keys, dtype=np.uint64))
        for k in keys:
            b.update(k)
        assert np.array_equal(a.table, b.table)


class TestLinearity:
    def test_merge_equals_concatenated_stream(self):
        a = CountSketch(rows=4, width=64, seed=8)
        b = CountSketch(rows=4, width=64, seed=8)
        c = CountSketch(rows=4, width=64, seed=8)
        _fill(a, {1: 5, 2: 3})
        _fill(b, {2: 2, 7: 9})
        _fill(c, {1: 5, 2: 5, 7: 9})
        merged = a.merge(b)
        assert np.array_equal(merged.table, c.table)

    def test_subtract_estimates_difference(self):
        a = CountSketch(rows=5, width=128, seed=9)
        b = CountSketch(rows=5, width=128, seed=9)
        _fill(a, {1: 100, 2: 50})
        _fill(b, {1: 10, 2: 50, 3: 30})
        diff = a.subtract(b)
        assert diff.query(1) == pytest.approx(90)
        assert diff.query(2) == pytest.approx(0)
        assert diff.query(3) == pytest.approx(-30)

    def test_merge_requires_same_seed(self):
        a = CountSketch(rows=3, width=16, seed=1)
        b = CountSketch(rows=3, width=16, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_requires_explicit_seed(self):
        a = CountSketch(rows=3, width=16)
        b = CountSketch(rows=3, width=16)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_requires_same_geometry(self):
        a = CountSketch(rows=3, width=16, seed=1)
        b = CountSketch(rows=3, width=32, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_merge_rejects_other_types(self):
        from repro.sketches.countmin import CountMinSketch
        a = CountSketch(rows=3, width=16, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.merge(CountMinSketch(rows=3, width=16, seed=1))

    def test_merge_does_not_mutate_inputs(self):
        a = CountSketch(rows=3, width=16, seed=1)
        b = CountSketch(rows=3, width=16, seed=1)
        a.update(1, 5)
        b.update(2, 7)
        before_a, before_b = a.table.copy(), b.table.copy()
        a.merge(b)
        assert np.array_equal(a.table, before_a)
        assert np.array_equal(b.table, before_b)


class TestNorms:
    def test_l2_estimate_single_key(self):
        cs = CountSketch(rows=5, width=128, seed=10)
        cs.update(5, 30)
        assert cs.l2_estimate() == pytest.approx(30.0)

    def test_f2_reasonable_on_zipf(self, rng):
        keys = rng.zipf(1.5, size=5000) % 1000
        cs = CountSketch(rows=5, width=1024, seed=11)
        cs.update_array(keys.astype(np.uint64))
        counts = np.bincount(keys)
        true_f2 = float((counts.astype(float) ** 2).sum())
        assert abs(cs.f2_estimate() - true_f2) / true_f2 < 0.15


class TestAccounting:
    def test_memory_bytes_geometry(self):
        cs = CountSketch(rows=5, width=100, seed=1)
        assert cs.memory_bytes() == 5 * 100 * 4

    def test_memory_custom_counter_size(self):
        cs = CountSketch(rows=2, width=10, seed=1, counter_bytes=8)
        assert cs.memory_bytes() == 160

    def test_update_cost(self):
        cs = CountSketch(rows=5, width=100, seed=1)
        cost = cs.update_cost()
        assert cost.hashes == 5
        assert cost.counter_updates == 5

    def test_copy_is_independent(self):
        cs = CountSketch(rows=2, width=8, seed=1)
        cs.update(1, 5)
        cp = cs.copy()
        cp.update(1, 5)
        assert cs.query(1) == 5
        assert cp.query(1) == 10


class TestBulkWeightDtypes:
    """Regression: bulk updates must coerce weight arrays to int64 so the
    counter table never silently changes dtype (float64 weights used to
    poison the int64 table maths on the add.at path)."""

    @pytest.mark.parametrize("dtype", [np.float64, np.uint64, np.int32])
    @pytest.mark.parametrize("width", [256, 200])  # packed and fallback
    def test_weight_array_dtype_coerced(self, dtype, width):
        keys = (np.arange(500, dtype=np.uint64) * np.uint64(2654435761)) % 97
        weights = ((np.arange(500) % 7) + 1).astype(dtype)
        bulk = CountSketch(rows=3, width=width, seed=9)
        scalar = CountSketch(rows=3, width=width, seed=9)
        bulk.update_array(keys, weights)
        for k, w in zip(keys.tolist(), weights.tolist()):
            scalar.update(int(k), int(w))
        assert bulk.table.dtype == np.int64
        assert np.array_equal(bulk.table, scalar.table)
