"""Tests for the distinct counters: LinearCounter, HyperLogLog, Bloom."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.bitmap import LinearCounter
from repro.sketches.bloom import BloomFilter
from repro.sketches.hyperloglog import HyperLogLog


class TestLinearCounter:
    def test_rejects_tiny_bitmaps(self):
        with pytest.raises(ConfigurationError):
            LinearCounter(bits=4)

    def test_empty_cardinality_zero(self):
        lc = LinearCounter(bits=1024, seed=1)
        assert lc.cardinality() == 0.0

    def test_duplicates_do_not_inflate(self):
        lc = LinearCounter(bits=1024, seed=1)
        for _ in range(100):
            lc.update(42)
        assert lc.cardinality() < 3

    def test_accuracy_in_linear_regime(self):
        lc = LinearCounter(bits=8192, seed=2)
        n = 2000
        lc.update_array(np.arange(n, dtype=np.uint64))
        assert abs(lc.cardinality() - n) / n < 0.05

    def test_bulk_matches_scalar(self):
        a = LinearCounter(bits=256, seed=3)
        b = LinearCounter(bits=256, seed=3)
        keys = np.array([1, 2, 3, 2, 1], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a._bitmap, b._bitmap)

    def test_saturation_reported(self):
        lc = LinearCounter(bits=64, seed=4)
        lc.update_array(np.arange(5000, dtype=np.uint64))
        assert lc.saturated()
        assert lc.cardinality() > 0  # diverging estimator clamped

    def test_merge_is_union(self):
        a = LinearCounter(bits=2048, seed=5)
        b = LinearCounter(bits=2048, seed=5)
        a.update_array(np.arange(0, 300, dtype=np.uint64))
        b.update_array(np.arange(200, 500, dtype=np.uint64))
        merged = a.merge(b)
        assert abs(merged.cardinality() - 500) / 500 < 0.1

    def test_merge_requires_seed_match(self):
        with pytest.raises(IncompatibleSketchError):
            LinearCounter(bits=256, seed=1).merge(LinearCounter(bits=256, seed=2))

    def test_memory_is_bits_over_8(self):
        assert LinearCounter(bits=1024).memory_bytes() == 128


class TestHyperLogLog:
    def test_precision_validated(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=19)

    def test_empty_is_zero(self):
        assert HyperLogLog(precision=8, seed=1).cardinality() == 0.0

    @pytest.mark.parametrize("n", [100, 5_000, 50_000])
    def test_relative_error_within_bound(self, n):
        hll = HyperLogLog(precision=12, seed=2)
        hll.update_array(np.arange(n, dtype=np.uint64))
        est = hll.cardinality()
        # sigma = 1.04/sqrt(2**12) ~ 1.6%; allow 5 sigma.
        assert abs(est - n) / n < 0.09

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision=10, seed=3)
        for _ in range(10_000):
            hll.update(7)
        assert hll.cardinality() < 3

    def test_bulk_matches_scalar(self):
        a = HyperLogLog(precision=8, seed=4)
        b = HyperLogLog(precision=8, seed=4)
        keys = np.arange(2000, dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.registers, b.registers)

    def test_merge_is_union(self):
        a = HyperLogLog(precision=12, seed=5)
        b = HyperLogLog(precision=12, seed=5)
        a.update_array(np.arange(0, 6000, dtype=np.uint64))
        b.update_array(np.arange(4000, 10_000, dtype=np.uint64))
        est = a.merge(b).cardinality()
        assert abs(est - 10_000) / 10_000 < 0.09

    def test_merge_compat(self):
        with pytest.raises(IncompatibleSketchError):
            HyperLogLog(precision=8, seed=1).merge(HyperLogLog(precision=9, seed=1))

    @given(st.sets(st.integers(0, 1 << 50), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_property_estimate_scales_with_truth(self, keys):
        hll = HyperLogLog(precision=12, seed=6)
        for k in keys:
            hll.update(k)
        est = hll.cardinality()
        assert 0.5 * len(keys) <= est <= 2.0 * len(keys)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(bits=4096, num_hashes=4, seed=1)
        keys = list(range(0, 400, 3))
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_roughly_as_designed(self):
        bf = BloomFilter.for_capacity(1000, fp_rate=0.01, seed=2)
        for k in range(1000):
            bf.add(k)
        fps = sum(1 for k in range(10_000, 20_000) if k in bf)
        assert fps / 10_000 < 0.05

    def test_add_if_new_counts_first_insertions(self):
        bf = BloomFilter(bits=8192, num_hashes=4, seed=3)
        new = sum(1 for k in [1, 2, 1, 3, 2, 1] if bf.add_if_new(k))
        assert new == 3

    def test_for_capacity_validates(self):
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(10, fp_rate=1.5)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(bits=4)
        with pytest.raises(ConfigurationError):
            BloomFilter(bits=64, num_hashes=0)

    def test_fill_ratio_monotone(self):
        bf = BloomFilter(bits=1024, num_hashes=2, seed=4)
        r0 = bf.fill_ratio()
        bf.add(1)
        r1 = bf.fill_ratio()
        bf.add(2)
        assert r0 <= r1 <= bf.fill_ratio()

    def test_memory_bytes(self):
        assert BloomFilter(bits=1024).memory_bytes() == 128
