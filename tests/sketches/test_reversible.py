"""Tests for the reversible sketch (§5 "Reversibility" extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.reversible import ReversibleSketch


def make(seed=1, rows=4):
    return ReversibleSketch(rows=rows, chunk_bits=8,
                            bucket_bits_per_chunk=3, seed=seed)


class TestConstruction:
    def test_chunk_bits_must_divide_32(self):
        with pytest.raises(ConfigurationError):
            ReversibleSketch(chunk_bits=7)

    def test_bucket_bits_bounded(self):
        with pytest.raises(ConfigurationError):
            ReversibleSketch(chunk_bits=8, bucket_bits_per_chunk=9)

    def test_rows_validated(self):
        with pytest.raises(ConfigurationError):
            ReversibleSketch(rows=0)

    def test_width_is_product_of_chunk_hashes(self):
        rs = make()
        assert rs.width == 1 << (4 * 3)


class TestModularHashing:
    def test_bucket_deterministic(self):
        a, b = make(seed=3), make(seed=3)
        for key in (0, 1, 0xDEADBEEF, 0xFFFFFFFF):
            assert a.bucket(0, key) == b.bucket(0, key)

    def test_bucket_in_range(self):
        rs = make()
        for key in range(0, 1 << 16, 997):
            assert 0 <= rs.bucket(0, key) < rs.width

    def test_bulk_matches_scalar(self):
        a, b = make(seed=4), make(seed=4)
        keys = np.array([1, 0xAABBCCDD, 1, 99], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.table, b.table)


class TestQueries:
    def test_point_query_sparse(self):
        rs = make(seed=5)
        rs.update(0x0A000001, 500)
        rs.update(0x0A000002, 100)
        assert abs(rs.query(0x0A000001) - 500) < 30
        assert abs(rs.query(0x0A000002) - 100) < 30


class TestRecovery:
    def test_recovers_heavy_key_exactly(self):
        rs = make(seed=6)
        heavy_key = 0xC0A80164  # 192.168.1.100
        rs.update(heavy_key, 5000)
        rng = np.random.default_rng(0)
        rs.update_array(rng.integers(0, 1 << 32, size=3000,
                                     dtype=np.uint64))
        recovered = rs.recover_heavy_keys(threshold=2500)
        assert recovered, "nothing recovered"
        assert recovered[0][0] == heavy_key
        assert abs(recovered[0][1] - 5000) / 5000 < 0.2

    def test_recovers_multiple_heavy_keys(self):
        rs = make(seed=7)
        keys = [0x01020304, 0xA0B0C0D0, 0x7F000001]
        for k in keys:
            rs.update(k, 4000)
        rng = np.random.default_rng(1)
        rs.update_array(rng.integers(0, 1 << 32, size=2000,
                                     dtype=np.uint64))
        recovered = {k for k, _ in rs.recover_heavy_keys(threshold=2000)}
        assert set(keys) <= recovered

    def test_nothing_heavy_nothing_recovered(self):
        rs = make(seed=8)
        rs.update_array(np.arange(1000, dtype=np.uint64))
        assert rs.recover_heavy_keys(threshold=500) == []

    def test_too_many_heavy_buckets_rejected(self):
        rs = make(seed=9)
        for k in range(200):
            rs.update(k * 7919, 100)
        with pytest.raises(ConfigurationError):
            rs.recover_heavy_keys(threshold=1, max_buckets=4)

    def test_recovery_on_difference_stream(self):
        """The §5 use case: which key caused the change?"""
        a, b = make(seed=10), make(seed=10)
        shared = np.random.default_rng(2).integers(
            0, 1 << 32, size=2000, dtype=np.uint64)
        a.update_array(shared)
        b.update_array(shared)
        b.update(0x08080808, 3000)  # the change
        diff = b.subtract(a)
        recovered = diff.recover_heavy_keys(threshold=1500)
        assert recovered and recovered[0][0] == 0x08080808

    def test_subtract_compat(self):
        with pytest.raises(IncompatibleSketchError):
            make(seed=1).subtract(make(seed=2))


class TestAccounting:
    def test_memory(self):
        rs = make()
        assert rs.memory_bytes() == 4 * rs.width * 4

    def test_update_cost_counts_chunk_lookups(self):
        rs = make(rows=4)
        assert rs.update_cost().hashes == 4 * 4
