"""Tests for the magnitude-ranked TopK tracker (the Q_j heaps)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sketches.topk import TopK


class TestBasics:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            TopK(0)

    def test_insert_until_capacity(self):
        t = TopK(3)
        for k in range(3):
            assert t.offer(k, k + 1.0)
        assert len(t) == 3

    def test_eviction_of_minimum(self):
        t = TopK(2)
        t.offer(1, 10.0)
        t.offer(2, 20.0)
        assert t.offer(3, 15.0)  # evicts key 1
        assert 1 not in t
        assert set(t.keys()) == {2, 3}

    def test_rejects_smaller_than_min_when_full(self):
        t = TopK(2)
        t.offer(1, 10.0)
        t.offer(2, 20.0)
        assert not t.offer(3, 5.0)
        assert set(t.keys()) == {1, 2}

    def test_existing_key_always_updates(self):
        t = TopK(2)
        t.offer(1, 10.0)
        t.offer(2, 20.0)
        assert t.offer(1, 3.0)  # smaller, but key already tracked
        assert t.estimate(1) == 3.0

    def test_estimate_keyerror_for_untracked(self):
        t = TopK(2)
        with pytest.raises(KeyError):
            t.estimate(5)

    def test_min_on_empty_raises(self):
        with pytest.raises(KeyError):
            TopK(2).min()

    def test_items_sorted_by_magnitude_desc(self):
        t = TopK(4)
        t.offer(1, 5.0)
        t.offer(2, -50.0)
        t.offer(3, 20.0)
        keys = [k for k, _ in t.items()]
        assert keys == [2, 3, 1]

    def test_contains_and_iter(self):
        t = TopK(3)
        t.offer(7, 1.0)
        assert 7 in t and list(t) == [7]


class TestMagnitudeRanking:
    def test_negative_estimates_ranked_by_abs(self):
        """Difference-stream semantics: a large negative delta is heavy."""
        t = TopK(2)
        t.offer(1, -100.0)
        t.offer(2, 10.0)
        assert not t.offer(3, 5.0)       # |5| < |10|
        assert t.offer(4, -20.0)         # |-20| > |10| evicts key 2
        assert set(t.keys()) == {1, 4}
        assert t.estimate(1) == -100.0   # sign preserved

    def test_min_returns_magnitude(self):
        t = TopK(3)
        t.offer(1, -7.0)
        t.offer(2, 3.0)
        key, rank = t.min()
        assert key == 2 and rank == 3.0


class TestStaleHeapEntries:
    def test_min_correct_after_many_updates_of_same_key(self):
        t = TopK(2)
        t.offer(1, 1.0)
        t.offer(2, 2.0)
        for est in range(3, 50):
            t.offer(1, float(est))  # key 1 keeps growing
        key, rank = t.min()
        assert key == 2 and rank == 2.0

    def test_rebuild_path_when_all_entries_stale(self):
        t = TopK(2)
        t.offer(1, 5.0)
        t.offer(2, 6.0)
        # Overwrite both with new estimates, staling every heap entry,
        # then drain the heap of fresh copies via repeated min() checks.
        t.offer(1, 7.0)
        t.offer(2, 8.0)
        key, rank = t.min()
        assert key == 1 and rank == 7.0


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 30),
                              st.floats(min_value=-1000, max_value=1000,
                                        allow_nan=False)),
                    min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_capacity_invariant_and_min_correct(self, offers):
        t = TopK(5)
        for key, est in offers:
            t.offer(key, est)
        assert 0 < len(t) <= 5
        key, rank = t.min()
        assert rank == min(abs(v) for _, v in t.items())
        assert key in t

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.floats(min_value=0.1, max_value=1e6)),
                    min_size=6, max_size=200,
                    unique_by=(lambda kv: kv[0], lambda kv: kv[1])))
    @settings(max_examples=50, deadline=None)
    def test_distinct_keys_keeps_the_largest(self, offers):
        """With unique keys and estimates, TopK retains the k largest."""
        t = TopK(5)
        for key, est in offers:
            t.offer(key, est)
        expected = {k for k, _ in
                    sorted(offers, key=lambda kv: -kv[1])[:5]}
        assert set(t.keys()) == expected

    def test_memory_bytes_fixed_by_capacity(self):
        assert TopK(64).memory_bytes() == 64 * 16


class TestOfferMany:
    """offer_many must agree with sequentially offering the same pairs in
    increasing-|estimate| order."""

    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.floats(min_value=0.1, max_value=1e6)),
                    min_size=1, max_size=80,
                    unique_by=(lambda kv: kv[0], lambda kv: kv[1])),
           st.lists(st.tuples(st.integers(0, 500),
                              st.floats(min_value=0.1, max_value=1e6)),
                    min_size=0, max_size=80,
                    unique_by=(lambda kv: kv[0], lambda kv: kv[1])),
           st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_matches_sequential_offers(self, first, second, capacity):
        import numpy as np
        seq = TopK(capacity)
        bulk = TopK(capacity)
        for batch in (first, second):
            if not batch:
                continue
            batch = sorted(batch)  # distinct keys, ascending
            keys = np.array([k for k, _ in batch], dtype=np.uint64)
            ests = np.array([e for _, e in batch], dtype=np.float64)
            order = np.argsort(np.abs(ests))
            for i in order:
                seq.offer(int(keys[i]), float(ests[i]))
            bulk.offer_many(keys, ests, sorted_keys=True)
        # Ranks are unique within a batch, but a cross-batch tie at the
        # eviction boundary may legitimately resolve either way; compare
        # the retained rank multisets, which must agree regardless.
        seq_ranks = sorted(abs(v) for _, v in seq.items())
        bulk_ranks = sorted(abs(v) for _, v in bulk.items())
        assert seq_ranks == pytest.approx(bulk_ranks)
        assert len(bulk) == len(seq)

    def test_sorted_and_unsorted_membership_agree(self):
        import numpy as np
        a, b = TopK(4), TopK(4)
        for t in (a, b):
            t.offer(10, 5.0)
            t.offer(999, 50.0)
        keys = np.array([5, 10, 20], dtype=np.uint64)
        ests = np.array([7.0, 1.0, 9.0])
        a.offer_many(keys, ests, sorted_keys=True)
        b.offer_many(keys, ests, sorted_keys=False)
        assert a.items() == b.items()
        # Tracked key 10 got its estimate replaced, not duplicated.
        assert a.estimate(10) == 1.0
        # Tracked key 999 was not in the batch and kept its estimate.
        assert a.estimate(999) == 50.0

    def test_heap_invariant_survives_offer_many(self):
        import numpy as np
        t = TopK(3)
        t.offer_many(np.array([1, 2, 3, 4], dtype=np.uint64),
                     np.array([4.0, 2.0, 8.0, 6.0]))
        assert set(t.keys()) == {3, 4, 1}
        assert t.min() == (1, 4.0)
        t.offer(9, 5.0)  # evicts key 1 through the lazy heap
        assert set(t.keys()) == {3, 4, 9}
