"""Tests for the k-ary change-detection sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.kary import KArySketch, total_change


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            KArySketch(rows=0, width=8)
        with pytest.raises(ConfigurationError):
            KArySketch(rows=2, width=1)


class TestQueries:
    def test_unbiased_estimate_sparse(self):
        ks = KArySketch(rows=5, width=512, seed=1)
        for k in range(10):
            ks.update(k, 100 * (k + 1))
        for k in range(10):
            assert abs(ks.query(k) - 100 * (k + 1)) < 30

    def test_total(self):
        ks = KArySketch(rows=3, width=16, seed=2)
        ks.update(1, 5)
        ks.update(2, 7)
        assert ks.total() == 12

    def test_query_many_matches_scalar(self):
        ks = KArySketch(rows=3, width=64, seed=3)
        keys = np.array([1, 5, 1, 7], dtype=np.uint64)
        ks.update_array(keys)
        probe = np.array([1, 5, 7, 99], dtype=np.uint64)
        out = ks.query_many(probe)
        for k, v in zip(probe.tolist(), out.tolist()):
            assert ks.query(int(k)) == pytest.approx(v)

    def test_bulk_matches_scalar(self):
        a = KArySketch(rows=3, width=32, seed=4)
        b = KArySketch(rows=3, width=32, seed=4)
        keys = np.array([9, 9, 3, 2, 9], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.table, b.table)

    def test_unbiasedness_over_seeds(self):
        """The (v - S/w)/(1 - 1/w) correction makes estimates unbiased."""
        estimates = []
        for seed in range(200):
            ks = KArySketch(rows=1, width=8, seed=seed)
            ks.update(1, 50)
            for k in range(2, 40):
                ks.update(k, 10)
            estimates.append(ks.query(1))
        assert abs(np.mean(estimates) - 50) < 12

    def test_f2_estimate_reasonable(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 200, size=8000).astype(np.uint64)
        ks = KArySketch(rows=5, width=1024, seed=6)
        ks.update_array(keys)
        counts = np.bincount(keys.astype(int))
        true_f2 = float((counts.astype(float) ** 2).sum())
        assert abs(ks.f2_estimate() - true_f2) / true_f2 < 0.2


class TestChangeDetection:
    def test_subtract_recovers_delta(self):
        a = KArySketch(rows=5, width=256, seed=7)
        b = KArySketch(rows=5, width=256, seed=7)
        a.update(1, 100)
        a.update(2, 50)
        b.update(1, 10)
        b.update(2, 50)
        diff = a.subtract(b)
        assert diff.query(1) == pytest.approx(90, abs=10)
        assert abs(diff.query(2)) < 10

    def test_total_change_upper_approximates(self):
        a = KArySketch(rows=5, width=512, seed=8)
        b = KArySketch(rows=5, width=512, seed=8)
        a.update(1, 100)
        b.update(2, 60)
        diff = a.subtract(b)
        d = total_change(diff)
        assert 150 <= d <= 161  # true D = 160; collisions only reduce

    def test_compat_checks(self):
        a = KArySketch(rows=3, width=16, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.subtract(KArySketch(rows=3, width=16, seed=2))
        with pytest.raises(IncompatibleSketchError):
            a.merge(KArySketch(rows=4, width=16, seed=1))
        with pytest.raises(IncompatibleSketchError):
            KArySketch(rows=3, width=16).subtract(KArySketch(rows=3, width=16))

    def test_merge_adds_streams(self):
        a = KArySketch(rows=3, width=32, seed=9)
        b = KArySketch(rows=3, width=32, seed=9)
        a.update(4, 3)
        b.update(4, 4)
        assert a.merge(b).query(4) == pytest.approx(7, abs=2)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 20)),
                    min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_property_subtract_then_query_zero_for_equal_streams(self, ups):
        a = KArySketch(rows=3, width=64, seed=10)
        b = KArySketch(rows=3, width=64, seed=10)
        for k, w in ups:
            a.update(k, w)
            b.update(k, w)
        diff = a.subtract(b)
        assert diff.table.sum() == 0
        assert total_change(diff) == 0.0


class TestAccounting:
    def test_memory(self):
        assert KArySketch(rows=5, width=100).memory_bytes() == 2000

    def test_update_cost(self):
        cost = KArySketch(rows=5, width=100).update_cost()
        assert cost.hashes == 5 and cost.counter_updates == 5


class TestBulkWeightDtypes:
    """Regression: weight arrays of any integer-valued dtype must hit the
    same int64 counters the scalar path writes."""

    @pytest.mark.parametrize("dtype", [np.float64, np.uint64, np.int32])
    @pytest.mark.parametrize("width", [256, 200])  # packed and fallback
    def test_weight_array_dtype_coerced(self, dtype, width):
        keys = (np.arange(400, dtype=np.uint64) * np.uint64(2654435761)) % 89
        weights = ((np.arange(400) % 5) + 1).astype(dtype)
        bulk = KArySketch(rows=3, width=width, seed=4)
        scalar = KArySketch(rows=3, width=width, seed=4)
        bulk.update_array(keys, weights)
        for k, w in zip(keys.tolist(), weights.tolist()):
            scalar.update(int(k), int(w))
        assert bulk.table.dtype == np.int64
        assert np.array_equal(bulk.table, scalar.table)
