"""Tests for the MRAC flow-size-distribution estimator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches.mrac import MRACSketch, _log_multiset_coeff, _partitions


class TestPartitions:
    def test_singletons_only(self):
        assert _partitions(5, 1, 100) == [(5,)]

    def test_pairs(self):
        parts = _partitions(4, 2, 100)
        assert (4,) in parts and (1, 3) in parts and (2, 2) in parts
        assert (3, 1) not in parts  # canonical ordering only

    def test_triples(self):
        parts = _partitions(6, 3, 100)
        assert (1, 2, 3) in parts and (2, 2, 2) in parts and (1, 1, 4) in parts

    def test_all_sum_to_value(self):
        for v in (1, 5, 9):
            for combo in _partitions(v, 3, 100):
                assert sum(combo) == v
                assert list(combo) == sorted(combo)

    def test_multiset_coefficient(self):
        import math
        assert _log_multiset_coeff((1, 2, 3)) == pytest.approx(math.log(6))
        assert _log_multiset_coeff((2, 2)) == pytest.approx(0.0)
        assert _log_multiset_coeff((1, 1, 2)) == pytest.approx(math.log(3))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MRACSketch(counters=4)
        with pytest.raises(ConfigurationError):
            MRACSketch(counters=64, max_flows_per_counter=4)
        with pytest.raises(ConfigurationError):
            MRACSketch(counters=64, max_size=0)


class TestDataPlane:
    def test_bulk_matches_scalar(self):
        a = MRACSketch(counters=64, seed=1)
        b = MRACSketch(counters=64, seed=1)
        keys = np.array([1, 2, 1, 9, 1], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.counters, b.counters)

    def test_counter_sum_is_packet_count(self):
        sketch = MRACSketch(counters=256, seed=2)
        sketch.update_array(np.arange(1000, dtype=np.uint64))
        assert sketch.counters.sum() == 1000

    def test_load_factor(self):
        sketch = MRACSketch(counters=128, seed=3)
        assert sketch.load_factor() == 0.0
        sketch.update(1)
        assert sketch.load_factor() == pytest.approx(1 / 128)


class TestEstimation:
    @staticmethod
    def _stream(flow_sizes, seed=0):
        """Keys for a stream with the given per-flow sizes."""
        rng = np.random.default_rng(seed)
        keys = []
        for i, size in enumerate(flow_sizes):
            keys.extend([i * 2654435761 % (1 << 32)] * size)
        keys = np.array(keys, dtype=np.uint64)
        rng.shuffle(keys)
        return keys

    def test_no_collision_regime_is_exact(self):
        """At tiny load the histogram IS the distribution."""
        sizes = [1] * 20 + [2] * 10 + [5] * 4
        sketch = MRACSketch(counters=4096, seed=4, max_size=20)
        sketch.update_array(self._stream(sizes))
        phi = sketch.estimate_distribution()
        assert phi[1] == pytest.approx(20, abs=2)
        assert phi[2] == pytest.approx(10, abs=2)
        assert phi[5] == pytest.approx(4, abs=1)

    def test_em_corrects_collisions(self):
        """At moderate load, raw histogram over-reports large values and
        under-reports size-1; EM must recover most of the truth."""
        rng = np.random.default_rng(5)
        sizes = ([1] * 600 + [2] * 200 + [3] * 80 + [4] * 40 + [8] * 10)
        sketch = MRACSketch(counters=1024, seed=6, max_size=30,
                            em_iterations=25)
        sketch.update_array(self._stream(sizes, seed=5))
        phi = sketch.estimate_distribution()
        raw = sketch.observed_histogram()
        # EM's size-1 estimate must beat the raw histogram's.
        assert abs(phi[1] - 600) < abs(raw.get(1, 0) - 600)
        assert abs(phi[1] - 600) / 600 < 0.15
        # Total flow count recovered within 10%.
        assert abs(sketch.estimate_flow_count() - len(sizes)) \
            / len(sizes) < 0.1

    def test_elephants_clamped_not_lost(self):
        sketch = MRACSketch(counters=512, seed=7, max_size=10)
        sketch.update(42, 5000)  # one elephant far above max_size
        phi = sketch.estimate_distribution()
        assert phi[10] >= 1.0
        assert phi.sum() == pytest.approx(1.0)

    def test_empty_sketch(self):
        sketch = MRACSketch(counters=64, seed=8)
        assert sketch.estimate_flow_count() == 0.0

    def test_memory_and_cost(self):
        sketch = MRACSketch(counters=256)
        assert sketch.memory_bytes() == 1024
        assert sketch.update_cost().hashes == 1
