"""Tests for Count-Min: never-underestimate, conservative update, merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.countmin import CountMinSketch


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(rows=0, width=8)
        with pytest.raises(ConfigurationError):
            CountMinSketch(rows=2, width=0)


class TestQueries:
    def test_exact_when_sparse(self):
        cm = CountMinSketch(rows=3, width=512, seed=1)
        for k in range(10):
            cm.update(k, k + 1)
        for k in range(10):
            assert cm.query(k) == k + 1

    def test_never_underestimates(self):
        cm = CountMinSketch(rows=3, width=16, seed=2)  # tiny: collisions
        true = {k: (k % 7) + 1 for k in range(200)}
        for k, c in true.items():
            cm.update(k, c)
        for k, c in true.items():
            assert cm.query(k) >= c

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 50)),
                    min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_property_overestimate_only(self, updates):
        cm = CountMinSketch(rows=3, width=32, seed=3)
        true = {}
        for key, w in updates:
            cm.update(key, w)
            true[key] = true.get(key, 0) + w
        for key, c in true.items():
            assert cm.query(key) >= c

    def test_error_bounded_by_l1_over_width(self):
        """CM guarantee: overestimate <= e/width * L1 w.h.p."""
        width = 256
        cm = CountMinSketch(rows=5, width=width, seed=4)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 5000, size=20_000).astype(np.uint64)
        cm.update_array(keys)
        l1 = len(keys)
        counts = {}
        for k in keys.tolist():
            counts[k] = counts.get(k, 0) + 1
        sample = list(counts.items())[:200]
        bound = 2.72 * l1 / width
        violations = sum(1 for k, c in sample if cm.query(k) - c > bound)
        assert violations <= 2  # delta = e^-rows is tiny; allow slack

    def test_query_many_matches_scalar(self):
        cm = CountMinSketch(rows=3, width=64, seed=6)
        keys = np.array([5, 9, 5, 123, 5], dtype=np.uint64)
        cm.update_array(keys)
        out = cm.query_many(np.array([5, 9, 123, 7], dtype=np.uint64))
        assert out.tolist() == [cm.query(5), cm.query(9),
                                cm.query(123), cm.query(7)]

    def test_l1_estimate_exact_for_positive_streams(self):
        cm = CountMinSketch(rows=3, width=64, seed=7)
        cm.update(1, 10)
        cm.update(2, 5)
        assert cm.l1_estimate() == 15


class TestConservativeUpdate:
    def test_at_most_plain_estimates(self):
        plain = CountMinSketch(rows=3, width=16, seed=8)
        cons = CountMinSketch(rows=3, width=16, seed=8, conservative=True)
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 300, size=3000).tolist()
        for k in keys:
            plain.update(int(k))
            cons.update(int(k))
        counts = {}
        for k in keys:
            counts[k] = counts.get(k, 0) + 1
        for k, c in counts.items():
            assert c <= cons.query(int(k)) <= plain.query(int(k))

    def test_bulk_path_falls_back_to_scalar(self):
        a = CountMinSketch(rows=3, width=32, seed=10, conservative=True)
        b = CountMinSketch(rows=3, width=32, seed=10, conservative=True)
        keys = np.array([1, 2, 1, 3, 1], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.table, b.table)

    def test_conservative_not_mergeable(self):
        a = CountMinSketch(rows=3, width=16, seed=1, conservative=True)
        b = CountMinSketch(rows=3, width=16, seed=1, conservative=True)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_conservative_costs_extra_reads(self):
        plain = CountMinSketch(rows=3, width=16, seed=1)
        cons = CountMinSketch(rows=3, width=16, seed=1, conservative=True)
        assert cons.update_cost().memory_words > \
            plain.update_cost().memory_words


class TestMerge:
    def test_merge_equals_concatenation(self):
        a = CountMinSketch(rows=3, width=64, seed=11)
        b = CountMinSketch(rows=3, width=64, seed=11)
        c = CountMinSketch(rows=3, width=64, seed=11)
        a.update(1, 4)
        b.update(1, 6)
        b.update(2, 2)
        c.update(1, 10)
        c.update(2, 2)
        assert np.array_equal(a.merge(b).table, c.table)

    def test_merge_checks(self):
        a = CountMinSketch(rows=3, width=64, seed=11)
        with pytest.raises(IncompatibleSketchError):
            a.merge(CountMinSketch(rows=3, width=64, seed=12))
        with pytest.raises(IncompatibleSketchError):
            a.merge(CountMinSketch(rows=2, width=64, seed=11))


class TestAccounting:
    def test_memory_bytes(self):
        assert CountMinSketch(rows=3, width=100).memory_bytes() == 1200

    def test_update_cost_hashes(self):
        assert CountMinSketch(rows=4, width=8).update_cost().hashes == 4


class TestBulkWeightDtypes:
    """Regression: weight arrays of any integer-valued dtype must hit the
    same int64 counters the scalar path writes."""

    @pytest.mark.parametrize("dtype", [np.float64, np.uint64, np.int32])
    @pytest.mark.parametrize("width", [256, 200])  # packed and fallback
    def test_weight_array_dtype_coerced(self, dtype, width):
        keys = (np.arange(400, dtype=np.uint64) * np.uint64(2654435761)) % 89
        weights = ((np.arange(400) % 5) + 1).astype(dtype)
        bulk = CountMinSketch(rows=3, width=width, seed=4)
        scalar = CountMinSketch(rows=3, width=width, seed=4)
        bulk.update_array(keys, weights)
        for k, w in zip(keys.tolist(), weights.tolist()):
            scalar.update(int(k), int(w))
        assert bulk.table.dtype == np.int64
        assert np.array_equal(bulk.table, scalar.table)
