"""Tests for AMS, sample-and-hold, the sampled entropy estimator, and
the exact counter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.ams import AMSSketch
from repro.sketches.entropy_sampling import SampledEntropyEstimator, _x_estimate
from repro.sketches.exact import ExactCounter
from repro.sketches.sample_hold import SampleAndHold


class TestAMS:
    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            AMSSketch(groups=0)

    def test_f2_single_key(self):
        ams = AMSSketch(groups=5, copies=16, seed=1)
        ams.update(7, 10)
        assert ams.f2_estimate() == pytest.approx(100.0)
        assert ams.l2_estimate() == pytest.approx(10.0)

    def test_f2_accuracy_on_uniform(self):
        ams = AMSSketch(groups=7, copies=32, seed=2)
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 100, size=5000)
        for k in keys.tolist():
            ams.update(int(k))
        counts = np.bincount(keys)
        true_f2 = float((counts.astype(float) ** 2).sum())
        assert abs(ams.f2_estimate() - true_f2) / true_f2 < 0.3

    def test_merge(self):
        a = AMSSketch(groups=3, copies=8, seed=4)
        b = AMSSketch(groups=3, copies=8, seed=4)
        a.update(1, 3)
        b.update(1, 4)
        assert a.merge(b).l2_estimate() == pytest.approx(7.0)

    def test_merge_compat(self):
        with pytest.raises(IncompatibleSketchError):
            AMSSketch(seed=1).merge(AMSSketch(seed=2))

    def test_update_array_matches_scalar_totals(self):
        a = AMSSketch(groups=2, copies=4, seed=5)
        b = AMSSketch(groups=2, copies=4, seed=5)
        keys = np.array([1, 2, 1], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.counters, b.counters)


class TestSampleAndHold:
    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            SampleAndHold(sample_probability=0.0, capacity=10)
        with pytest.raises(ConfigurationError):
            SampleAndHold(sample_probability=0.5, capacity=0)

    def test_probability_one_tracks_everything(self):
        sh = SampleAndHold(sample_probability=1.0, capacity=100, seed=1)
        for k in [1, 1, 2, 1]:
            sh.update(k)
        assert sh.query(1) == pytest.approx(3.0)  # correction is 0 at p=1
        assert sh.query(2) == pytest.approx(1.0)

    def test_untracked_flow_is_zero(self):
        sh = SampleAndHold(sample_probability=1.0, capacity=10, seed=1)
        assert sh.query(99) == 0.0

    def test_capacity_enforced(self):
        sh = SampleAndHold(sample_probability=1.0, capacity=2, seed=1)
        for k in [1, 2, 3, 4]:
            sh.update(k)
        assert len(sh.tracked_flows()) == 2
        assert sh.dropped_admissions == 2

    def test_heavy_hitters_found_with_sampling(self):
        sh = SampleAndHold(sample_probability=0.05, capacity=500, seed=2)
        for _ in range(2000):
            sh.update(42)  # elephant
        for k in range(100, 300):
            sh.update(k)  # mice
        hh = sh.heavy_hitters(threshold=1000)
        assert [k for k, _ in hh] == [42]
        est = sh.query(42)
        assert abs(est - 2000) / 2000 < 0.05

    def test_memory_is_capacity_slots(self):
        assert SampleAndHold(0.1, capacity=100).memory_bytes() == 1600


class TestSampledEntropy:
    def test_x_estimate_convention(self):
        assert _x_estimate(0, math.log(2)) == 0.0
        assert _x_estimate(1, math.log(2)) == 0.0  # 1*log1 - 0*log0
        assert _x_estimate(2, math.log(2)) == pytest.approx(2.0)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            SampledEntropyEstimator(stream_length=0, num_samples=5)
        with pytest.raises(ConfigurationError):
            SampledEntropyEstimator(stream_length=10, num_samples=0)

    def test_rejects_overlong_stream(self):
        est = SampledEntropyEstimator(stream_length=2, num_samples=1, seed=1)
        est.update(1)
        est.update(2)
        with pytest.raises(ConfigurationError):
            est.update(3)

    def test_uniform_stream_entropy(self):
        """Entropy of a uniform stream over n keys is log2(n)."""
        n, reps = 64, 32
        stream = [k for k in range(n) for _ in range(reps)]
        est = SampledEntropyEstimator(stream_length=len(stream),
                                      num_samples=800, seed=2)
        for k in stream:
            est.update(k)
        assert abs(est.entropy_estimate() - 6.0) < 0.35

    def test_constant_stream_entropy_near_zero(self):
        m = 500
        est = SampledEntropyEstimator(stream_length=m, num_samples=600, seed=3)
        for _ in range(m):
            est.update(7)
        assert abs(est.entropy_estimate()) < 0.15

    def test_skewed_stream_matches_exact(self):
        rng = np.random.default_rng(4)
        stream = rng.zipf(1.3, size=4000) % 500
        est = SampledEntropyEstimator(stream_length=len(stream),
                                      num_samples=1500, seed=5)
        exact = ExactCounter()
        for k in stream.tolist():
            est.update(int(k))
            exact.update(int(k))
        assert abs(est.entropy_estimate() - exact.entropy()) < 0.4

    def test_memory_scales_with_samples(self):
        est = SampledEntropyEstimator(stream_length=100, num_samples=50)
        assert est.memory_bytes() == 800


class TestExactCounter:
    def test_totals_and_frequencies(self):
        c = ExactCounter()
        for k in [1, 1, 2]:
            c.update(k)
        assert c.total() == 3
        assert c.cardinality() == 2
        assert c.frequency(1) == 2
        assert c.frequency(99) == 0

    def test_heavy_hitters_threshold(self):
        c = ExactCounter()
        c.update(1, 90)
        c.update(2, 10)
        assert c.heavy_hitters(0.5) == [(1, 90)]
        assert set(k for k, _ in c.heavy_hitters(0.05)) == {1, 2}

    def test_entropy_uniform(self):
        c = ExactCounter()
        for k in range(8):
            c.update(k, 5)
        assert c.entropy(base=2.0) == pytest.approx(3.0)

    def test_entropy_constant_zero(self):
        c = ExactCounter()
        c.update(1, 100)
        assert c.entropy() == 0.0

    def test_entropy_empty_zero(self):
        assert ExactCounter().entropy() == 0.0

    def test_moments(self):
        c = ExactCounter()
        c.update(1, 3)
        c.update(2, 4)
        assert c.moment(0) == 2.0
        assert c.moment(1) == 7.0
        assert c.moment(2) == 25.0

    def test_g_sum_arbitrary(self):
        c = ExactCounter()
        c.update(1, 2)
        c.update(2, 3)
        assert c.g_sum(lambda x: x * x) == 13.0

    def test_difference_and_heavy_changes(self):
        a, b = ExactCounter(), ExactCounter()
        a.update(1, 100)
        a.update(2, 10)
        b.update(1, 10)
        b.update(3, 5)
        diff = a.difference(b)
        assert diff == {1: 90, 2: 10, 3: -5}
        assert a.total_change(b) == 105
        heavy = a.heavy_changes(b, phi=0.5)
        assert heavy == [(1, 90)]

    def test_heavy_changes_no_change(self):
        a, b = ExactCounter(), ExactCounter()
        a.update(1, 5)
        b.update(1, 5)
        assert a.heavy_changes(b, 0.1) == []

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_entropy_bounds(self, keys):
        c = ExactCounter.from_keys(keys)
        h = c.entropy(base=2.0)
        assert -1e-9 <= h <= math.log2(c.cardinality()) + 1e-9

    def test_top(self):
        c = ExactCounter()
        c.update(1, 5)
        c.update(2, 9)
        c.update(3, 1)
        assert c.top(2) == [(2, 9), (1, 5)]


class TestAMSStrictIndependence:
    def test_four_wise_variant_f2(self):
        ams = AMSSketch(groups=5, copies=16, seed=9,
                        strict_independence=True)
        ams.update(7, 10)
        assert ams.f2_estimate() == pytest.approx(100.0)

    def test_four_wise_bulk_matches_scalar(self):
        a = AMSSketch(groups=2, copies=4, seed=10, strict_independence=True)
        b = AMSSketch(groups=2, copies=4, seed=10, strict_independence=True)
        keys = np.array([1, 5, 1], dtype=np.uint64)
        a.update_array(keys)
        for k in keys.tolist():
            b.update(int(k))
        assert np.array_equal(a.counters, b.counters)

    def test_variants_not_mergeable(self):
        import pytest as _pytest
        a = AMSSketch(seed=1, strict_independence=True)
        b = AMSSketch(seed=1, strict_independence=False)
        with _pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_variance_within_textbook_bound(self):
        """Var(z^2) <= 2*F2^2 for 4-wise signs: the relative std of the
        median-of-means estimate over seeds should respect it."""
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 50, size=2000).astype(np.uint64)
        counts = np.bincount(keys.astype(int))
        true_f2 = float((counts.astype(float) ** 2).sum())
        estimates = []
        for seed in range(25):
            ams = AMSSketch(groups=5, copies=16, seed=seed,
                            strict_independence=True)
            ams.update_array(keys)
            estimates.append(ams.f2_estimate())
        rel_std = np.std(estimates) / true_f2
        # std of a mean of 16 copies ~ sqrt(2/16) ~ 0.35; median of 5
        # groups tightens further. Allow generous slack.
        assert rel_std < 0.35
        assert abs(np.median(estimates) - true_f2) / true_f2 < 0.25
