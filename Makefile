# Convenience targets for the UnivMon reproduction.

PYTHON ?= python

.PHONY: install test test-network bench bench-quick bench-smoke results \
        examples lint clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-out:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Remote-collection suites: RPC framing/retries, health tracking, the
# RemoteCoordinator epoch loop, and the chaos harness. Each test runs
# under a SIGALRM watchdog (tests/network/conftest.py) so a wedged
# socket fails the test instead of hanging the run.
test-network:
	REPRO_NETWORK_TEST_TIMEOUT=30 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/controlplane/test_rpc.py tests/network -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	$(PYTHON) benchmarks/collect_results.py

bench-quick:
	REPRO_BENCH_QUICK=1 REPRO_BENCH_RUNS=4 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

# Ingest-path smoke: asserts the bulk-update speedup floors over the
# np.add.at baseline and the BatchIngest rates on a small trace, and
# refreshes benchmarks/results/BENCH_throughput.json. Runs the
# remote-collection suites first so a broken poll path fails the smoke
# check before any benchmark numbers are published.
bench-smoke: test-network
	REPRO_BENCH_QUICK=1 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_throughput.py -q -s \
	    -k "speedup or batch_ingest"

results:
	$(PYTHON) benchmarks/collect_results.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
