# Convenience targets for the UnivMon reproduction.

PYTHON ?= python

.PHONY: install test test-network test-network-scale test-acceptance \
        test-parallel test-scenarios test-detect test-service coverage \
        bench bench-quick bench-query bench-network bench-parallel \
        bench-service bench-smoke results examples lint clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-out:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Remote-collection suites: RPC framing/retries, health tracking, the
# RemoteCoordinator epoch loop, and the chaos harness. Every test in the
# repo runs under the SIGALRM watchdog in tests/conftest.py; this target
# tightens it so a wedged socket fails fast instead of hanging the run.
test-network:
	REPRO_TEST_TIMEOUT=30 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/controlplane/test_rpc.py tests/network -q

# Seeded 200-switch chaos suite for the aggregation tree: 30% connection
# drops, a whole rack killed, and one intermediate aggregator killed
# mid-epoch, every epoch asserting published coverage reports, exact
# packet conservation over survivors, and 2-epoch recovery. Marked
# `scale` (excluded from the default run); the tightened SIGALRM
# watchdog fails a wedged epoch loop fast.
test-network-scale:
	REPRO_TEST_TIMEOUT=120 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/network/test_chaos_scale.py -q \
	    -m scale -o addopts=''

# Statistical acceptance suite (seeded error ceilings per paper task)
# plus the instrumentation-overhead guard; excluded from `make test` by
# the default marker filter in pyproject.toml.
test-acceptance:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/acceptance -q -m "acceptance or slow"

# Workload scenario suites: the property tests for the scenario
# library (seeded determinism, Counter self-consistency of the exact
# ground truth, CDF moment checks), the scenario x statistic acceptance
# matrix with its calibrated ceilings, and the DDoS-ramp fleet smoke
# through the 200-switch chaos tree.
test-scenarios:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/dataplane/test_scenarios.py -q
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/acceptance/test_scenarios.py -q \
	    -m acceptance -o addopts=''
	REPRO_TEST_TIMEOUT=120 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/network/test_chaos_scale.py -q \
	    -m scale -o addopts='' -k DDoSRampFleet

# Detection-pipeline suites: the rule grammar, state machine, and
# pipeline unit tests, the zoom hold-down regressions the pipeline
# flushed out, and the detection acceptance cell over the scenario
# matrix (attack scenarios CONFIRMED on every hot epoch with
# ground-truth key recovery; clean scenarios stay IDLE on both panel
# seeds).
test-detect:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/detect tests/network/test_zoom.py -q
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/acceptance/test_detect.py -q \
	    -m acceptance -o addopts=''

# Sharded multi-process ingest suite: shard/merge exactness, crash and
# stall handling, degradation paths, under both fork and spawn start
# methods. The tightened SIGALRM watchdog turns a wedged worker or a
# deadlocked result queue into a fast failure instead of a hung CI run.
test-parallel:
	REPRO_TEST_TIMEOUT=60 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/dataplane/test_parallel.py -q

# Always-on service suites: publication-ring atomicity under
# concurrent readers, SSE backpressure, ingest-loop sealing/drain,
# end-to-end HTTP over a live service, memo collapse, graceful
# shutdown, and the concurrency regression tests for the metric
# primitives and the snapshot cache. The tightened SIGALRM watchdog
# turns a wedged event loop or a hung socket into a fast failure.
test-service:
	REPRO_TEST_TIMEOUT=60 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest tests/service -q

# Line coverage of the observability layer (src/repro/obs), failing
# under 85%. Skips cleanly when coverage.py is not installed.
coverage:
	@$(PYTHON) -c "import coverage" 2>/dev/null \
	    || { echo "coverage.py not installed; skipping coverage gate"; \
	         exit 0; } \
	    && PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m coverage run \
	        --source=src/repro/obs -m pytest tests/obs -q \
	    && $(PYTHON) -m coverage report -m --fail-under=85

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	$(PYTHON) benchmarks/collect_results.py

bench-quick:
	REPRO_BENCH_QUICK=1 REPRO_BENCH_RUNS=4 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

# Control-plane query smoke: asserts the >= 5x batched-vs-scalar floor
# of the vectorised query engine (scalar/batched parity included) and
# refreshes benchmarks/results/BENCH_query.json.
bench-query:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_query_latency.py -q -s

# Aggregation-tree scale bench: bytes-on-wire (raw vs delta transfer,
# with the >= 3x codec floor) and root merge time (flat vs tree) swept
# across switch counts, recorded into BENCH_network.json plus the
# bytes-vs-switch-count figure, then spliced into EXPERIMENTS.md.
bench-network:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_network_scale.py -q -s
	$(PYTHON) benchmarks/collect_results.py

# Serial-vs-pooled crossover sweep on the persistent shard worker pool:
# one warm pool per worker count, swept across stream sizes, with the
# by_workers crossover curve recorded into BENCH_throughput.json and
# spliced into EXPERIMENTS.md by collect_results.py. The full 1M-10M
# sweep and the >= 2x floor only engage on >= 4-core hosts; smaller
# hosts record a reduced curve (and the floor test skips cleanly).
bench-parallel:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_throughput.py -q -s \
	    -k "crossover or sharded or workers_sweep"
	$(PYTHON) benchmarks/collect_results.py

# Ingest-path smoke: asserts the bulk-update speedup floors over the
# np.add.at baseline, the BatchIngest rates, the sharded-ingest
# exactness sweep, and the pool crossover curve (plus the >= 2x floors
# on >= 4-core hosts), and refreshes
# benchmarks/results/BENCH_throughput.json. Runs the remote-collection
# suites, the statistical acceptance suite, the sharded-ingest suite,
# and the obs coverage gate first, so a broken poll path or a degraded
# estimator fails the smoke check before any benchmark numbers are
# published. The query-engine floor rides along (quick workload) so a
# control-plane regression blocks the smoke too, and the 200-switch
# chaos suite plus the aggregation-tree codec floor (quick sweep) gate
# the network collection path.  The scenario suites ride along too
# (test-scenarios prerequisite + the per-scenario ingest/error bench),
# so a degraded scenario ceiling or a broken scenario generator blocks
# the smoke as well.  The detection suites (test-detect prerequisite +
# the rule-eval overhead floor in bench_detect.py) gate the detection
# pipeline the same way, and the always-on service gates through
# test-service plus the quick-mode service load bench (latency sweep,
# ingest-isolation floor, memo collapse).
bench-smoke: test-network test-network-scale test-acceptance \
             test-parallel test-scenarios test-detect test-service coverage
	REPRO_BENCH_QUICK=1 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_throughput.py \
	    benchmarks/bench_query_latency.py \
	    benchmarks/bench_network_scale.py \
	    benchmarks/bench_scenarios.py \
	    benchmarks/bench_detect.py -q -s \
	    -k "speedup or batch_ingest or crossover or matches or snapshot \
	        or bytes_on_wire or merge_time or cumulative or scenario_ingest \
	        or rule_eval"
	REPRO_BENCH_QUICK=1 PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_service.py -q -s

# Service load bench: p50/p99 query latency under a concurrent client
# swarm during live ingest (200 clients in full mode), the <= 10%
# ingest-degradation floor under a sustained external poll load, and
# the memo-collapse / builds-equals-epochs invariants, recorded into
# BENCH_service.json and spliced into EXPERIMENTS.md.
bench-service:
	PYTHONPATH=src:$(PYTHONPATH) \
	$(PYTHON) -m pytest benchmarks/bench_service.py -q -s
	$(PYTHON) benchmarks/collect_results.py

results:
	$(PYTHON) benchmarks/collect_results.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
