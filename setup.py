"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
legacy (non-PEP-517) editable install path works in offline environments
where the ``wheel`` package is unavailable:

    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
