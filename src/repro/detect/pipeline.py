"""The detection pipeline: rules x state machines x actions, per epoch.

:class:`DetectionPipeline` is a :class:`~repro.controlplane.apps.base.MonitoringApp`,
so it registers on a :class:`~repro.controlplane.controller.Controller`
(or :class:`~repro.network.remote.RemoteCoordinator`) like any estimation
app and consumes each sealed epoch sketch.  Per epoch it:

1. resolves the union of metrics every rule reads into one
   :meth:`~repro.core.query.QueryEngine.evaluate_many` batch over the
   epoch's cached :class:`~repro.core.query.QuerySnapshot` — rule count
   does not multiply snapshot builds;
2. evaluates each rule's condition against those values and its own
   EWMA baselines, and steps the rule's
   :class:`~repro.detect.state.RuleStateMachine`;
3. on CONFIRMED epochs, runs the rule's actions (zoom refinement, key
   recovery — see :mod:`repro.detect.actions`) and emits structured
   :class:`DetectionEvent`\\ s, mirrored into the obs layer as
   ``univmon_detect_*`` counters and spans.

The controller hands the pipeline the epoch's raw trace through the
optional ``observe_trace`` hook before ``on_sketch``; without it (the
remote coordinator only ships merged sketches) the pipeline still
detects — actions degrade to snapshot-based recovery and no zoom.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, \
    Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import heavy_changes
from repro.core.query import QueryEngine, Statistic
from repro.detect.actions import RecoveryAction, ZoomAction
from repro.detect.rules import Rule
from repro.detect.state import RuleState, RuleStateMachine


@dataclass
class DetectionEvent:
    """One state transition or confirmed-epoch report for one rule."""

    epoch_index: int
    rule: str
    state_from: str
    state_to: str
    triggering: bool
    condition: str
    values: Dict[str, Optional[float]] = field(default_factory=dict)
    baselines: Dict[str, Optional[float]] = field(default_factory=dict)
    recovered_keys: List[Dict[str, object]] = field(default_factory=list)
    zoom_regions: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_transition(self) -> bool:
        return self.state_from != self.state_to

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch_index,
            "rule": self.rule,
            "from": self.state_from,
            "to": self.state_to,
            "triggering": self.triggering,
            "condition": self.condition,
            "values": dict(self.values),
            "baselines": dict(self.baselines),
            "recovered_keys": list(self.recovered_keys),
            "zoom_regions": [list(r) for r in self.zoom_regions],
        }


# --------------------------------------------------------------------- #
# metric resolution: rule metric specs -> per-epoch values
# --------------------------------------------------------------------- #

@functools.lru_cache(maxsize=256)
def _statistic_for(spec: str) -> Optional[Statistic]:
    """The batch-engine statistic behind a rule metric, if one maps.

    Memoised: a pipeline resolves the same specs every epoch, and a
    shared Statistic (hence shared GFunction) keeps the engine's
    identity-keyed validation caches warm."""
    family, _, param = spec.partition(":")
    if family in ("packets", "hh_count", "max_share", "total_change"):
        return None     # handled outside evaluate_many
    if family == "f0":
        family = "cardinality"
    return Statistic.parse(f"{family}:{param}" if param else family)


def _resolve_metrics(sketch, specs: FrozenSet[str],
                     prev_sketch) -> Dict[str, Optional[float]]:
    """Evaluate every needed metric from one snapshot, one batch pass."""
    engine = QueryEngine(sketch)
    stats: Dict[str, Statistic] = {}
    for spec in specs:
        stat = _statistic_for(spec)
        if stat is not None:
            stats[spec] = stat
    values: Dict[str, Optional[float]] = {}
    if stats:
        batch = engine.evaluate_many(set(stats.values()))
        for spec, stat in stats.items():
            values[spec] = float(batch[stat.name])
    snapshot = engine.snapshot()
    for spec in specs:
        if spec in values:
            continue
        family, _, param = spec.partition(":")
        if family == "packets":
            values[spec] = float(snapshot.total_weight)
        elif family == "hh_count":
            fraction = float(param) if param else 0.005
            values[spec] = float(len(snapshot.gcore(fraction)))
        elif family == "max_share":
            total = snapshot.total_weight
            mags = snapshot.mags[0]
            values[spec] = (float(mags[0]) / total
                            if total > 0 and len(mags) else 0.0)
        elif family == "total_change":
            if prev_sketch is None:
                values[spec] = None     # warms up after the first epoch
            else:
                phi = float(param) if param else 0.05
                _, total = heavy_changes(sketch, prev_sketch, phi)
                values[spec] = float(total)
        else:   # unreachable: the rule parser rejects unknown families
            raise ConfigurationError(f"unresolvable metric {spec!r}")
    return values


# --------------------------------------------------------------------- #
# the pipeline app
# --------------------------------------------------------------------- #

class DetectionPipeline(MonitoringApp):
    """Declarative detection over sealed epoch sketches.

    Parameters
    ----------
    rules:
        The rule set (parsed :class:`~repro.detect.rules.Rule` objects;
        see :func:`rules_from_spec` for TOML/JSON loading).
    recover_fraction:
        Key-recovery threshold as a share of the epoch's packets.
    zoom:
        A pre-configured :class:`~repro.network.zoom.ZoomMonitor` to
        drive (one is created on demand otherwise).
    keep_events:
        Retain the full event log on the instance (``.events``); per-epoch
        events are always returned in the ``on_sketch`` result.
    """

    name = "detect"

    def __init__(self, rules: Iterable[Rule],
                 recover_fraction: float = 0.08,
                 zoom=None,
                 keep_events: bool = True) -> None:
        self.rules: List[Rule] = list(rules)
        if not self.rules:
            raise ConfigurationError("detection pipeline needs >= 1 rule")
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate rule names in {names}")
        self.machines: Dict[str, RuleStateMachine] = {
            rule.name: RuleStateMachine(confirm_epochs=rule.confirm_epochs,
                                        cooldown_epochs=rule.cooldown_epochs)
            for rule in self.rules
        }
        self._needs_recover = any("recover" in rule.actions
                                  for rule in self.rules)
        self._needs_zoom = any("zoom" in rule.actions for rule in self.rules)
        self._needs_change = any(
            any(m.startswith("total_change") for m in rule.metrics())
            for rule in self.rules)
        self.recovery = RecoveryAction(fraction=recover_fraction) \
            if self._needs_recover else None
        self.zoom_action = ZoomAction(zoom) if self._needs_zoom else None
        self.keep_events = keep_events
        self.events: List[DetectionEvent] = []
        self._trace = None           # set by observe_trace, per epoch
        self._prev_sketch = None     # defensive copy, only when needed
        self.recover_fraction = recover_fraction

    # -- controller hooks ------------------------------------------------ #

    def observe_trace(self, trace) -> None:
        """Receive the raw epoch trace (optional controller hook).

        Runs *before* ``on_sketch`` for the same epoch; the trace powers
        zoom refinement and reversible-sketch maintenance.  Sketch-only
        hosts (the remote coordinator) simply never call this.
        """
        self._trace = trace

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        reg = get_registry()
        trace = self._trace
        self._trace = None
        # Maintain recovery sketches every epoch (the difference stream
        # needs the previous epoch ready *before* anything confirms).
        if self.recovery is not None and trace is not None:
            with reg.span("univmon_detect_action_seconds",
                          help="detection action latency", action="maintain"):
                self.recovery.observe(trace)

        needed: FrozenSet[str] = frozenset().union(
            *(rule.metrics() for rule in self.rules))
        with reg.span("univmon_detect_eval_seconds",
                      help="rule metric resolution + condition evaluation"):
            values = _resolve_metrics(sketch, needed, self._prev_sketch)
            outcomes = {rule.name: rule.evaluate(values)
                        for rule in self.rules}
        if self._needs_change:
            copy = getattr(sketch, "copy", None)
            self._prev_sketch = copy() if copy is not None else None

        reg.counter("univmon_detect_epochs_total",
                    help="epochs evaluated by the detection pipeline").inc()
        reg.gauge("univmon_detect_rules",
                  help="rules registered on the pipeline").set(
                      len(self.rules))

        epoch_events: List[DetectionEvent] = []
        recovered_cache: Optional[List[Dict[str, object]]] = None
        for rule in self.rules:
            triggering = outcomes[rule.name]
            machine = self.machines[rule.name]
            previous, current = machine.step(triggering)
            if previous == current and not machine.active:
                continue    # steady non-alerting state: no event
            event = DetectionEvent(
                epoch_index=epoch_index, rule=rule.name,
                state_from=previous.value, state_to=current.value,
                triggering=triggering, condition=rule.condition.describe(),
                values={m: values.get(m) for m in rule.metrics()},
                baselines=rule.baselines())
            if previous != current:
                reg.counter("univmon_detect_transitions_total",
                            help="rule state transitions",
                            rule=rule.name, to=current.value).inc()
            if machine.active:
                reg.counter("univmon_detect_confirmed_epochs_total",
                            help="epochs spent CONFIRMED per rule",
                            rule=rule.name).inc()
                with reg.span("univmon_detect_action_seconds",
                              help="detection action latency",
                              action="respond"):
                    self._run_actions(rule, event, sketch, trace,
                                      epoch_index, recovered_cache)
                if event.recovered_keys and recovered_cache is None:
                    recovered_cache = event.recovered_keys
            epoch_events.append(event)
        if self.keep_events:
            self.events.extend(epoch_events)
        return {
            "states": {rule.name: self.machines[rule.name].state.value
                       for rule in self.rules},
            "triggering": outcomes,
            "values": values,
            "events": [event.to_dict() for event in epoch_events],
            "alerting": [rule.name for rule in self.rules
                         if self.machines[rule.name].active],
        }

    def _run_actions(self, rule: Rule, event: DetectionEvent, sketch,
                     trace, epoch_index: int,
                     recovered_cache) -> None:
        reg = get_registry()
        if "recover" in rule.actions:
            if recovered_cache is not None:
                # Another rule already reversed this epoch's streams.
                event.recovered_keys = list(recovered_cache)
            elif self.recovery is not None and trace is not None:
                event.recovered_keys = self.recovery.recover()
            else:
                event.recovered_keys = RecoveryAction.recover_from_snapshot(
                    sketch, self.recover_fraction)
            if recovered_cache is None:
                reg.counter("univmon_detect_keys_recovered_total",
                            help="keys recovered by detection actions").inc(
                                len(event.recovered_keys))
        if "zoom" in rule.actions and self.zoom_action is not None:
            event.zoom_regions = self.zoom_action.refine(trace, epoch_index)

    # -- introspection --------------------------------------------------- #

    def states(self) -> Dict[str, RuleState]:
        return {name: machine.state
                for name, machine in self.machines.items()}

    def reset(self) -> None:
        for rule in self.rules:
            rule.reset()
        for machine in self.machines.values():
            machine.reset()
        if self.recovery is not None:
            self.recovery.reset()
        if self.zoom_action is not None:
            self.zoom_action.reset()
        self.events.clear()
        self._trace = None
        self._prev_sketch = None


# --------------------------------------------------------------------- #
# rule specs (TOML / JSON)
# --------------------------------------------------------------------- #

_RULE_KEYS = frozenset({"name", "when", "confirm_epochs", "cooldown_epochs",
                        "min_baseline_epochs", "baseline_alpha", "actions"})


def rules_from_spec(spec: Mapping[str, Any]) -> List[Rule]:
    """Build rules from a parsed spec mapping: ``{"rules": [{...}]}``."""
    entries = spec.get("rules")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError(
            "rule spec needs a non-empty 'rules' list")
    rules = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(f"rules[{i}] is not a table/object")
        unknown = set(entry) - _RULE_KEYS
        if unknown:
            raise ConfigurationError(
                f"rules[{i}] has unknown keys {sorted(unknown)} "
                f"(know: {sorted(_RULE_KEYS)})")
        if "name" not in entry or "when" not in entry:
            raise ConfigurationError(
                f"rules[{i}] needs 'name' and 'when'")
        kwargs = dict(entry)
        if "actions" in kwargs:
            kwargs["actions"] = tuple(kwargs["actions"])
        rules.append(Rule(**kwargs))
    return rules


def load_rules(path: str) -> List[Rule]:
    """Load rules from a ``.toml`` or ``.json`` spec file."""
    if path.endswith(".toml"):
        import tomllib
        with open(path, "rb") as fh:
            spec = tomllib.load(fh)
    else:
        with open(path, "r", encoding="utf-8") as fh:
            spec = json.load(fh)
    return rules_from_spec(spec)


#: A conservative stock rule set for ``univmon detect`` without a spec:
#: volumetric DDoS (cardinality + volume), scan (cardinality explosion
#: with flat volume), and entropy collapse (one key dominating).
DEFAULT_RULES: Tuple[Dict[str, Any], ...] = (
    {"name": "cardinality-surge",
     "when": "cardinality spikes > 1.5x baseline",
     "confirm_epochs": 2, "cooldown_epochs": 2},
    {"name": "volume-surge",
     "when": "packets rises > 100% and l2 spikes > 1.5x baseline",
     "confirm_epochs": 2, "cooldown_epochs": 2},
    {"name": "entropy-collapse",
     "when": "entropy drops > 40%",
     "confirm_epochs": 2, "cooldown_epochs": 2},
)


def default_rules() -> List[Rule]:
    return rules_from_spec({"rules": [dict(r) for r in DEFAULT_RULES]})


__all__ = [
    "DetectionEvent",
    "DetectionPipeline",
    "default_rules",
    "DEFAULT_RULES",
    "load_rules",
    "rules_from_spec",
]
