"""Per-rule detection state machine.

Four states, driven once per sealed epoch by the boolean outcome of the
rule's condition:

.. code-block:: text

                 trigger                    trigger x confirm_epochs
      IDLE  ────────────────►  TRIGGERED  ─────────────────────────►  CONFIRMED
        ▲                          │                                      │
        │          quiet           │ quiet                                │ quiet
        │  ◄───────────────────────┘                                      ▼
        │                                                            RECOVERING
        │            quiet x cooldown_epochs                              │
        └─────────────────────────────────────────◄───────────────────────┘
                                                      (trigger: back to CONFIRMED)

TRIGGERED means "hot, but not for long enough to alert" — one noisy
epoch falls straight back to IDLE.  CONFIRMED is the alerting state;
actions (zoom, key recovery) run while a rule is CONFIRMED.  RECOVERING
is the cooldown: the condition has gone quiet but the rule re-confirms
immediately (no confirm delay) if it flares up again before
``cooldown_epochs`` consecutive quiet epochs have passed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RuleState(enum.Enum):
    IDLE = "idle"
    TRIGGERED = "triggered"
    CONFIRMED = "confirmed"
    RECOVERING = "recovering"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class RuleStateMachine:
    """Tracks one rule's state across epochs.

    Parameters
    ----------
    confirm_epochs:
        Consecutive triggering epochs required before CONFIRMED
        (``1`` = confirm on the first hot epoch, skipping TRIGGERED).
    cooldown_epochs:
        Consecutive quiet epochs in RECOVERING before returning to IDLE
        (``1`` = a single quiet epoch ends the alert).
    """

    confirm_epochs: int = 2
    cooldown_epochs: int = 2

    def __post_init__(self) -> None:
        if self.confirm_epochs < 1:
            raise ValueError(
                f"confirm_epochs must be >= 1, got {self.confirm_epochs}")
        if self.cooldown_epochs < 1:
            raise ValueError(
                f"cooldown_epochs must be >= 1, got {self.cooldown_epochs}")
        self.state = RuleState.IDLE
        self._hot_epochs = 0      # consecutive triggering epochs
        self._quiet_epochs = 0    # consecutive quiet epochs in RECOVERING

    @property
    def active(self) -> bool:
        """True while actions should run (CONFIRMED only)."""
        return self.state is RuleState.CONFIRMED

    def step(self, triggering: bool) -> tuple:
        """Advance one epoch; returns ``(previous_state, new_state)``."""
        previous = self.state
        if triggering:
            self._hot_epochs += 1
            self._quiet_epochs = 0
            if previous is RuleState.IDLE:
                self.state = (RuleState.CONFIRMED
                              if self._hot_epochs >= self.confirm_epochs
                              else RuleState.TRIGGERED)
            elif previous is RuleState.TRIGGERED:
                if self._hot_epochs >= self.confirm_epochs:
                    self.state = RuleState.CONFIRMED
            elif previous is RuleState.RECOVERING:
                # Flare-up during cooldown: re-confirm immediately.
                self.state = RuleState.CONFIRMED
            # CONFIRMED + trigger stays CONFIRMED.
        else:
            self._hot_epochs = 0
            if previous is RuleState.TRIGGERED:
                self.state = RuleState.IDLE
            elif previous is RuleState.CONFIRMED:
                self._quiet_epochs = 1
                self.state = (RuleState.IDLE
                              if self._quiet_epochs >= self.cooldown_epochs
                              else RuleState.RECOVERING)
            elif previous is RuleState.RECOVERING:
                self._quiet_epochs += 1
                if self._quiet_epochs >= self.cooldown_epochs:
                    self.state = RuleState.IDLE
            # IDLE + quiet stays IDLE.
        if self.state is RuleState.IDLE:
            self._quiet_epochs = 0
        return previous, self.state

    def reset(self) -> None:
        self.state = RuleState.IDLE
        self._hot_epochs = 0
        self._quiet_epochs = 0


__all__ = ["RuleState", "RuleStateMachine"]
