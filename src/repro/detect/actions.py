"""Detection actions: what a CONFIRMED rule drives.

Detection without actionability is half the loop (Tang et al.'s
invertible-sketch line of work makes this point for key recovery;
StreaMon for mitigation hooks).  Two actions are wired here, both thin
drivers over primitives that already exist in the repo:

``zoom``
    Feed the epoch's trace through a shared
    :class:`~repro.network.zoom.ZoomMonitor`, refining the monitored
    source subspace one ladder step around whatever is hot.  The zoom
    monitor persists across epochs, so consecutive CONFIRMED epochs walk
    the ladder /8 → /16 → /24 → /32 toward the implicated region.

``recover``
    Maintain per-feature :class:`~repro.sketches.reversible.ReversibleSketch`
    pairs (current and previous epoch, same geometry and seed so they
    subtract exactly) over the raw 32-bit src/dst address streams, and on
    CONFIRMED epochs reverse both the *raw* stream (sustained heavies —
    the victim of a DDoS shows up here on the dst feature) and the
    *difference* stream (what changed since the previous epoch — the
    attack delta, robust to heavy-but-benign baseline flows).  The
    reversal threshold auto-raises when the preimage enumeration would
    blow up (``ConfigurationError`` from ``recover_heavy_keys``).

When the pipeline runs without a trace (the remote coordinator only has
merged sketches), recovery degrades to the sealed universal sketch's own
G-core: for reversible key functions (src/dst) those level-0 keys *are*
addresses, so the event still names concrete keys, labeled
``stream="snapshot"``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.universal import UniversalSketch
from repro.network.zoom import ZoomMonitor
from repro.sketches.reversible import ReversibleSketch


#: How many times recovery doubles its threshold before giving up.
_RAISE_LIMIT = 8


def _recover_with_backoff(sketch: ReversibleSketch, threshold: float,
                          max_keys: int) -> List[Tuple[int, float]]:
    """``recover_heavy_keys`` with auto-raising threshold.

    A busy difference stream can light up more row-0 buckets than the
    preimage enumeration tolerates; doubling the threshold keeps the
    reversal sound (we only lose the *smaller* heavies) instead of
    failing the epoch.
    """
    for _ in range(_RAISE_LIMIT):
        try:
            return sketch.recover_heavy_keys(threshold)[:max_keys]
        except ConfigurationError:
            threshold *= 2.0
    return []


class RecoveryAction:
    """Reversible-sketch maintenance plus raw/difference key recovery.

    Parameters
    ----------
    fraction:
        Recovery threshold as a fraction of the epoch's packet count —
        a key must account for at least this share of the stream (raw)
        or of the churn (difference) to be reported.
    features:
        Which address columns to maintain sketches over.
    max_keys:
        Cap on recovered keys per (feature, stream) pair.
    """

    _COLUMNS = {"src": lambda trace: trace.src,
                "dst": lambda trace: trace.dst}

    def __init__(self, fraction: float = 0.08,
                 features: Tuple[str, ...] = ("src", "dst"),
                 max_keys: int = 16,
                 sketch_factory: Optional[
                     Callable[[], ReversibleSketch]] = None,
                 seed: int = 7) -> None:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"recover fraction must be in (0,1), got {fraction}")
        for feature in features:
            if feature not in self._COLUMNS:
                raise ConfigurationError(
                    f"unknown recovery feature {feature!r} "
                    f"(know: {', '.join(self._COLUMNS)})")
        self.fraction = fraction
        self.features = tuple(features)
        self.max_keys = max_keys
        if sketch_factory is None:
            sketch_factory = lambda: ReversibleSketch(  # noqa: E731
                rows=4, chunk_bits=8, bucket_bits_per_chunk=3, seed=seed)
        self._factory = sketch_factory
        self._current: Dict[str, ReversibleSketch] = {}
        self._previous: Dict[str, ReversibleSketch] = {}
        self._packets = 0
        self._prev_packets = 0

    # -- per-epoch maintenance ------------------------------------------ #

    def observe(self, trace) -> None:
        """Absorb one epoch's trace (runs every epoch, alert or not)."""
        self._previous = self._current
        self._prev_packets = self._packets
        self._current = {}
        self._packets = len(trace)
        for feature in self.features:
            sketch = self._factory()
            column = self._COLUMNS[feature](trace)
            sketch.update_array(column.astype(np.uint64))
            self._current[feature] = sketch

    # -- the action ----------------------------------------------------- #

    def recover(self) -> List[Dict[str, object]]:
        """Reverse raw and difference streams for every feature.

        Returns a flat list of ``{"key", "estimate", "feature",
        "stream"}`` dicts, raw stream first, strongest key first.
        """
        found: List[Dict[str, object]] = []
        for feature in self.features:
            current = self._current.get(feature)
            if current is None:
                continue
            threshold = max(2.0, self.fraction * self._packets)
            for key, estimate in _recover_with_backoff(
                    current, threshold, self.max_keys):
                found.append({"key": int(key), "estimate": float(estimate),
                              "feature": feature, "stream": "raw"})
            previous = self._previous.get(feature)
            if previous is None:
                continue
            churn = max(self._packets - self._prev_packets,
                        self._packets // 2, 1)
            diff_threshold = max(2.0, self.fraction * churn)
            for key, estimate in _recover_with_backoff(
                    current.subtract(previous), diff_threshold,
                    self.max_keys):
                found.append({"key": int(key), "estimate": float(estimate),
                              "feature": feature, "stream": "difference"})
        return found

    @staticmethod
    def recover_from_snapshot(sketch, fraction: float,
                              max_keys: int = 16) -> List[Dict[str, object]]:
        """Trace-free fallback: the sealed sketch's own heavy hitters."""
        try:
            heavy = sketch.heavy_hitters(fraction)
        except (AttributeError, TypeError):
            return []
        return [{"key": int(key), "estimate": float(weight),
                 "feature": "monitored", "stream": "snapshot"}
                for key, weight in heavy[:max_keys]]

    def reset(self) -> None:
        self._current = {}
        self._previous = {}
        self._packets = 0
        self._prev_packets = 0


class ZoomAction:
    """Shared :class:`ZoomMonitor` fed on CONFIRMED epochs only.

    The zoom monitor keeps its own refinement state and hold-down
    counters; this wrapper just rations trace feeds to at most one per
    epoch regardless of how many rules request zooming.
    """

    def __init__(self, zoom: Optional[ZoomMonitor] = None) -> None:
        self.zoom = zoom or ZoomMonitor(
            sketch_factory=lambda: UniversalSketch(
                levels=10, rows=4, width=512, heap_size=32, seed=11))
        self._fed_epoch: Optional[int] = None

    def refine(self, trace, epoch_index: int) -> List[Tuple[int, int]]:
        """Feed the trace once for this epoch; returns refined regions."""
        if trace is not None and self._fed_epoch != epoch_index:
            self.zoom.process_epoch(trace)
            self._fed_epoch = epoch_index
        return self.zoom.monitored_regions()

    def reset(self) -> None:
        self.zoom.refined.clear()
        getattr(self.zoom, "_cold", {}).clear()
        self._fed_epoch = None


__all__ = ["RecoveryAction", "ZoomAction"]
