"""Programmable detection over the universal sketch (StreaMon-style).

One RISC sketch, many detectors: rules are condition expressions over
the per-epoch batch statistics (:mod:`repro.detect.rules`), debounced by
per-rule state machines (:mod:`repro.detect.state`), driving zoom-in and
reversible-sketch key recovery as actions (:mod:`repro.detect.actions`),
all packaged as one controller app (:mod:`repro.detect.pipeline`).
"""

from repro.detect.rules import (Baseline, Comparison, Condition, Rule,
                                RuleSyntaxError, parse_condition)
from repro.detect.state import RuleState, RuleStateMachine
from repro.detect.actions import RecoveryAction, ZoomAction
from repro.detect.pipeline import (DetectionEvent, DetectionPipeline,
                                   DEFAULT_RULES, default_rules, load_rules,
                                   rules_from_spec)

__all__ = [
    "Baseline",
    "Comparison",
    "Condition",
    "DetectionEvent",
    "DetectionPipeline",
    "DEFAULT_RULES",
    "default_rules",
    "load_rules",
    "parse_condition",
    "RecoveryAction",
    "Rule",
    "RuleState",
    "RuleStateMachine",
    "RuleSyntaxError",
    "rules_from_spec",
    "ZoomAction",
]
