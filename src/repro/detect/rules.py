"""The detection-rule grammar: condition expressions over epoch statistics.

A rule's ``when`` clause is a boolean expression over the per-epoch
statistics the :class:`~repro.core.query.QueryEngine` computes from one
sealed sketch's cached :class:`~repro.core.query.QuerySnapshot`.  The
grammar is deliberately small — StreaMon-style event conditions, nothing
Turing-complete:

.. code-block:: text

    expr       := or_expr
    or_expr    := and_expr ( "or" and_expr )*
    and_expr   := not_expr ( "and" not_expr )*
    not_expr   := "not" not_expr | "(" expr ")" | comparison
    comparison := metric cmp
    metric     := NAME [ ":" param ] [ "(" feature ")" ]
    cmp        := (">" | ">=" | "<" | "<=") NUMBER          # absolute
                | "spikes" [">"] NUMBER "x" ["baseline"]     # v > N * baseline
                | "drops"  [">"] NUMBER "%" ["baseline"]     # v < (1 - N/100) * baseline
                | "rises"  [">"] NUMBER "%" ["baseline"]     # v > (1 + N/100) * baseline

so ``entropy(src) drops > 30% and cardinality spikes > 4x baseline``
parses to an :class:`And` of two baseline-relative comparisons.  The
optional ``(feature)`` tag is informational — it names the key feature
the operator had in mind and is carried into events/reports; the
pipeline evaluates every rule against the one key stream it monitors.

Metric names (``resolve_metrics`` in :mod:`repro.detect.pipeline` maps
them onto the batch query engine): ``entropy[:base]``,
``cardinality``/``f0``, ``l1``, ``l2``, ``f2``, ``moment:p``,
``packets``, ``hh_count[:fraction]``, ``max_share[:fraction]`` and
``total_change[:phi]`` (the only one that needs the previous epoch's
sketch — rules that skip it keep the pipeline subtract-free).

Baselines are per-rule, per-metric exponential moving averages learned
from *non-triggering* epochs only: once a rule's condition goes true its
baselines freeze, so a ramping attack cannot drag its own reference up
epoch by epoch.  A baseline-relative comparison evaluates ``False``
until the baseline has seen ``min_baseline_epochs`` samples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError


class RuleSyntaxError(ConfigurationError):
    """A ``when`` clause that does not parse."""


# --------------------------------------------------------------------- #
# tokenizer
# --------------------------------------------------------------------- #

_TOKEN = re.compile(r"""
    (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*(?::\d+(?:\.\d+)?)?)
  | (?P<op>>=|<=|>|<)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<ws>\s+)
  | (?P<bad>.)
""", re.VERBOSE)

#: Keywords the parser consumes (lowercased NAME tokens).
_KEYWORDS = frozenset({"and", "or", "not", "spikes", "drops", "rises",
                       "baseline", "x"})

#: Metric families the pipeline can evaluate (prefix before ``:param``).
KNOWN_METRICS = frozenset({
    "entropy", "cardinality", "f0", "l1", "l2", "f2", "moment", "packets",
    "hh_count", "max_share", "total_change",
})


@dataclass(frozen=True)
class _Token:
    kind: str          # number | name | op | lparen | rparen
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    for match in _TOKEN.finditer(source):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise RuleSyntaxError(
                f"unexpected character {match.group()!r} at column "
                f"{match.start()} in {source!r}")
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


# --------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------- #

class Condition:
    """Base expression node."""

    def evaluate(self, values: Mapping[str, Optional[float]],
                 baselines: Mapping[str, Optional[float]]) -> bool:
        raise NotImplementedError

    def metrics(self) -> FrozenSet[str]:
        """Every metric spec this expression reads."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


#: Comparison kinds and their evaluation against (value, baseline).
_ABSOLUTE_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class Comparison(Condition):
    """One ``metric cmp`` leaf.

    ``op`` is one of ``> >= < <=`` (absolute threshold), ``spikes``
    (value > ``threshold`` x baseline), ``drops`` (value below baseline
    by more than ``threshold`` percent) or ``rises`` (above baseline by
    more than ``threshold`` percent).
    """

    metric: str                       # e.g. "cardinality", "moment:1.5"
    op: str
    threshold: float
    feature: Optional[str] = None     # informational tag, e.g. "src"

    def __post_init__(self) -> None:
        family = self.metric.partition(":")[0]
        if family not in KNOWN_METRICS:
            raise RuleSyntaxError(
                f"unknown metric {self.metric!r} (know: "
                f"{', '.join(sorted(KNOWN_METRICS))})")
        if self.op in ("spikes",) and self.threshold <= 0:
            raise RuleSyntaxError(
                f"spike ratio must be > 0, got {self.threshold}")
        if self.op in ("drops", "rises") and not 0 < self.threshold < 1000:
            raise RuleSyntaxError(
                f"percent change must be in (0, 1000), "
                f"got {self.threshold}")

    @property
    def needs_baseline(self) -> bool:
        return self.op in ("spikes", "drops", "rises")

    def evaluate(self, values: Mapping[str, Optional[float]],
                 baselines: Mapping[str, Optional[float]]) -> bool:
        value = values.get(self.metric)
        if value is None:
            return False
        if self.op in _ABSOLUTE_OPS:
            return _ABSOLUTE_OPS[self.op](value, self.threshold)
        baseline = baselines.get(self.metric)
        if baseline is None:
            return False    # baseline still warming up
        if self.op == "spikes":
            return value > self.threshold * baseline
        if self.op == "drops":
            return value < (1.0 - self.threshold / 100.0) * baseline
        if self.op == "rises":
            return value > (1.0 + self.threshold / 100.0) * baseline
        raise RuleSyntaxError(f"unknown operator {self.op!r}")

    def metrics(self) -> FrozenSet[str]:
        return frozenset({self.metric})

    def describe(self) -> str:
        name = self.metric if self.feature is None \
            else f"{self.metric}({self.feature})"
        if self.op == "spikes":
            return f"{name} spikes > {self.threshold:g}x baseline"
        if self.op in ("drops", "rises"):
            return f"{name} {self.op} > {self.threshold:g}%"
        return f"{name} {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class And(Condition):
    children: Tuple[Condition, ...]

    def evaluate(self, values, baselines) -> bool:
        return all(c.evaluate(values, baselines) for c in self.children)

    def metrics(self) -> FrozenSet[str]:
        return frozenset().union(*(c.metrics() for c in self.children))

    def describe(self) -> str:
        return " and ".join(
            f"({c.describe()})" if isinstance(c, Or) else c.describe()
            for c in self.children)


@dataclass(frozen=True)
class Or(Condition):
    children: Tuple[Condition, ...]

    def evaluate(self, values, baselines) -> bool:
        return any(c.evaluate(values, baselines) for c in self.children)

    def metrics(self) -> FrozenSet[str]:
        return frozenset().union(*(c.metrics() for c in self.children))

    def describe(self) -> str:
        return " or ".join(c.describe() for c in self.children)


@dataclass(frozen=True)
class Not(Condition):
    child: Condition

    def evaluate(self, values, baselines) -> bool:
        return not self.child.evaluate(values, baselines)

    def metrics(self) -> FrozenSet[str]:
        return self.child.metrics()

    def describe(self) -> str:
        inner = self.child.describe()
        if isinstance(self.child, (And, Or)):
            inner = f"({inner})"
        return f"not {inner}"


# --------------------------------------------------------------------- #
# recursive-descent parser
# --------------------------------------------------------------------- #

class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers -------------------------------------------------- #

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RuleSyntaxError(
                f"unexpected end of expression in {self.source!r}")
        self.index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return (token is not None and token.kind == "name"
                and token.text.lower() in words)

    def _expect_keyword(self, *words: str) -> str:
        token = self._next()
        if token.kind != "name" or token.text.lower() not in words:
            raise RuleSyntaxError(
                f"expected {' or '.join(words)!s} at column "
                f"{token.position} in {self.source!r}, got {token.text!r}")
        return token.text.lower()

    # -- grammar -------------------------------------------------------- #

    def parse(self) -> Condition:
        expr = self._or()
        trailing = self._peek()
        if trailing is not None:
            raise RuleSyntaxError(
                f"trailing input {trailing.text!r} at column "
                f"{trailing.position} in {self.source!r}")
        return expr

    def _or(self) -> Condition:
        children = [self._and()]
        while self._at_keyword("or"):
            self._next()
            children.append(self._and())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def _and(self) -> Condition:
        children = [self._not()]
        while self._at_keyword("and"):
            self._next()
            children.append(self._not())
        return children[0] if len(children) == 1 else And(tuple(children))

    def _not(self) -> Condition:
        if self._at_keyword("not"):
            self._next()
            return Not(self._not())
        token = self._peek()
        if token is not None and token.kind == "lparen":
            self._next()
            expr = self._or()
            closing = self._next()
            if closing.kind != "rparen":
                raise RuleSyntaxError(
                    f"expected ')' at column {closing.position} in "
                    f"{self.source!r}, got {closing.text!r}")
            return expr
        return self._comparison()

    def _comparison(self) -> Comparison:
        token = self._next()
        if token.kind != "name" or token.text.lower() in _KEYWORDS:
            raise RuleSyntaxError(
                f"expected a metric name at column {token.position} in "
                f"{self.source!r}, got {token.text!r}")
        metric = token.text.lower()
        feature = self._feature_tag()
        return self._operator(metric, feature)

    def _feature_tag(self) -> Optional[str]:
        # `entropy(src)` — a parenthesized NAME directly after the metric.
        token = self._peek()
        if token is None or token.kind != "lparen":
            return None
        inner = self.tokens[self.index + 1] \
            if self.index + 1 < len(self.tokens) else None
        closing = self.tokens[self.index + 2] \
            if self.index + 2 < len(self.tokens) else None
        if (inner is None or closing is None or inner.kind != "name"
                or closing.kind != "rparen"):
            raise RuleSyntaxError(
                f"expected a feature tag like '(src)' at column "
                f"{token.position} in {self.source!r}")
        self.index += 3
        return inner.text.lower()

    def _number(self, what: str) -> float:
        token = self._next()
        if token.kind != "number":
            raise RuleSyntaxError(
                f"expected {what} at column {token.position} in "
                f"{self.source!r}, got {token.text!r}")
        return float(token.text)

    def _operator(self, metric: str, feature: Optional[str]) -> Comparison:
        token = self._next()
        if token.kind == "op":
            return Comparison(metric, token.text, self._number("a number"),
                              feature=feature)
        if token.kind != "name":
            raise RuleSyntaxError(
                f"expected an operator at column {token.position} in "
                f"{self.source!r}, got {token.text!r}")
        word = token.text.lower()
        if word == "spikes":
            if self._peek() is not None and self._peek().kind == "op":
                self._next()    # optional '>' sugar: "spikes > 4x"
            ratio = self._number("a ratio like '4x'")
            self._expect_keyword("x")
            if self._at_keyword("baseline"):
                self._next()
            return Comparison(metric, "spikes", ratio, feature=feature)
        if word in ("drops", "rises"):
            if self._peek() is not None and self._peek().kind == "op":
                self._next()    # optional '>' sugar: "drops > 30%"
            percent = self._number("a percentage like '30'")
            # '%' is not a token; accept an optional bare 'baseline' tail.
            if self._at_keyword("baseline"):
                self._next()
            return Comparison(metric, word, percent, feature=feature)
        raise RuleSyntaxError(
            f"unknown operator {token.text!r} at column {token.position} "
            f"in {self.source!r}")


def parse_condition(source: str) -> Condition:
    """Parse a ``when`` clause into an evaluable :class:`Condition`.

    The ``%`` sign after percentages is optional noise: the tokenizer
    strips it (``drops > 30%`` and ``drops > 30`` are the same tree).
    """
    cleaned = source.replace("%", " ")
    if not cleaned.strip():
        raise RuleSyntaxError("empty rule condition")
    return _Parser(cleaned).parse()


# --------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------- #

class Baseline:
    """Per-metric EWMA reference learned from non-triggering epochs."""

    __slots__ = ("alpha", "min_epochs", "value", "samples")

    def __init__(self, alpha: float = 0.3, min_epochs: int = 1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"baseline alpha must be in (0, 1], got {alpha}")
        if min_epochs < 1:
            raise ConfigurationError(
                f"min_baseline_epochs must be >= 1, got {min_epochs}")
        self.alpha = alpha
        self.min_epochs = min_epochs
        self.value: Optional[float] = None
        self.samples = 0

    @property
    def ready(self) -> bool:
        return self.samples >= self.min_epochs

    def current(self) -> Optional[float]:
        return self.value if self.ready else None

    def observe(self, value: float) -> None:
        if self.value is None:
            self.value = float(value)
        else:
            self.value += self.alpha * (float(value) - self.value)
        self.samples += 1


# --------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------- #

#: Actions a rule may request on CONFIRMED epochs.
KNOWN_ACTIONS = ("zoom", "recover")


@dataclass
class Rule:
    """One detection rule: a parsed condition plus its state-machine and
    baseline configuration.

    Parameters
    ----------
    name:
        Unique rule identifier (used in events, metrics labels, reports).
    when:
        The condition source text (kept for reports; parsed once).
    confirm_epochs:
        Consecutive triggering epochs before TRIGGERED becomes CONFIRMED
        (1 = confirm on the first hot epoch).
    cooldown_epochs:
        Consecutive quiet epochs in RECOVERING before returning to IDLE.
    min_baseline_epochs:
        Baseline-relative comparisons stay ``False`` until the baseline
        has absorbed this many clean epochs.
    baseline_alpha:
        EWMA weight of each new clean epoch.
    actions:
        Subset of :data:`KNOWN_ACTIONS` to run while CONFIRMED.
    """

    name: str
    when: str
    confirm_epochs: int = 2
    cooldown_epochs: int = 2
    min_baseline_epochs: int = 1
    baseline_alpha: float = 0.3
    actions: Tuple[str, ...] = KNOWN_ACTIONS
    condition: Condition = field(init=False, repr=False)
    _baselines: Dict[str, Baseline] = field(init=False, repr=False,
                                            default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("rule needs a non-empty name")
        if self.confirm_epochs < 1:
            raise ConfigurationError(
                f"confirm_epochs must be >= 1, got {self.confirm_epochs}")
        if self.cooldown_epochs < 1:
            raise ConfigurationError(
                f"cooldown_epochs must be >= 1, got {self.cooldown_epochs}")
        self.actions = tuple(self.actions)
        for action in self.actions:
            if action not in KNOWN_ACTIONS:
                raise ConfigurationError(
                    f"unknown action {action!r} for rule {self.name!r} "
                    f"(know: {', '.join(KNOWN_ACTIONS)})")
        self.condition = parse_condition(self.when)

    # -- metric plumbing ------------------------------------------------ #

    def metrics(self) -> FrozenSet[str]:
        return self.condition.metrics()

    def baselines(self) -> Dict[str, Optional[float]]:
        """Current per-metric baseline values (``None`` while warming)."""
        return {metric: baseline.current()
                for metric, baseline in self._baselines.items()}

    def evaluate(self, values: Mapping[str, Optional[float]]) -> bool:
        """Evaluate the condition and maintain baselines.

        Baselines absorb this epoch's values only when the condition did
        *not* trigger, so an attack cannot ratchet its own reference up.
        """
        for metric in self.metrics():
            if metric not in self._baselines:
                self._baselines[metric] = Baseline(
                    alpha=self.baseline_alpha,
                    min_epochs=self.min_baseline_epochs)
        triggering = self.condition.evaluate(values, self.baselines())
        if not triggering:
            for metric, baseline in self._baselines.items():
                value = values.get(metric)
                if value is not None:
                    baseline.observe(value)
        return triggering

    def reset(self) -> None:
        """Forget learned baselines (trace boundary)."""
        self._baselines.clear()


__all__ = [
    "Baseline",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Condition",
    "KNOWN_ACTIONS",
    "KNOWN_METRICS",
    "Rule",
    "RuleSyntaxError",
    "parse_condition",
]
