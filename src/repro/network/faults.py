"""Fault injection for the poll protocol: a seeded chaos TCP proxy.

:class:`FaultyProxy` listens on its own port and forwards byte streams
to an upstream :class:`~repro.controlplane.rpc.SwitchAgent`, injecting
failures drawn from a seeded RNG according to a :class:`FaultPlan`:

- **drop_accept** — close a brand-new client connection before any byte
  is forwarded (a SYN that got through but a peer that died; the agent
  never sees the request, so no epoch state is consumed),
- **drop_chunk** — close both directions mid-stream before forwarding a
  chunk (connection reset mid-exchange),
- **truncate_chunk** — forward only half a chunk and then close, which
  cuts a frame mid-payload (short read on the other side),
- **corrupt_chunk** — flip one byte of a chunk in flight (caught by the
  v2 frame CRC),
- **delay_seconds** — sleep before forwarding each chunk (latency).

The proxy is transport-level on purpose: it needs no knowledge of the
frame format, so it exercises exactly the failure surface a real
network presents.  The request/response discipline of the poll protocol
keeps chunk order — and therefore the injected fault sequence —
reproducible for a fixed seed in single-client use (the chaos suite).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TransportError
from repro.network.codec import DeltaEncoder


@dataclass(frozen=True)
class FaultPlan:
    """Per-event fault probabilities (all default to 'no fault')."""

    drop_accept: float = 0.0
    drop_chunk: float = 0.0
    truncate_chunk: float = 0.0
    corrupt_chunk: float = 0.0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_accept", "drop_chunk", "truncate_chunk",
                     "corrupt_chunk"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability, got {value}")
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")


class FaultyProxy:
    """A chaos TCP proxy between a client and one upstream server."""

    def __init__(self, upstream: Tuple[str, int],
                 plan: Optional[FaultPlan] = None, seed: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 chunk_bytes: int = 65536) -> None:
        self.upstream = upstream
        self.plan = plan if plan is not None else FaultPlan()
        self.counters: Dict[str, int] = {
            "connections": 0, "accepts_dropped": 0, "chunks": 0,
            "chunks_dropped": 0, "chunks_truncated": 0,
            "chunks_corrupted": 0,
        }
        self._chunk_bytes = chunk_bytes
        self._rng = random.Random(seed)
        self._lock = threading.Lock()  # guards rng + counters
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        # Poll rather than block in accept(): closing a socket another
        # thread is blocked on does not reliably wake it, and stop()
        # must not hang CI.
        self._listener.settimeout(0.1)
        self._running = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "FaultyProxy":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="faulty-proxy", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # proxying
    # ------------------------------------------------------------------ #

    def _roll(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < probability

    def _count(self, key: str) -> None:
        with self._lock:
            self.counters[key] += 1

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            self._count("connections")
            if self._roll(self.plan.drop_accept):
                self._count("accepts_dropped")
                _close(client)
                continue
            try:
                server = socket.create_connection(self.upstream, timeout=10)
                server.settimeout(None)  # connect timeout only; pumps block
            except OSError:
                _close(client)
                continue
            for src, dst in ((client, server), (server, client)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(self._chunk_bytes)
                if not data:
                    break
                self._count("chunks")
                if self._roll(self.plan.drop_chunk):
                    self._count("chunks_dropped")
                    break
                if self._roll(self.plan.truncate_chunk):
                    self._count("chunks_truncated")
                    dst.sendall(data[:max(1, len(data) // 2)])
                    break
                if self._roll(self.plan.corrupt_chunk):
                    self._count("chunks_corrupted")
                    with self._lock:
                        index = self._rng.randrange(len(data))
                    mutable = bytearray(data)
                    mutable[index] ^= 0xFF
                    data = bytes(mutable)
                if self.plan.delay_seconds:
                    time.sleep(self.plan.delay_seconds)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            # Dropping either direction kills the whole connection: the
            # poll protocol cannot survive a half-open stream anyway.
            _close(src)
            _close(dst)


def _close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


# --------------------------------------------------------------------- #
# in-process chaos simulation (hundreds of switches, no sockets)
# --------------------------------------------------------------------- #

class SimulatedSwitch:
    """One in-process switch agent for the scale chaos suite.

    The TCP chaos proxy above exercises the real transport, but at 200+
    switches a socket per agent is all overhead and no extra coverage.
    :class:`SimulatedSwitch` keeps the *semantics* that matter to the
    resilience story — seal-and-swap polling, a per-uplink
    :class:`~repro.network.codec.DeltaEncoder`, and exact packet
    accounting (``fed_total == polled + lost + pending`` at all times,
    which is what the conservation assertions check) — without the
    sockets.

    ``kill()`` loses whatever the current epoch sketch holds (a dead
    switch's un-polled counters are gone for good) and forgets the
    encoder base, exactly as a restarted process would.
    """

    def __init__(self, name: str, sketch_factory, delta: bool = True,
                 compress: bool = True) -> None:
        self.name = name
        self.sketch_factory = sketch_factory
        self._delta = delta
        self._compress = compress
        self.sketch = sketch_factory()
        self.encoder = DeltaEncoder(delta=delta, compress=compress)
        self.alive = True
        self.fed_total = 0    # packets ever offered while alive
        self.lost_total = 0   # packets destroyed by kills (pending at death)
        self.polled_total = 0  # packets shipped in sealed epochs

    def feed(self, keys) -> int:
        """Offer a packet batch; returns how many were ingested (0 if
        dead — a dead switch simply sees no traffic)."""
        if not self.alive:
            return 0
        self.sketch.update_array(keys)
        self.fed_total += len(keys)
        return len(keys)

    def kill(self) -> None:
        """Crash: pending epoch state and encoder lineage are lost."""
        if not self.alive:
            return
        self.alive = False
        self.lost_total += self.sketch.packets
        self.sketch = self.sketch_factory()
        self.encoder.reset()

    def restart(self) -> None:
        """Come back empty, starting a fresh encoder lineage."""
        if self.alive:
            return
        self.alive = True
        self.sketch = self.sketch_factory()
        self.encoder = DeltaEncoder(delta=self._delta,
                                    compress=self._compress)

    @property
    def pending(self) -> int:
        """Packets ingested but not yet sealed into a polled epoch."""
        return self.sketch.packets if self.alive else 0

    def poll(self, base_epoch: int) -> bytes:
        """Seal the current epoch and frame it for a receiver that
        claims to hold ``base_epoch``."""
        sealed = self.sketch
        self.sketch = self.sketch_factory()
        self.polled_total += sealed.packets
        return self.encoder.encode(sealed, base_epoch=base_epoch)


class SimLink:
    """A lossy request/response link to one :class:`SimulatedSwitch`.

    Faults are injected *request-side* — before the switch seals — so a
    failed poll leaves the epoch's data pending on the switch rather
    than destroying it in flight (that is also what the real protocol
    guarantees: the agent seals only after parsing a valid request).
    Each poll retries up to ``max_attempts`` times against the seeded
    drop probability, mirroring the RPC client's retry loop.
    """

    def __init__(self, switch: SimulatedSwitch, drop_rate: float = 0.0,
                 max_attempts: int = 3, seed: int = 0) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigurationError(
                f"drop_rate must be a probability, got {drop_rate}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.switch = switch
        self.name = switch.name
        self.drop_rate = drop_rate
        self.max_attempts = max_attempts
        self._rng = random.Random(seed)
        self.attempts = 0
        self.drops = 0

    def _attempt(self) -> None:
        self.attempts += 1
        if not self.switch.alive:
            raise TransportError(f"switch {self.name} is down")
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.drops += 1
            raise TransportError(f"connection to {self.name} dropped")

    def ping(self) -> bool:
        """One-shot liveness probe (no retries — probes are cheap and
        the health tracker owns the cadence)."""
        self._attempt()
        return True

    def poll(self, base_epoch: int) -> bytes:
        last: Exception = TransportError(f"poll of {self.name} failed")
        for _ in range(self.max_attempts):
            try:
                self._attempt()
            except TransportError as exc:
                last = exc
                if not self.switch.alive:
                    raise
                continue
            return self.switch.poll(base_epoch)
        raise last


def zipf_keys(rng, packets: int, flows: int = 1024, skew: float = 1.1,
              key_base: int = 0):
    """Draw ``packets`` flow keys from a Zipf(``skew``) popularity
    distribution over ``flows`` distinct flows — the steady-state
    traffic model of the scale benchmarks.

    ``rng`` is a :class:`numpy.random.Generator`; returns a ``uint64``
    key array ready for :meth:`UniversalSketch.update_array`.
    ``key_base`` offsets the flow-ID space so different racks can carry
    overlapping or disjoint flow populations.
    """
    if packets < 0 or flows < 1:
        raise ConfigurationError(
            f"need packets >= 0 and flows >= 1, got {packets}/{flows}")
    ranks = np.arange(1, flows + 1, dtype=np.float64)
    probs = ranks ** -skew
    probs /= probs.sum()
    draws = rng.choice(flows, size=packets, p=probs)
    return (draws.astype(np.uint64) + np.uint64(key_base))


def scenario_fleet_epochs(scenario, n_switches: int, seed: int = 0):
    """Shard a workload scenario's epochs across a simulated fleet.

    For each epoch of ``scenario`` (a
    :class:`~repro.dataplane.scenarios.Scenario`), the packet key stream
    is shuffled with a seeded RNG and split into ``n_switches``
    near-equal shards — the traffic one switch of the fleet would see
    that epoch.  Returns a list (per epoch) of lists (per switch) of
    ``uint64`` key arrays.  Packet conservation holds by construction:
    the shards of an epoch concatenate back to exactly that epoch's
    stream, so the chaos suite's accounting invariants apply unchanged.
    """
    if n_switches < 1:
        raise ConfigurationError(
            f"n_switches must be >= 1, got {n_switches}")
    rng = np.random.default_rng(seed)
    epochs = []
    for keys in scenario.epoch_keys():
        shuffled = keys[rng.permutation(len(keys))]
        epochs.append(np.array_split(shuffled, n_switches))
    return epochs
