"""Fault injection for the poll protocol: a seeded chaos TCP proxy.

:class:`FaultyProxy` listens on its own port and forwards byte streams
to an upstream :class:`~repro.controlplane.rpc.SwitchAgent`, injecting
failures drawn from a seeded RNG according to a :class:`FaultPlan`:

- **drop_accept** — close a brand-new client connection before any byte
  is forwarded (a SYN that got through but a peer that died; the agent
  never sees the request, so no epoch state is consumed),
- **drop_chunk** — close both directions mid-stream before forwarding a
  chunk (connection reset mid-exchange),
- **truncate_chunk** — forward only half a chunk and then close, which
  cuts a frame mid-payload (short read on the other side),
- **corrupt_chunk** — flip one byte of a chunk in flight (caught by the
  v2 frame CRC),
- **delay_seconds** — sleep before forwarding each chunk (latency).

The proxy is transport-level on purpose: it needs no knowledge of the
frame format, so it exercises exactly the failure surface a real
network presents.  The request/response discipline of the poll protocol
keeps chunk order — and therefore the injected fault sequence —
reproducible for a fixed seed in single-client use (the chaos suite).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultPlan:
    """Per-event fault probabilities (all default to 'no fault')."""

    drop_accept: float = 0.0
    drop_chunk: float = 0.0
    truncate_chunk: float = 0.0
    corrupt_chunk: float = 0.0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_accept", "drop_chunk", "truncate_chunk",
                     "corrupt_chunk"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability, got {value}")
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")


class FaultyProxy:
    """A chaos TCP proxy between a client and one upstream server."""

    def __init__(self, upstream: Tuple[str, int],
                 plan: Optional[FaultPlan] = None, seed: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 chunk_bytes: int = 65536) -> None:
        self.upstream = upstream
        self.plan = plan if plan is not None else FaultPlan()
        self.counters: Dict[str, int] = {
            "connections": 0, "accepts_dropped": 0, "chunks": 0,
            "chunks_dropped": 0, "chunks_truncated": 0,
            "chunks_corrupted": 0,
        }
        self._chunk_bytes = chunk_bytes
        self._rng = random.Random(seed)
        self._lock = threading.Lock()  # guards rng + counters
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        # Poll rather than block in accept(): closing a socket another
        # thread is blocked on does not reliably wake it, and stop()
        # must not hang CI.
        self._listener.settimeout(0.1)
        self._running = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "FaultyProxy":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="faulty-proxy", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # proxying
    # ------------------------------------------------------------------ #

    def _roll(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < probability

    def _count(self, key: str) -> None:
        with self._lock:
            self.counters[key] += 1

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            self._count("connections")
            if self._roll(self.plan.drop_accept):
                self._count("accepts_dropped")
                _close(client)
                continue
            try:
                server = socket.create_connection(self.upstream, timeout=10)
                server.settimeout(None)  # connect timeout only; pumps block
            except OSError:
                _close(client)
                continue
            for src, dst in ((client, server), (server, client)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(self._chunk_bytes)
                if not data:
                    break
                self._count("chunks")
                if self._roll(self.plan.drop_chunk):
                    self._count("chunks_dropped")
                    break
                if self._roll(self.plan.truncate_chunk):
                    self._count("chunks_truncated")
                    dst.sendall(data[:max(1, len(data) // 2)])
                    break
                if self._roll(self.plan.corrupt_chunk):
                    self._count("chunks_corrupted")
                    with self._lock:
                        index = self._rng.randrange(len(data))
                    mutable = bytearray(data)
                    mutable[index] ^= 0xFF
                    data = bytes(mutable)
                if self.plan.delay_seconds:
                    time.sleep(self.plan.delay_seconds)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            # Dropping either direction kills the whole connection: the
            # poll protocol cannot survive a half-open stream anyway.
            _close(src)
            _close(dst)


def _close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
