"""Delta-encoded, compressed sketch transfer for network-wide collection.

ROADMAP's scale-out item observes that "most level counters are sparse
between polls": each poll seals a fresh per-epoch sketch, and with a
5-second cadence the deep sampled levels of a universal sketch see only
a handful of keys, so successive epochs touch a small, similar set of
counters.  Shipping the full counter tables every epoch (as
:mod:`repro.core.serialization` does) wastes almost all of its bytes on
zeros and near-repeats.

This module defines a self-contained frame format on top of the v2 poll
protocol's integrity discipline (explicit length + CRC32 over the
payload, hard size ceilings before any allocation):

    frame: magic ``UMF1`` | u8 type | u8 flags | i64 epoch |
           i64 base_epoch | u32 payload_len | u32 crc32(payload) |
           payload

Two frame types:

- **FULL** — the :mod:`~repro.core.serialization` encoding of the whole
  sketch (zlib-compressed unless the encoder is configured raw).  Sent
  when the receiver holds no usable base, or when the delta would be
  larger than the full frame.
- **DELTA** — sparse ``(flat index, delta)`` pairs per level against the
  *last-acked* epoch, plus per-level packet/weight deltas and the (small)
  heaps shipped whole.  Appliable only when the receiver's base epoch
  matches ``base_epoch``; anything else raises
  :class:`~repro.errors.StaleBaseError` and the sender falls back to a
  full frame.

Ack discipline: the *receiver* states which epoch it holds in every
request (``DELTA <program> <base_epoch>`` on the wire, the
``base_epoch`` argument of :meth:`DeltaEncoder.encode` in-process).  The
encoder only emits a delta when that claim matches the epoch it last
sent — so a lost response, a restarted peer, or a re-parented collector
(whose decoder state starts empty) all degrade safely to a full frame
instead of a corrupt apply.

Hostile input is a first-class concern: a decoder must *reject, never
corrupt*.  Every index is bounds-checked, every delta overflow-checked,
every count ceiling-checked before a single counter of the (copied)
base state is touched; decompression is bounded so a zlib bomb cannot
balloon memory.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import Optional

import numpy as np

from repro.errors import CodecError, StaleBaseError
from repro.errors import TraceFormatError
from repro.obs.metrics import get_registry
from repro.core import serialization
from repro.core.universal import UniversalSketch
from repro.sketches.topk import TopK

__all__ = ["FRAME_FULL", "FRAME_DELTA", "NO_BASE", "FrameInfo",
           "frame_info", "DeltaEncoder", "DeltaDecoder"]

_MAGIC = b"UMF1"
_HEADER = struct.Struct("<4sBBqqII")

#: Frame types.
FRAME_FULL = 1
FRAME_DELTA = 2

#: Flag bits.
_FLAG_ZLIB = 1

#: The "I hold no base" epoch — what a fresh decoder reports, and what a
#: receiver sends to force a full frame.
NO_BASE = -1

#: Hard ceiling on a frame payload and on its decompressed body.  Kept
#: in line with the poll protocol's MAX_FRAME_BYTES; a corrupt length or
#: a zlib bomb must never translate into a runaway allocation.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


class FrameInfo:
    """Parsed header of one codec frame (no payload validation)."""

    __slots__ = ("kind", "epoch", "base_epoch", "compressed",
                 "payload_len", "nbytes")

    def __init__(self, kind: str, epoch: int, base_epoch: int,
                 compressed: bool, payload_len: int, nbytes: int) -> None:
        self.kind = kind
        self.epoch = epoch
        self.base_epoch = base_epoch
        self.compressed = compressed
        self.payload_len = payload_len
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FrameInfo(kind={self.kind!r}, epoch={self.epoch}, "
                f"base_epoch={self.base_epoch}, nbytes={self.nbytes})")


def _parse_header(frame: bytes) -> FrameInfo:
    if len(frame) < _HEADER.size:
        raise CodecError(
            f"codec frame truncated: {len(frame)} bytes < "
            f"{_HEADER.size}-byte header")
    magic, ftype, flags, epoch, base_epoch, length, crc = _HEADER.unpack(
        frame[:_HEADER.size])
    if magic != _MAGIC:
        raise CodecError(f"bad codec frame magic {magic!r}")
    if ftype not in (FRAME_FULL, FRAME_DELTA):
        raise CodecError(f"unknown codec frame type {ftype}")
    if flags & ~_FLAG_ZLIB:
        raise CodecError(f"unknown codec frame flags 0x{flags:02x}")
    if length > MAX_PAYLOAD_BYTES:
        raise CodecError(
            f"codec payload length {length} exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit")
    if len(frame) - _HEADER.size != length:
        raise CodecError(
            f"codec frame length mismatch: header says {length} payload "
            f"bytes, frame carries {len(frame) - _HEADER.size}")
    payload = frame[_HEADER.size:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CodecError("codec frame checksum mismatch (corrupt payload)")
    return FrameInfo(
        kind="full" if ftype == FRAME_FULL else "delta",
        epoch=epoch, base_epoch=base_epoch,
        compressed=bool(flags & _FLAG_ZLIB), payload_len=length,
        nbytes=len(frame))


def frame_info(frame: bytes) -> FrameInfo:
    """Validate framing/CRC and return the parsed header."""
    return _parse_header(frame)


def _read_exact(buf: io.BytesIO, n: int, what: str) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise CodecError(
            f"truncated codec body: wanted {n} bytes for {what}, "
            f"got {len(data)}")
    return data


# --------------------------------------------------------------------- #
# encoder
# --------------------------------------------------------------------- #

class DeltaEncoder:
    """Sender-side state of one sketch stream (one uplink).

    Remembers the last sketch it framed and that frame's epoch; when the
    receiver's acked base matches, the next sketch ships as a sparse
    delta, otherwise as a full frame.  Epoch numbers are local to the
    encoder (they only ever need to match the encoder's own history), so
    a restarted sender — whose encoder state is gone — naturally starts
    a fresh lineage of full frames.

    Parameters
    ----------
    delta:
        ``False`` disables delta encoding entirely (every frame is FULL)
        — the "raw transfer" baseline of the scale benchmarks.
    compress:
        zlib-compress frame payloads.  ``delta=False, compress=False``
        is byte-for-byte the old full-sketch transfer plus the frame
        header.
    level:
        zlib compression level.
    """

    def __init__(self, delta: bool = True, compress: bool = True,
                 level: int = 6) -> None:
        self.delta = delta
        self.compress = compress
        self.level = level
        self._base: Optional[UniversalSketch] = None
        self._base_epoch = NO_BASE
        self._next_epoch = 0

    @property
    def last_epoch(self) -> int:
        """Epoch of the last frame sent (``NO_BASE`` before the first)."""
        return self._base_epoch if self._base is not None else (
            self._next_epoch - 1 if self._next_epoch else NO_BASE)

    def reset(self) -> None:
        """Forget the stored base (a restarted sender)."""
        self._base = None
        self._base_epoch = NO_BASE

    def _frame(self, ftype: int, body: bytes, epoch: int,
               base_epoch: int) -> bytes:
        flags = 0
        payload = body
        if self.compress:
            compressed = zlib.compress(body, self.level)
            if len(compressed) < len(body):
                payload = compressed
                flags |= _FLAG_ZLIB
        header = _HEADER.pack(_MAGIC, ftype, flags, epoch, base_epoch,
                              len(payload),
                              zlib.crc32(payload) & 0xFFFFFFFF)
        return header + payload

    def _delta_body(self, sketch: UniversalSketch) -> bytes:
        base = self._base
        out = io.BytesIO()
        out.write(struct.pack(
            "<IIIIq", sketch.num_levels, sketch.rows, sketch.width,
            sketch.heap_size, int(sketch.seed)))
        out.write(struct.pack("<q", sketch.packets - base.packets))
        for lvl, base_lvl in zip(sketch.levels, base.levels):
            out.write(struct.pack(
                "<qq", lvl.packets - base_lvl.packets,
                lvl.weight - base_lvl.weight))
            diff = (lvl.sketch.table.ravel().astype(np.int64)
                    - base_lvl.sketch.table.ravel().astype(np.int64))
            changed = np.flatnonzero(diff)
            out.write(struct.pack("<I", len(changed)))
            out.write(changed.astype(np.uint32).tobytes())
            out.write(diff[changed].astype(np.int64).tobytes())
            items = lvl.topk.items()
            out.write(struct.pack("<I", len(items)))
            for key, estimate in items:
                out.write(struct.pack("<Qd", key, estimate))
        return out.getvalue()

    def encode(self, sketch: UniversalSketch,
               base_epoch: int = NO_BASE) -> bytes:
        """Frame ``sketch`` for a receiver that claims to hold
        ``base_epoch``; returns the wire bytes.

        The full serialization is always produced (it is the fallback
        and the raw-bytes accounting baseline); the delta is used only
        when the receiver's claim matches this encoder's last epoch
        *and* the delta actually saves bytes.
        """
        reg = get_registry()
        epoch = self._next_epoch
        self._next_epoch += 1
        # Only universal sketches have the level structure deltas diff
        # over; anything else ships as full frames.
        deltable = isinstance(sketch, UniversalSketch)
        full_body = serialization.dumps(sketch)
        reg.counter("univmon_codec_raw_bytes_total",
                    help="uncompressed full-sketch bytes (the raw-"
                         "transfer baseline)").inc(len(full_body))

        frame = None
        if self.delta and deltable and self._base is not None:
            if base_epoch == self._base_epoch:
                delta_frame = self._frame(
                    FRAME_DELTA, self._delta_body(sketch), epoch,
                    self._base_epoch)
                full_frame = self._frame(FRAME_FULL, full_body, epoch,
                                         NO_BASE)
                if len(delta_frame) <= len(full_frame):
                    frame = delta_frame
                else:
                    frame = full_frame
                    reg.counter(
                        "univmon_codec_fallbacks_total",
                        help="full frames sent where a delta was "
                             "possible but not worthwhile",
                        reason="delta_larger").inc()
            else:
                reg.counter("univmon_codec_fallbacks_total",
                            help="full frames sent where a delta was "
                                 "possible but not worthwhile",
                            reason="stale_ack").inc()
        if frame is None:
            frame = self._frame(FRAME_FULL, full_body, epoch, NO_BASE)
        if self.delta and deltable:
            self._base = sketch.copy()
            self._base_epoch = epoch
        kind = "delta" if frame[4] == FRAME_DELTA else "full"
        reg.counter("univmon_codec_frames_total",
                    help="codec frames emitted", kind=kind).inc()
        reg.counter("univmon_codec_wire_bytes_total",
                    help="framed (possibly compressed) bytes on the "
                         "wire").inc(len(frame))
        return frame


# --------------------------------------------------------------------- #
# decoder
# --------------------------------------------------------------------- #

class DeltaDecoder:
    """Receiver-side state of one sketch stream.

    Holds the last successfully decoded sketch as the delta base.  Every
    frame is fully validated *before* any state changes: a rejected
    frame leaves the decoder exactly as it was (the caller may re-poll
    with ``base_epoch=NO_BASE`` to force a full frame).
    """

    def __init__(self) -> None:
        self._base: Optional[UniversalSketch] = None
        self._base_epoch = NO_BASE

    @property
    def base_epoch(self) -> int:
        """The epoch this decoder can apply deltas against."""
        return self._base_epoch

    def reset(self) -> None:
        self._base = None
        self._base_epoch = NO_BASE

    # -- body decoding -------------------------------------------------- #

    @staticmethod
    def _decompress(info: FrameInfo, payload: bytes) -> bytes:
        if not info.compressed:
            return payload
        try:
            obj = zlib.decompressobj()
            body = obj.decompress(payload, MAX_PAYLOAD_BYTES)
            if obj.unconsumed_tail:
                raise CodecError(
                    f"decompressed codec body exceeds the "
                    f"{MAX_PAYLOAD_BYTES}-byte limit")
            return body
        except zlib.error as exc:
            raise CodecError(f"codec body decompression failed: {exc}") \
                from exc

    def _decode_full(self, info: FrameInfo, body: bytes) -> UniversalSketch:
        try:
            sketch = serialization.loads(body)
        except TraceFormatError as exc:
            raise CodecError(f"full frame body rejected: {exc}") from exc
        if not isinstance(sketch, UniversalSketch):
            raise CodecError(
                f"full frame carried a {type(sketch).__name__}, expected "
                f"a UniversalSketch")
        return sketch

    def _decode_delta(self, info: FrameInfo, body: bytes) -> UniversalSketch:
        base = self._base
        if base is None or info.base_epoch != self._base_epoch:
            raise StaleBaseError(
                f"delta frame against epoch {info.base_epoch}, but this "
                f"decoder holds "
                f"{'nothing' if base is None else self._base_epoch}")
        if info.epoch <= self._base_epoch:
            raise StaleBaseError(
                f"non-monotonic delta epoch {info.epoch} "
                f"(base is {self._base_epoch})")
        buf = io.BytesIO(body)
        levels, rows, width, heap_size, seed = struct.unpack(
            "<IIIIq", _read_exact(buf, 24, "geometry header"))
        serialization.check_geometry(levels, rows, width, heap_size)
        if (levels, rows, width, heap_size, seed) != (
                base.num_levels, base.rows, base.width, base.heap_size,
                base.seed):
            raise CodecError(
                "delta frame geometry does not match the held base "
                f"(frame {(levels, rows, width, heap_size, seed)}, base "
                f"{(base.num_levels, base.rows, base.width, base.heap_size, base.seed)})")
        (packets_delta,) = struct.unpack(
            "<q", _read_exact(buf, 8, "packet delta"))
        if base.packets + packets_delta < 0:
            raise CodecError(
                f"delta frame drives the packet count negative "
                f"({base.packets} + {packets_delta})")

        # Validate every level completely before touching any state.
        counters = rows * width
        parsed = []
        for j in range(levels + 1):
            lvl_packets_delta, lvl_weight_delta = struct.unpack(
                "<qq", _read_exact(buf, 16, f"level {j} header"))
            (nchanged,) = struct.unpack(
                "<I", _read_exact(buf, 4, f"level {j} change count"))
            if nchanged > counters:
                raise CodecError(
                    f"level {j} delta claims {nchanged} changed counters "
                    f"but the level only has {counters}")
            idx = np.frombuffer(
                _read_exact(buf, 4 * nchanged, f"level {j} indices"),
                dtype=np.uint32).astype(np.int64)
            deltas = np.frombuffer(
                _read_exact(buf, 8 * nchanged, f"level {j} deltas"),
                dtype=np.int64)
            if nchanged:
                if int(idx.max()) >= counters:
                    raise CodecError(
                        f"level {j} delta index {int(idx.max())} out of "
                        f"range (level has {counters} counters)")
                if len(np.unique(idx)) != nchanged:
                    raise CodecError(
                        f"level {j} delta carries duplicate indices")
                base_vals = base.levels[j].sketch.table.ravel()[idx] \
                    .astype(np.int64)
                overflow = ((deltas > 0)
                            & (base_vals > _INT64_MAX - deltas)) \
                    | ((deltas < 0) & (base_vals < _INT64_MIN - deltas))
                if bool(overflow.any()):
                    raise CodecError(
                        f"level {j} delta overflows an int64 counter")
            base_lvl = base.levels[j]
            if base_lvl.packets + lvl_packets_delta < 0:
                raise CodecError(
                    f"level {j} delta drives its packet count negative")
            if base_lvl.weight + lvl_weight_delta < 0:
                raise CodecError(
                    f"level {j} delta drives its weight negative "
                    f"(the codec ships ingest sketches, not differences)")
            (heap_count,) = struct.unpack(
                "<I", _read_exact(buf, 4, f"level {j} heap count"))
            if heap_count > heap_size:
                raise CodecError(
                    f"level {j} heap holds {heap_count} items but its "
                    f"capacity is {heap_size}")
            heap_items = []
            for _ in range(heap_count):
                key, estimate = struct.unpack(
                    "<Qd", _read_exact(buf, 16, f"level {j} heap item"))
                if not np.isfinite(estimate):
                    raise CodecError(
                        f"level {j} heap carries a non-finite estimate")
                heap_items.append((key, estimate))
            parsed.append((lvl_packets_delta, lvl_weight_delta, idx,
                           deltas, heap_items))
        if buf.read(1):
            raise CodecError("trailing bytes after delta body")

        # All validated: apply onto an independent copy of the base.
        out = base.copy()
        for j, (lvl_packets_delta, lvl_weight_delta, idx, deltas,
                heap_items) in enumerate(parsed):
            lvl = out.levels[j]
            if len(idx):
                flat = lvl.sketch.table.reshape(-1)
                flat[idx] += deltas
            lvl.packets += lvl_packets_delta
            lvl.weight += lvl_weight_delta
            heap = TopK(heap_size)
            for key, estimate in heap_items:
                heap.offer(key, estimate)
            lvl.topk = heap
        out.packets = base.packets + packets_delta
        out.invalidate_snapshot()
        return out

    # -- public API ------------------------------------------------------ #

    def decode(self, frame: bytes) -> UniversalSketch:
        """Decode one frame into a sketch, updating the held base.

        Raises :class:`~repro.errors.CodecError` (or its
        :class:`~repro.errors.StaleBaseError` subclass) on any invalid
        frame, leaving the decoder state untouched.
        """
        reg = get_registry()
        try:
            info = _parse_header(frame)
            body = self._decompress(info, frame[_HEADER.size:])
            if info.kind == "full":
                sketch = self._decode_full(info, body)
            else:
                sketch = self._decode_delta(info, body)
        except StaleBaseError:
            reg.counter("univmon_codec_rejects_total",
                        help="codec frames rejected by the decoder",
                        reason="stale_base").inc()
            raise
        except CodecError:
            reg.counter("univmon_codec_rejects_total",
                        help="codec frames rejected by the decoder",
                        reason="invalid").inc()
            raise
        self._base = sketch
        self._base_epoch = info.epoch
        reg.counter("univmon_codec_frames_decoded_total",
                    help="codec frames decoded", kind=info.kind).inc()
        return sketch.copy()
