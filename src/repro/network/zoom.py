"""Dynamic monitoring adjustment (§5): adaptively zoom into subspaces.

The first epoch monitors source /8 prefixes with a universal sketch.
After each epoch, prefixes contributing more than ``zoom_fraction`` of
the traffic are *refined*: the next epoch monitors them one step finer
(/8 -> /16 -> /24 -> /32) while cold regions stay coarse — and regions
that cool down automatically fall back to coarse.  The key function
changes per epoch but the data-plane primitive never does: this is the
paper's "adjust the granularity of the measurement dynamically" with the
same RISC sketch underneath.

Refined regions form a prefix tree, stored as a set of
``(prefix_value, prefix_len)`` pairs meaning "this region is split to the
next ladder step".  A packet's monitored key is its source address
truncated at the deepest refined ancestor's child granularity.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.dataplane.trace import Trace
from repro.core.universal import UniversalSketch

#: Granularity ladder: prefix lengths monitored keys are truncated to.
LADDER = (8, 16, 24, 32)


def _truncate(addresses: np.ndarray, prefix_len: int) -> np.ndarray:
    shift = np.uint64(32 - prefix_len)
    return (addresses.astype(np.uint64) >> shift) << shift


def _truncate_scalar(address: int, prefix_len: int) -> int:
    shift = 32 - prefix_len
    return (address >> shift) << shift


class ZoomMonitor:
    """Adaptive-granularity source-prefix monitoring."""

    def __init__(self,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 zoom_fraction: float = 0.05) -> None:
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=10, rows=5, width=1024, heap_size=64, seed=1)
        self._factory = sketch_factory
        self.zoom_fraction = zoom_fraction
        #: regions split to the next ladder step: {(prefix_value, prefix_len)}
        self.refined: Set[Tuple[int, int]] = set()
        self.sketch = self._factory()
        self.epoch = 0

    # ------------------------------------------------------------------ #
    # key assignment at the current granularity
    # ------------------------------------------------------------------ #

    def keys_for(self, trace: Trace) -> np.ndarray:
        """Monitored keys for a trace at the current granularity."""
        addresses = trace.src.astype(np.uint64)
        keys = _truncate(addresses, LADDER[0])
        lens = np.full(len(addresses), LADDER[0], dtype=np.int64)
        for i, plen in enumerate(LADDER[:-1]):
            values = {v for v, l in self.refined if l == plen}
            if not values:
                continue
            vals = np.fromiter(values, dtype=np.uint64, count=len(values))
            descend = np.isin(keys, vals) & (lens == plen)
            if not descend.any():
                continue
            finer = LADDER[i + 1]
            keys = np.where(descend, _truncate(addresses, finer), keys)
            lens = np.where(descend, finer, lens)
        return keys

    def granularity_of(self, address: int) -> int:
        """The prefix length ``address`` is currently monitored at."""
        plen = LADDER[0]
        for i, step in enumerate(LADDER[:-1]):
            if (_truncate_scalar(address, step), step) in self.refined:
                plen = LADDER[i + 1]
            else:
                break
        return plen

    # ------------------------------------------------------------------ #
    # epoch loop
    # ------------------------------------------------------------------ #

    def process_epoch(self, trace: Trace) -> UniversalSketch:
        """Sketch one epoch, adapt granularity, return the sealed sketch."""
        self.sketch.update_array(self.keys_for(trace))
        sealed = self.sketch
        self._adapt(sealed)
        self.sketch = self._factory()
        self.epoch += 1
        return sealed

    def _adapt(self, sealed: UniversalSketch) -> None:
        """Refine hot regions; let cold refinements expire."""
        if sealed.total_weight <= 0:
            return
        hot = sealed.heavy_hitters(self.zoom_fraction)
        refined: Set[Tuple[int, int]] = set()
        for key, _weight in hot:
            key = int(key)
            plen = self.granularity_of(key)
            # Keep the whole ancestor chain refined, then split the hot
            # region itself one step further (unless already at /32).
            for i, step in enumerate(LADDER[:-1]):
                if step < plen:
                    refined.add((_truncate_scalar(key, step), step))
            if plen < LADDER[-1]:
                refined.add((_truncate_scalar(key, plen), plen))
        self.refined = refined

    def monitored_regions(self) -> List[Tuple[int, int]]:
        """Currently refined (prefix_value, prefix_len) regions."""
        return sorted(self.refined)
