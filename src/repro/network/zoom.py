"""Dynamic monitoring adjustment (§5): adaptively zoom into subspaces.

The first epoch monitors source /8 prefixes with a universal sketch.
After each epoch, prefixes contributing more than ``zoom_fraction`` of
the traffic are *refined*: the next epoch monitors them one step finer
(/8 -> /16 -> /24 -> /32) while cold regions stay coarse — and regions
that cool down automatically fall back to coarse.  The key function
changes per epoch but the data-plane primitive never does: this is the
paper's "adjust the granularity of the measurement dynamically" with the
same RISC sketch underneath.

Refined regions form a prefix tree, stored as a set of
``(prefix_value, prefix_len)`` pairs meaning "this region is split to the
next ladder step".  A packet's monitored key is its source address
truncated at the deepest refined ancestor's child granularity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dataplane.trace import Trace
from repro.core.universal import UniversalSketch

#: Granularity ladder: prefix lengths monitored keys are truncated to.
LADDER = (8, 16, 24, 32)


def _truncate(addresses: np.ndarray, prefix_len: int) -> np.ndarray:
    shift = np.uint64(32 - prefix_len)
    return (addresses.astype(np.uint64) >> shift) << shift


def _truncate_scalar(address: int, prefix_len: int) -> int:
    shift = 32 - prefix_len
    return (address >> shift) << shift


class ZoomMonitor:
    """Adaptive-granularity source-prefix monitoring.

    Parameters
    ----------
    zoom_fraction:
        Traffic share above which a region is refined one ladder step.
    hold_down:
        Consecutive *cold* epochs a refined region must see before it is
        de-refined (and then only one ladder step at a time, leaf first).
        Without a hold-down, a region oscillating around
        ``zoom_fraction`` snaps between /8 and finer every epoch —
        refinement flapping; ``hold_down=1`` restores the old eager
        collapse, one step per epoch.
    """

    def __init__(self,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 zoom_fraction: float = 0.05,
                 hold_down: int = 2) -> None:
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=10, rows=5, width=1024, heap_size=64, seed=1)
        if hold_down < 1:
            raise ValueError(f"hold_down must be >= 1, got {hold_down}")
        self._factory = sketch_factory
        self.zoom_fraction = zoom_fraction
        self.hold_down = hold_down
        #: regions split to the next ladder step: {(prefix_value, prefix_len)}
        self.refined: Set[Tuple[int, int]] = set()
        #: consecutive cold epochs per refined region
        self._cold: Dict[Tuple[int, int], int] = {}
        self.sketch = self._factory()
        self.epoch = 0

    # ------------------------------------------------------------------ #
    # key assignment at the current granularity
    # ------------------------------------------------------------------ #

    def keys_for(self, trace: Trace) -> np.ndarray:
        """Monitored keys for a trace at the current granularity."""
        addresses = trace.src.astype(np.uint64)
        keys = _truncate(addresses, LADDER[0])
        lens = np.full(len(addresses), LADDER[0], dtype=np.int64)
        for i, plen in enumerate(LADDER[:-1]):
            values = {v for v, l in self.refined if l == plen}
            if not values:
                continue
            vals = np.fromiter(values, dtype=np.uint64, count=len(values))
            descend = np.isin(keys, vals) & (lens == plen)
            if not descend.any():
                continue
            finer = LADDER[i + 1]
            keys = np.where(descend, _truncate(addresses, finer), keys)
            lens = np.where(descend, finer, lens)
        return keys

    def granularity_of(self, address: int) -> int:
        """The prefix length ``address`` is currently monitored at."""
        plen = LADDER[0]
        for i, step in enumerate(LADDER[:-1]):
            if (_truncate_scalar(address, step), step) in self.refined:
                plen = LADDER[i + 1]
            else:
                break
        return plen

    # ------------------------------------------------------------------ #
    # epoch loop
    # ------------------------------------------------------------------ #

    def process_epoch(self, trace: Trace) -> UniversalSketch:
        """Sketch one epoch, adapt granularity, return the sealed sketch."""
        self.sketch.update_array(self.keys_for(trace))
        sealed = self.sketch
        self._adapt(sealed, trace)
        self.sketch = self._factory()
        self.epoch += 1
        return sealed

    def _adapt(self, sealed: UniversalSketch, trace: Trace) -> None:
        """Refine hot regions; de-refine cold ones gradually.

        Refinement is immediate (a hot region splits next epoch), but
        de-refinement is damped two ways so a region oscillating around
        ``zoom_fraction`` doesn't snap between /8 and finer every epoch:
        a region must be cold for ``hold_down`` consecutive epochs, and
        the tree only collapses one ladder step per epoch — leaves
        first, never a region that still has a refined descendant.

        A refined region's traffic is split across child keys in the
        sealed sketch, so ``heavy_hitters`` alone cannot tell whether
        the region *as a whole* is still hot — its warmth is judged by
        its aggregate share of the epoch trace instead.
        """
        if sealed.total_weight <= 0:
            return
        hot = sealed.heavy_hitters(self.zoom_fraction)
        wanted: Set[Tuple[int, int]] = set()
        for key, _weight in hot:
            key = int(key)
            plen = self.granularity_of(key)
            # Keep the whole ancestor chain refined, then split the hot
            # region itself one step further (unless already at /32).
            for step in LADDER[:-1]:
                if step < plen:
                    wanted.add((_truncate_scalar(key, step), step))
            if plen < LADDER[-1]:
                wanted.add((_truncate_scalar(key, plen), plen))
        self.refined |= wanted
        warm = wanted | self._warm_regions(trace)
        cold: Dict[Tuple[int, int], int] = {}
        expired: Set[Tuple[int, int]] = set()
        for region in self.refined:
            if region in warm:
                continue    # hot again: cold streak resets
            streak = self._cold.get(region, 0) + 1
            if streak >= self.hold_down and self._is_leaf(region):
                expired.add(region)     # one ladder step: leaves only
            else:
                cold[region] = streak
        self.refined -= expired
        self._cold = cold

    def _warm_regions(self, trace: Trace) -> Set[Tuple[int, int]]:
        """Refined regions whose aggregate trace share clears
        ``zoom_fraction`` this epoch."""
        total = len(trace)
        if not total or not self.refined:
            return set()
        addresses = trace.src.astype(np.uint64)
        by_len: Dict[int, List[int]] = {}
        for value, plen in self.refined:
            by_len.setdefault(plen, []).append(value)
        warm: Set[Tuple[int, int]] = set()
        for plen, values in by_len.items():
            truncated = _truncate(addresses, plen)
            uniq, counts = np.unique(truncated, return_counts=True)
            shares = dict(zip(uniq.tolist(), counts.tolist()))
            for value in values:
                if shares.get(value, 0) / total >= self.zoom_fraction:
                    warm.add((value, plen))
        return warm

    def _is_leaf(self, region: Tuple[int, int]) -> bool:
        """True if no finer refined region lies inside ``region``."""
        value, plen = region
        return not any(
            other_len > plen and _truncate_scalar(other_val, plen) == value
            for other_val, other_len in self.refined)

    def monitored_regions(self) -> List[Tuple[int, int]]:
        """Currently refined (prefix_value, prefix_len) regions."""
        return sorted(self.refined)
