"""Switch-level topology and routing.

A thin, purpose-built layer over :mod:`networkx`: switches are nodes,
links are weighted edges, and flows are routed on shortest paths.  Trace
packets are assigned an *ingress switch* by hashing their source prefix,
which is how a single backbone trace is spread over a simulated
multi-switch deployment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.dataplane.trace import Trace
from repro.hashing.tabulation import TabulationHash


class NetworkTopology:
    """A named-switch topology with shortest-path routing."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_switch(self, name: str) -> None:
        self.graph.add_node(name)

    def add_link(self, a: str, b: str, weight: float = 1.0) -> None:
        self.graph.add_edge(a, b, weight=weight)

    @classmethod
    def line(cls, n: int) -> "NetworkTopology":
        """s0 - s1 - ... - s(n-1)."""
        topo = cls()
        for i in range(n):
            topo.add_switch(f"s{i}")
        for i in range(n - 1):
            topo.add_link(f"s{i}", f"s{i + 1}")
        return topo

    @classmethod
    def star(cls, leaves: int) -> "NetworkTopology":
        """A core switch with ``leaves`` edge switches."""
        topo = cls()
        topo.add_switch("core")
        for i in range(leaves):
            topo.add_switch(f"edge{i}")
            topo.add_link("core", f"edge{i}")
        return topo

    @classmethod
    def fat_tree_pod(cls, edge: int = 4) -> "NetworkTopology":
        """One pod of a fat-tree: ``edge`` ToR switches dual-homed to two
        aggregation switches."""
        topo = cls()
        for agg in ("agg0", "agg1"):
            topo.add_switch(agg)
        for i in range(edge):
            tor = f"tor{i}"
            topo.add_switch(tor)
            topo.add_link(tor, "agg0")
            topo.add_link(tor, "agg1")
        topo.add_link("agg0", "agg1")
        return topo

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def switches(self) -> List[str]:
        return sorted(self.graph.nodes)

    def path(self, src: str, dst: str) -> List[str]:
        """Shortest path between two switches."""
        for node in (src, dst):
            if node not in self.graph:
                raise TopologyError(f"unknown switch {node!r}")
        try:
            return nx.shortest_path(self.graph, src, dst, weight="weight")
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no path between {src!r} and {dst!r}") from exc

    def ingress_assignment(self, trace: Trace,
                           seed: int = 0) -> Dict[str, Trace]:
        """Partition a trace across switches by hashing the source /16.

        Models each edge switch seeing the traffic entering through it:
        all packets from one source prefix enter at one switch.
        """
        switches = self.switches
        if not switches:
            raise TopologyError("topology has no switches")
        h = TabulationHash(seed=seed)
        prefixes = (trace.src.astype(np.uint64) >> np.uint64(16))
        hashed = h.hash_array(prefixes)
        assignment = (hashed % np.uint64(len(switches))).astype(np.int64)
        out: Dict[str, Trace] = {}
        for idx, name in enumerate(switches):
            mask = assignment == idx
            out[name] = trace._take(np.nonzero(mask)[0])
        return out
