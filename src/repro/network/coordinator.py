"""Network-wide epoch coordination: the controller for many switches.

Combines :class:`~repro.network.distributed.DistributedMonitor` with the
estimation apps of :mod:`repro.controlplane.apps`: each epoch, the
per-switch universal sketches are merged into one network-wide sketch
(exact, by linearity), every registered app runs on it, and a per-epoch
report is emitted — the multi-switch version of
:class:`~repro.controlplane.controller.Controller`.

Switch loss is tolerated: a switch marked failed is skipped at merge
time, degrading coverage to the traffic the surviving switches ingested
instead of failing the epoch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.controlplane.controller import EpochReport
from repro.dataplane.keys import KeyFunction, src_ip_key
from repro.dataplane.trace import Trace
from repro.network.distributed import DistributedMonitor
from repro.network.topology import NetworkTopology
from repro.core.universal import UniversalSketch


class NetworkCoordinator:
    """Epoch loop over a multi-switch deployment."""

    def __init__(self, topology: NetworkTopology,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 key_function: KeyFunction = src_ip_key,
                 epoch_seconds: float = 5.0) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError(
                f"epoch_seconds must be > 0, got {epoch_seconds}")
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=10, rows=5, width=2048, heap_size=64, seed=1)
        self.topology = topology
        self.epoch_seconds = epoch_seconds
        self._factory = sketch_factory
        self._key_function = key_function
        self._apps: List[MonitoringApp] = []
        self._failed: Set[str] = set()
        self._monitor = self._fresh_monitor()

    def _fresh_monitor(self) -> DistributedMonitor:
        return DistributedMonitor(self.topology,
                                  sketch_factory=self._factory,
                                  key_function=self._key_function)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def register(self, app: MonitoringApp) -> "NetworkCoordinator":
        if any(existing.name == app.name for existing in self._apps):
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self._apps.append(app)
        return self

    def mark_failed(self, switch: str) -> None:
        """Exclude a switch from merges until :meth:`mark_recovered`."""
        if switch not in self._monitor.sketches:
            raise ConfigurationError(f"unknown switch {switch!r}")
        self._failed.add(switch)

    def mark_recovered(self, switch: str) -> None:
        self._failed.discard(switch)

    @property
    def failed_switches(self) -> Set[str]:
        return set(self._failed)

    # ------------------------------------------------------------------ #
    # epoch loop
    # ------------------------------------------------------------------ #

    def run_trace(self, trace: Trace) -> List[EpochReport]:
        return [self.run_epoch(epoch, index)
                for index, epoch in
                enumerate(trace.epochs(self.epoch_seconds))]

    def run_epoch(self, epoch_trace: Trace, epoch_index: int) -> EpochReport:
        self._monitor.process_trace(epoch_trace)
        merged = self._merge_surviving()
        t0 = float(epoch_trace.timestamps[0]) if len(epoch_trace) else 0.0
        t1 = float(epoch_trace.timestamps[-1]) if len(epoch_trace) else 0.0
        report = EpochReport(epoch_index=epoch_index, start_time=t0,
                             end_time=t1, packets=len(epoch_trace))
        report.results["coverage"] = {
            "switches": len(self._monitor.sketches) - len(self._failed),
            "failed": sorted(self._failed),
            "packets_covered": merged.total_weight if merged else 0,
        }
        if merged is not None:
            for app in self._apps:
                report.results[app.name] = app.on_sketch(merged, epoch_index)
        self._monitor = self._fresh_monitor()
        return report

    def _merge_surviving(self) -> Optional[UniversalSketch]:
        merged = None
        for name in self.topology.switches:
            if name in self._failed:
                continue
            sketch = self._monitor.sketches[name]
            # Seed the fold with a copy: with exactly one survivor the
            # fold result would otherwise *be* the live per-switch
            # sketch, and downstream mutation would corrupt data-plane
            # state.
            merged = sketch.copy() if merged is None else merged.merge(sketch)
        return merged
