"""Network-wide monitoring: topology, distributed sketching, adaptive zoom.

Implements the §5 research directions that have concrete constructions:

- :mod:`~repro.network.topology` — switches, links, shortest-path routing
  (networkx under the hood), and ingress assignment of trace packets.
- :mod:`~repro.network.distributed` — one universal sketch per switch,
  merged at the controller via linearity (network-wide view), plus
  hash-partitioned responsibility to spread data-plane load.
- :mod:`~repro.network.zoom` — dynamic granularity adjustment: monitor at
  prefix level and refine the heavy prefixes each epoch.
"""

from repro.network.topology import NetworkTopology
from repro.network.distributed import DistributedMonitor
from repro.network.coordinator import NetworkCoordinator
from repro.network.zoom import ZoomMonitor

__all__ = ["NetworkTopology", "DistributedMonitor", "NetworkCoordinator",
           "ZoomMonitor"]
