"""Network-wide monitoring: topology, distributed sketching, adaptive zoom.

Implements the §5 research directions that have concrete constructions:

- :mod:`~repro.network.topology` — switches, links, shortest-path routing
  (networkx under the hood), and ingress assignment of trace packets.
- :mod:`~repro.network.distributed` — one universal sketch per switch,
  merged at the controller via linearity (network-wide view), plus
  hash-partitioned responsibility to spread data-plane load.
- :mod:`~repro.network.zoom` — dynamic granularity adjustment: monitor at
  prefix level and refine the heavy prefixes each epoch.
- :mod:`~repro.network.health` — failure detection: consecutive-failure
  thresholds, FAILED-switch recovery probes, epoch-driven (deterministic).
- :mod:`~repro.network.remote` — the fault-tolerant controller: epoch
  loop over TCP switch agents with retries, auto-degradation, and
  per-epoch coverage reporting.
- :mod:`~repro.network.faults` — a seeded chaos TCP proxy for testing the
  poll protocol under drops, truncation, corruption, and delay, plus the
  in-process switch/link simulators the scale suites run on.
- :mod:`~repro.network.codec` — delta-encoded, compressed sketch frames
  with CRC-protected framing and reject-never-corrupt decoding.
- :mod:`~repro.network.hierarchy` — the resilient aggregation tree:
  rack/pod/root tiers, re-parenting around dead aggregators, coverage
  accounting, and resilience policies.
"""

from repro.network.topology import NetworkTopology
from repro.network.distributed import DistributedMonitor
from repro.network.coordinator import NetworkCoordinator
from repro.network.health import HealthState, HealthTracker
from repro.network.remote import RemoteCoordinator
from repro.network.faults import FaultPlan, FaultyProxy, SimLink, \
    SimulatedSwitch, zipf_keys
from repro.network.codec import DeltaDecoder, DeltaEncoder
from repro.network.hierarchy import AgentLink, HierarchicalCoordinator, \
    ResiliencePolicy, TreePlan
from repro.network.zoom import ZoomMonitor

__all__ = ["NetworkTopology", "DistributedMonitor", "NetworkCoordinator",
           "HealthState", "HealthTracker", "RemoteCoordinator",
           "FaultPlan", "FaultyProxy", "SimLink", "SimulatedSwitch",
           "zipf_keys", "DeltaDecoder", "DeltaEncoder", "AgentLink",
           "HierarchicalCoordinator", "ResiliencePolicy", "TreePlan",
           "ZoomMonitor"]
