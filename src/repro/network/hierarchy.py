"""Resilient hierarchical collection: an aggregation tree over switches.

The paper's controller collects one universal sketch per switch and
composes them by linearity; a flat fan-in works for a handful of agents
but not for the "hundreds of switches" the RISC vision assumes — the
root would decode and merge every leaf itself, and one slow or dead
rack stalls the epoch.  :class:`HierarchicalCoordinator` arranges the
switches into configurable fan-in tiers (rack → pod → … → root), each
tier merging its children's sketches *before* shipping one combined
frame upward, so the root does ``fanout`` merges instead of ``n``.
Linearity (§5) is what makes this sound: merging per-rack then per-pod
is exactly the network-wide sum.

Resilience is the point, not an afterthought:

- **per-leaf health** — the same :class:`~repro.network.health`
  state machine the flat coordinator uses, with probe backoff;
- **re-parenting** — when an intermediate aggregator is down, its
  children are adopted by the first live sibling (or, with the whole
  tier down, escalate toward the root, which is the coordinator process
  itself and never "fails" separately);
- **explicit coverage accounting** — every epoch reports the fraction
  of switches its merge represents, which subtrees are missing, and
  whether data died *in flight* (collected by an aggregator that was
  then killed before shipping);
- **a resilience policy** — ``min_coverage`` / ``quorum`` /
  ``fail_open`` decide whether a degraded epoch is published,
  published-degraded, or withheld, instead of exact-or-nothing.

Transfers use :mod:`repro.network.codec` end to end: leaves frame their
sealed epoch sketches against the collector's acked base, and each
aggregator's uplink does the same one tier up.  Re-parenting composes
with the codec's ack discipline for free — a fresh collector claims
``NO_BASE`` and simply receives a full frame.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CodecError, ConfigurationError, TransportError
from repro.obs.metrics import get_registry
from repro.controlplane.apps.base import MonitoringApp
from repro.controlplane.controller import EpochReport
from repro.network.codec import NO_BASE, DeltaDecoder, DeltaEncoder, \
    frame_info
from repro.network.health import HealthTracker
from repro.core.query import QueryEngine
from repro.core.universal import UniversalSketch

#: The root aggregator: the coordinator process itself.  It has no
#: uplink and cannot be killed independently of the epoch loop.
ROOT = "root"

#: Tier naming, bottom-up; deeper trees fall back to ``t<k>``.
_TIER_NAMES = ("rack", "pod", "zone")


def _tier_prefix(index: int) -> str:
    if index < len(_TIER_NAMES):
        return _TIER_NAMES[index]
    return f"t{index}"


@dataclass(frozen=True)
class TreePlan:
    """The static shape of an aggregation tree (who reports to whom).

    Built bottom-up from the sorted leaf names: leaves are grouped
    ``fanout`` at a time under rack aggregators, racks under pods, and
    so on until one tier fits under the root.  The plan is geometry
    only — liveness and re-parenting are the coordinator's job.
    """

    leaves: Tuple[str, ...]
    fanout: int
    #: Bottom-up tiers; each entry is ``(aggregator, children)`` where
    #: tier 0's children are leaves and the last tier is ``[(ROOT, …)]``.
    tiers: Tuple[Tuple[Tuple[str, Tuple[str, ...]], ...], ...]
    parent: Mapping[str, str]
    children: Mapping[str, Tuple[str, ...]]
    leaves_under: Mapping[str, Tuple[str, ...]]

    @classmethod
    def build(cls, leaves: Sequence[str], fanout: int) -> "TreePlan":
        names = sorted(leaves)
        if not names:
            raise ConfigurationError("a tree needs at least one leaf")
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate leaf names")
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        if ROOT in names:
            raise ConfigurationError(f"{ROOT!r} is reserved")

        tiers: List[Tuple[Tuple[str, Tuple[str, ...]], ...]] = []
        current: List[str] = list(names)
        tier_index = 0
        while len(current) > fanout:
            prefix = _tier_prefix(tier_index)
            groups = tuple(
                (f"{prefix}{i:02d}",
                 tuple(current[i * fanout:(i + 1) * fanout]))
                for i in range((len(current) + fanout - 1) // fanout))
            tiers.append(groups)
            current = [name for name, _ in groups]
            tier_index += 1
        tiers.append(((ROOT, tuple(current)),))

        parent: Dict[str, str] = {}
        children: Dict[str, Tuple[str, ...]] = {}
        for tier in tiers:
            for agg, kids in tier:
                children[agg] = kids
                for kid in kids:
                    parent[kid] = agg

        leaves_under: Dict[str, Tuple[str, ...]] = {}

        def _collect(node: str) -> Tuple[str, ...]:
            if node not in children:
                return (node,)
            found: List[str] = []
            for kid in children[node]:
                found.extend(_collect(kid))
            leaves_under[node] = tuple(found)
            return leaves_under[node]

        _collect(ROOT)
        return cls(leaves=tuple(names), fanout=fanout, tiers=tuple(tiers),
                   parent=parent, children=children,
                   leaves_under=leaves_under)

    @property
    def depth(self) -> int:
        """Number of aggregation tiers, root included."""
        return len(self.tiers)

    def aggregators(self) -> List[str]:
        """Every aggregator name, bottom-up, root last."""
        return [agg for tier in self.tiers for agg, _ in tier]

    def describe(self) -> str:
        sizes = " -> ".join(str(len(tier)) for tier in self.tiers)
        return (f"{len(self.leaves)} leaves, fanout {self.fanout}, "
                f"tiers {sizes}")


@dataclass(frozen=True)
class ResiliencePolicy:
    """When is a degraded epoch still worth publishing?

    ``min_coverage`` is the fraction of switches that must be
    represented; ``quorum`` is the fraction of the root's direct child
    subtrees that must contribute at least one switch (a whole missing
    pod is worse than the same switches missing uniformly — locality of
    loss biases network-wide views).  An epoch below either threshold is
    *policy-violating*: with ``fail_open`` it is still published (marked
    degraded), with ``fail_closed`` it is withheld — apps see no data
    rather than silently biased data.
    """

    min_coverage: float = 0.0
    quorum: float = 0.0
    fail_open: bool = True

    def __post_init__(self) -> None:
        for name in ("min_coverage", "quorum"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}")

    def decide(self, coverage: float,
               subtree_quorum: float) -> Tuple[str, bool]:
        """Return ``(status, policy_violated)`` for one epoch."""
        if coverage >= 1.0:
            return "published", False
        if coverage >= self.min_coverage and subtree_quorum >= self.quorum:
            return "published_degraded", False
        if self.fail_open:
            return "published_degraded", True
        return "withheld", True


@dataclass
class _AggregatorState:
    """Mutable per-aggregator runtime state (liveness + codec peers)."""

    name: str
    alive: bool = True
    #: Receive-side codec state, one decoder per child this node has
    #: ever collected from (adopted children included).
    decoders: Dict[str, DeltaDecoder] = field(default_factory=dict)
    #: Send-side codec state for this node's uplink.
    encoder: DeltaEncoder = field(default_factory=DeltaEncoder)

    def crash(self) -> None:
        """Process death: every codec lineage this node held is gone."""
        self.alive = False
        self.decoders.clear()
        self.encoder.reset()


class HierarchicalCoordinator:
    """Epoch loop over an aggregation tree of switch links.

    Parameters
    ----------
    links:
        ``{leaf_name: link}`` where a link has ``poll(base_epoch) ->
        frame bytes`` and ``ping()``, both raising
        :class:`~repro.errors.TransportError` on failure —
        :class:`~repro.network.faults.SimLink` in the chaos suites,
        :class:`AgentLink` over real TCP agents.
    sketch_factory:
        Produces the empty sketch each merge fold starts from; must
        match the leaves' geometry/seed.
    fanout:
        Fan-in per aggregator; a fanout >= the leaf count degenerates to
        the flat topology (one root, no intermediate tiers).
    plan:
        Explicit :class:`TreePlan` overriding ``fanout``.
    policy:
        :class:`ResiliencePolicy`; default publishes everything.
    health:
        Leaf failure detection; defaults to ``suspect_after=1,
        fail_after=2`` like the flat coordinator.
    transfer:
        ``"delta"`` (default) keeps per-link decoder state so leaves and
        uplinks can ship sparse deltas; ``"raw"`` forces every frame to
        claim ``NO_BASE`` — the uncompressed-baseline mode of the
        benchmarks is the links' own business (their encoders).
    """

    def __init__(self, links: Mapping[str, object],
                 sketch_factory: Callable[[], UniversalSketch],
                 fanout: int = 8,
                 plan: Optional[TreePlan] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 health: Optional[HealthTracker] = None,
                 transfer: str = "delta") -> None:
        if not links:
            raise ConfigurationError("no links to coordinate")
        if transfer not in ("delta", "raw"):
            raise ConfigurationError(
                f"transfer must be 'delta' or 'raw', got {transfer!r}")
        if sketch_factory().seed is None:
            raise ConfigurationError(
                "hierarchical coordination needs a seeded sketch factory "
                "(polled sketches must be mergeable)")
        self.links = dict(links)
        self._factory = sketch_factory
        if plan is None:
            plan = TreePlan.build(sorted(self.links),
                                  min(fanout, max(2, len(self.links))))
        missing = set(plan.leaves) - set(self.links)
        if missing or set(self.links) - set(plan.leaves):
            raise ConfigurationError(
                "plan leaves and links disagree "
                f"(missing links: {sorted(missing)})")
        self.plan = plan
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.health = health if health is not None else HealthTracker(
            plan.leaves, suspect_after=1, fail_after=2)
        self.transfer = transfer
        self._apps: List[MonitoringApp] = []
        self._epoch = 0
        self.aggregators: Dict[str, _AggregatorState] = {
            name: _AggregatorState(name, encoder=self._uplink_encoder())
            for name in plan.aggregators()}

    def _uplink_encoder(self) -> DeltaEncoder:
        """Send-side codec for an aggregator's uplink, honouring the
        coordinator's transfer mode (raw = uncompressed full frames)."""
        on = self.transfer == "delta"
        return DeltaEncoder(delta=on, compress=on)

    # ------------------------------------------------------------------ #
    # configuration / fault injection
    # ------------------------------------------------------------------ #

    def register(self, app: MonitoringApp) -> "HierarchicalCoordinator":
        if any(existing.name == app.name for existing in self._apps):
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self._apps.append(app)
        return self

    def kill_aggregator(self, name: str) -> None:
        """Crash an intermediate aggregator (mid-epoch capable: any
        sketch it has collected but not shipped this epoch is lost)."""
        if name == ROOT:
            raise ConfigurationError(
                "the root is the coordinator process itself; stop the "
                "epoch loop instead of killing it")
        state = self._aggregator(name)
        if not state.alive:
            return
        state.crash()
        acc = getattr(self, "_acc", None)
        if acc is not None and name in acc:
            sketch, leaves = acc.pop(name)
            self._lost_in_flight += sketch.packets
            self._lost_leaves.update(leaves)

    def restart_aggregator(self, name: str) -> None:
        """Bring an aggregator back empty (fresh codec lineages)."""
        state = self._aggregator(name)
        if state.alive:
            return
        state.alive = True
        state.decoders = {}
        state.encoder = self._uplink_encoder()

    def _aggregator(self, name: str) -> _AggregatorState:
        try:
            return self.aggregators[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown aggregator {name!r}") from None

    # ------------------------------------------------------------------ #
    # re-parenting
    # ------------------------------------------------------------------ #

    def collector_for(self, node: str) -> str:
        """The live aggregator that collects ``node`` this epoch.

        The primary is ``parent(node)``; when it is down the first live
        sibling (sorted order) adopts the orphans; with the whole tier
        down the search escalates toward the root, which is always
        alive.
        """
        primary = self.plan.parent[node]
        return self._resolve(primary)

    def _resolve(self, agg: str) -> str:
        if self.aggregators[agg].alive:
            return agg
        if agg == ROOT:  # pragma: no cover - kill_aggregator forbids this
            return ROOT
        parent = self.plan.parent[agg]
        for sibling in self.plan.children[parent]:
            if sibling != agg and self.aggregators[sibling].alive:
                return sibling
        return self._resolve(parent)

    def _decoder(self, collector: str, child: str) -> DeltaDecoder:
        return self.aggregators[collector].decoders.setdefault(
            child, DeltaDecoder())

    # ------------------------------------------------------------------ #
    # epoch loop
    # ------------------------------------------------------------------ #

    def run_epochs(self, count: int,
                   on_tier: Optional[Callable[[int,
                                               "HierarchicalCoordinator"],
                                              None]] = None) \
            -> List[EpochReport]:
        return [self.run_epoch(on_tier=on_tier) for _ in range(count)]

    def _poll_leaf(self, name: str, collector: str) -> \
            Optional[UniversalSketch]:
        """One leaf poll with codec recovery: a rejected frame resets
        the decoder and forces exactly one full-frame re-poll."""
        link = self.links[name]
        decoder = self._decoder(collector, name)
        base = decoder.base_epoch if self.transfer == "delta" else NO_BASE
        for attempt in range(2):
            frame = link.poll(base)
            self._count_frame(frame, "leaf")
            try:
                return decoder.decode(frame)
            except CodecError:
                decoder.reset()
                base = NO_BASE
                if attempt:
                    raise
        return None  # pragma: no cover - loop always returns or raises

    def _count_frame(self, frame: bytes, hop: str) -> None:
        info = frame_info(frame)
        self._bytes_wire += len(frame)
        if info.kind == "delta":
            self._frames_delta += 1
        else:
            self._frames_full += 1
        get_registry().counter(
            "univmon_tree_bytes_total",
            help="framed sketch bytes shipped through the tree",
            hop=hop).inc(len(frame))

    def run_epoch(self, on_tier: Optional[
            Callable[[int, "HierarchicalCoordinator"], None]] = None) \
            -> EpochReport:
        """Collect the tree bottom-up once.

        ``on_tier(tier_index, self)`` is the chaos hook: it fires after
        leaf collection (``tier_index=0``) and after each aggregator
        tier ships (``1..depth-1``), which is exactly the window where a
        killed aggregator takes collected-but-unshipped data with it.
        """
        epoch_index = self._epoch
        self._epoch += 1
        reg = get_registry()

        # Per-epoch accounting, visible to kill_aggregator mid-epoch.
        self._bytes_wire = 0
        self._frames_full = 0
        self._frames_delta = 0
        self._lost_in_flight = 0
        self._lost_leaves: set = set()
        self._root_merge_s = 0.0
        #: collector -> (accumulated sketch, leaves it represents)
        self._acc: Dict[str, Tuple[UniversalSketch, set]] = {}

        lost: List[str] = []
        recovered: List[str] = []
        reparented: Dict[str, str] = {}

        # ---- tier 0: poll the leaves into their collectors ---------- #
        for name in self.plan.leaves:
            was_failed = not self.health.is_live(name)
            if was_failed:
                if not self.health.should_probe(name):
                    continue
                try:
                    self.links[name].ping()
                except TransportError:
                    self.health.record_failure(name)
                    continue
            collector = self.collector_for(name)
            if collector != self.plan.parent[name]:
                reparented[name] = collector
            try:
                sketch = self._poll_leaf(name, collector)
            except (TransportError, CodecError):
                self.health.record_failure(name)
                if not was_failed and not self.health.is_live(name):
                    lost.append(name)
                continue
            self.health.record_success(name)
            if was_failed:
                recovered.append(name)
            self._merge_into(collector, sketch, {name})
        if on_tier is not None:
            on_tier(0, self)

        # ---- aggregator tiers ship bottom-up ------------------------ #
        for tier_index, tier in enumerate(self.plan.tiers[:-1], start=1):
            for agg, _ in tier:
                state = self.aggregators[agg]
                if not state.alive or agg not in self._acc:
                    continue
                sketch, leaves = self._acc.pop(agg)
                target = self._resolve(self.plan.parent[agg])
                if target == agg:  # pragma: no cover - cannot self-ship
                    continue
                if target != self.plan.parent[agg]:
                    reparented[agg] = target
                decoder = self._decoder(target, agg)
                base = decoder.base_epoch if self.transfer == "delta" \
                    else NO_BASE
                frame = state.encoder.encode(sketch, base_epoch=base)
                self._count_frame(frame, "uplink")
                try:
                    shipped = decoder.decode(frame)
                except CodecError:  # pragma: no cover - same-process pair
                    decoder.reset()
                    frame = state.encoder.encode(sketch,
                                                 base_epoch=NO_BASE)
                    self._count_frame(frame, "uplink")
                    shipped = decoder.decode(frame)
                self._merge_into(target, shipped, leaves)
            if on_tier is not None:
                on_tier(tier_index, self)

        # ---- root merge + policy ------------------------------------ #
        if ROOT in self._acc:
            merged, covered_leaves = self._acc.pop(ROOT)
        else:
            merged, covered_leaves = self._factory(), set()
        # The root's share of this epoch's folding work (accumulated in
        # _merge_into: every merge whose collector is the root).
        reg.histogram(
            "univmon_tree_merge_seconds",
            help="root-of-tree epoch merge latency").observe(
                self._root_merge_s)
        covered_packets = merged.packets

        total = len(self.plan.leaves)
        coverage = len(covered_leaves) / total
        root_children = self.plan.children[ROOT]
        represented = sum(
            1 for child in root_children
            if any(leaf in covered_leaves
                   for leaf in self.plan.leaves_under.get(child, (child,))))
        subtree_quorum = represented / len(root_children)
        status, violated = self.policy.decide(coverage, subtree_quorum)

        missing = sorted(set(self.plan.leaves) - covered_leaves)
        missing_subtrees = [
            agg for tier in self.plan.tiers[:-1] for agg, _ in tier
            if not any(leaf in covered_leaves
                       for leaf in self.plan.leaves_under[agg])]

        reg.counter("univmon_tree_epochs_total",
                    help="tree epochs by publication status",
                    status=status).inc()
        reg.gauge("univmon_tree_coverage",
                  help="fraction of switches the last epoch represents"
                  ).set(coverage)
        reg.gauge("univmon_tree_packets_covered",
                  help="packets the last epoch's merge covers").set(
                      covered_packets)
        reg.counter("univmon_tree_reparented_total",
                    help="children collected by a stand-in aggregator"
                    ).inc(len(reparented))
        reg.counter("univmon_tree_lost_in_flight_total",
                    help="packets lost with a mid-epoch aggregator kill"
                    ).inc(self._lost_in_flight)

        report = EpochReport(epoch_index=epoch_index, start_time=0.0,
                             end_time=0.0, packets=covered_packets)
        report.results["coverage"] = {
            "topology": self.plan.describe(),
            "switches_total": total,
            "switches_covered": len(covered_leaves),
            "coverage": coverage,
            "subtree_quorum": subtree_quorum,
            "status": status,
            "policy_violated": violated,
            "degraded": status != "published",
            "missing_switches": missing,
            "missing_subtrees": missing_subtrees,
            "reparented": dict(sorted(reparented.items())),
            "lost_in_flight_packets": self._lost_in_flight,
            "lost_in_flight_switches": sorted(self._lost_leaves),
            "bytes_wire": self._bytes_wire,
            "frames_full": self._frames_full,
            "frames_delta": self._frames_delta,
            "packets_covered": covered_packets,
            "failed": self.health.failed(),
            "lost": sorted(lost),
            "recovered": sorted(recovered),
            "dead_aggregators": sorted(
                name for name, state in self.aggregators.items()
                if not state.alive),
            "health": self.health.snapshot(),
        }
        if status != "withheld" and covered_leaves and self._apps:
            QueryEngine(merged).warm()
            for app in self._apps:
                report.results[app.name] = app.on_sketch(merged,
                                                         epoch_index)
        self.health.tick()
        self._acc = None
        return report

    def _merge_into(self, collector: str, sketch: UniversalSketch,
                    leaves: set) -> None:
        t0 = time.perf_counter()
        if collector in self._acc:
            acc, acc_leaves = self._acc[collector]
            self._acc[collector] = (acc.merge(sketch),
                                    acc_leaves | set(leaves))
        else:
            self._acc[collector] = (self._factory().merge(sketch),
                                    set(leaves))
        if collector == ROOT:
            self._root_merge_s += time.perf_counter() - t0


class AgentLink:
    """Adapt a :class:`~repro.controlplane.rpc.RemoteSwitchClient` to
    the link surface :class:`HierarchicalCoordinator` expects."""

    def __init__(self, client, program: str = "univmon") -> None:
        self.client = client
        self.program = program

    def ping(self) -> bool:
        return self.client.ping(retry=self.client.retry.fail_fast())

    def poll(self, base_epoch: int) -> bytes:
        return self.client.poll_frame(self.program, base_epoch)
