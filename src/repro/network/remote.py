"""Fault-tolerant epoch coordination over *remote* switch agents.

:class:`~repro.network.coordinator.NetworkCoordinator` runs the epoch
loop over in-process sketches; this module runs it over the wire — the
deployment Figure 2 actually draws.  A :class:`RemoteCoordinator` owns
one resilient :class:`~repro.controlplane.rpc.RemoteSwitchClient` per
:class:`~repro.controlplane.rpc.SwitchAgent` and, each epoch:

1. polls every *live* switch (retry + reconnect under the configured
   :class:`~repro.controlplane.rpc.RetryPolicy`),
2. records each outcome in a :class:`~repro.network.health.HealthTracker`
   — repeated transport failures mark a switch FAILED automatically, and
   FAILED switches get periodic ``PING`` recovery probes instead of full
   retry storms,
3. merges only the sketches that arrived into a **fresh** sketch seeded
   from the factory (never aliasing a polled sketch), and
4. emits an :class:`~repro.controlplane.controller.EpochReport` whose
   ``coverage`` entry says exactly what the epoch is built on: which
   switches were lost or recovered, how many packets the surviving
   sketches cover, and how many retries/failures the transport burned.

§5's merge-by-linearity is what makes the degraded epoch still *exact*
for the traffic the surviving switches ingested: dropping a switch
narrows coverage, it does not bias the estimates.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import CodecError, ConfigurationError, TransportError
from repro.obs.metrics import get_registry
from repro.controlplane.apps.base import MonitoringApp
from repro.controlplane.controller import EpochReport
from repro.controlplane.rpc import RemoteSwitchClient, RetryPolicy
from repro.network.health import HealthTracker
from repro.core.query import QueryEngine
from repro.core.universal import UniversalSketch


class RemoteCoordinator:
    """Epoch loop over TCP switch agents that survives agent loss.

    Parameters
    ----------
    agents:
        ``{switch_name: (host, port)}`` of running switch agents.
    sketch_factory:
        Produces the empty sketch every epoch's merge fold starts from;
        must match the geometry/seed of the sketches the agents serve.
    program:
        The per-switch program name to ``POLL``.
    retry:
        Transport retry policy; each client gets a distinct jitter seed
        derived from it so retries stay deterministic *and* unsynchronised.
    health:
        Failure-detection thresholds; defaults to
        ``HealthTracker(agents, suspect_after=1, fail_after=2)``.
    sleep:
        Injected into every client — pass a no-op for simulated time.
    transfer:
        ``"raw"`` (default) polls full serialized sketches; ``"delta"``
        uses the codec's ``DELTA`` exchange, shipping sparse frames when
        the agent's encoder and this side's decoder agree on a base
        epoch.
    """

    #: Metric families labelled per switch name.  A coordinator clears
    #: them on construction so a renamed or removed agent from a
    #: previous run does not linger as a stale series (same bug PR 6
    #: fixed for shard series).
    _PER_AGENT_FAMILIES = ("univmon_remote_poll_seconds",)

    def __init__(self, agents: Mapping[str, Tuple[str, int]],
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 program: str = "univmon",
                 retry: Optional[RetryPolicy] = None,
                 health: Optional[HealthTracker] = None,
                 timeout: float = 5.0,
                 sleep: Callable[[float], None] = time.sleep,
                 transfer: str = "raw") -> None:
        if not agents:
            raise ConfigurationError("no agents to coordinate")
        if transfer not in ("raw", "delta"):
            raise ConfigurationError(
                f"transfer must be 'raw' or 'delta', got {transfer!r}")
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=10, rows=5, width=2048, heap_size=64, seed=1)
        if sketch_factory().seed is None:
            raise ConfigurationError(
                "remote coordination needs a seeded sketch factory "
                "(polled sketches must be mergeable)")
        self.program = program
        self.transfer = transfer
        self._factory = sketch_factory
        self.retry = retry if retry is not None else RetryPolicy()
        registry = get_registry()
        for family in self._PER_AGENT_FAMILIES:
            registry.clear_family(family)
        self.health = health if health is not None else HealthTracker(
            agents, suspect_after=1, fail_after=2)
        self._apps: List[MonitoringApp] = []
        self._epoch = 0
        self.clients: Dict[str, RemoteSwitchClient] = {
            name: RemoteSwitchClient(
                host, port, timeout=timeout,
                retry=dataclasses.replace(self.retry,
                                          seed=self.retry.seed + index),
                sleep=sleep)
            for index, (name, (host, port)) in enumerate(agents.items())
        }

    # ------------------------------------------------------------------ #
    # configuration / lifecycle
    # ------------------------------------------------------------------ #

    def register(self, app: MonitoringApp) -> "RemoteCoordinator":
        if any(existing.name == app.name for existing in self._apps):
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self._apps.append(app)
        return self

    def close(self) -> None:
        for client in self.clients.values():
            client.close()

    def __enter__(self) -> "RemoteCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # epoch loop
    # ------------------------------------------------------------------ #

    def run_epochs(self, count: int) -> List[EpochReport]:
        return [self.run_epoch() for _ in range(count)]

    def run_epoch(self, epoch_index: Optional[int] = None) -> EpochReport:
        """Poll every reachable switch once and report on the merge."""
        if epoch_index is None:
            epoch_index = self._epoch
        self._epoch = epoch_index + 1

        reg = get_registry()
        retries_before = self._transport_counter("retries")
        failures_before = self._transport_counter("failures")

        polled: Dict[str, UniversalSketch] = {}
        lost: List[str] = []
        recovered: List[str] = []
        for name, client in self.clients.items():
            was_failed = not self.health.is_live(name)
            if was_failed:
                if not self.health.should_probe(name):
                    continue
                # Cheap single-shot probe before re-admitting the switch:
                # a dead host should cost one connect, not a retry storm.
                try:
                    client.ping(retry=self.retry.fail_fast())
                except TransportError:
                    self.health.record_failure(name)
                    continue
            try:
                with reg.span("univmon_remote_poll_seconds",
                              help="per-switch poll latency (incl. retries)",
                              switch=name):
                    if self.transfer == "delta":
                        sketch = client.poll_delta(self.program)
                    else:
                        sketch = client.poll(self.program)
            except (TransportError, CodecError):
                self.health.record_failure(name)
                if not was_failed and not self.health.is_live(name):
                    lost.append(name)
                continue
            self.health.record_success(name)
            if was_failed:
                recovered.append(name)
            polled[name] = sketch

        with reg.span("univmon_remote_merge_seconds",
                      help="epoch merge-fold latency"):
            merged = self._factory()
            for name in sorted(polled):
                merged = merged.merge(polled[name])
        covered = merged.total_weight

        epoch_retries = self._transport_counter("retries") - retries_before
        epoch_failures = \
            self._transport_counter("failures") - failures_before
        reg.counter("univmon_remote_epochs_total",
                    help="remote epochs coordinated").inc()
        reg.counter("univmon_remote_retries_total",
                    help="transport retries burned across epochs").inc(
                        epoch_retries)
        reg.counter("univmon_remote_transport_failures_total",
                    help="transport failures across epochs").inc(
                        epoch_failures)
        reg.counter("univmon_remote_switches_lost_total",
                    help="switches newly marked FAILED").inc(len(lost))
        reg.counter("univmon_remote_switches_recovered_total",
                    help="switches recovered from FAILED").inc(
                        len(recovered))
        reg.gauge("univmon_remote_switches_total",
                  help="switches under coordination").set(len(self.clients))
        reg.gauge("univmon_remote_switches_polled",
                  help="switches merged into the last epoch").set(
                      len(polled))
        reg.gauge("univmon_remote_packets_covered",
                  help="packets the last epoch's merge covers").set(covered)

        report = EpochReport(epoch_index=epoch_index, start_time=0.0,
                             end_time=0.0, packets=covered)
        report.results["coverage"] = {
            "switches_total": len(self.clients),
            "switches_polled": len(polled),
            "polled": sorted(polled),
            "failed": self.health.failed(),
            "lost": sorted(lost),
            "recovered": sorted(recovered),
            "packets_covered": covered,
            "retries": epoch_retries,
            "transport_failures": epoch_failures,
            "health": self.health.snapshot(),
        }
        if polled and self._apps:
            # One snapshot build per merged epoch, shared by every app.
            QueryEngine(merged).warm()
        if polled:
            for app in self._apps:
                report.results[app.name] = app.on_sketch(merged, epoch_index)
        self.health.tick()
        return report

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def _transport_counter(self, key: str) -> int:
        return sum(client.counters[key] for client in self.clients.values())

    def transport_counters(self) -> Dict[str, int]:
        """Aggregate client counters (calls/connects/retries/failures)."""
        totals: Dict[str, int] = {}
        for client in self.clients.values():
            for key, value in client.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals
