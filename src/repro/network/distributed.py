"""Distributed universal sketching (§5 "Distributed monitoring").

Each switch runs the *same-seed* universal sketch over the traffic it
ingests; the controller merges the per-switch sketches — exact, thanks to
linearity — into one network-wide sketch and runs the usual estimation
apps on it.  Because every packet is sketched only at its ingress switch,
nothing is double counted.

Load balancing: with ``partition_responsibility=True`` the flow key
space is hash-partitioned so each switch only sketches its share even for
traffic it carries for others — the "some switches may get overloaded"
remedy the paper sketches (cf. cSamp).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.dataplane.keys import KeyFunction, src_ip_key
from repro.dataplane.trace import Trace
from repro.hashing.tabulation import TabulationHash
from repro.network.topology import NetworkTopology
from repro.core.universal import UniversalSketch


class DistributedMonitor:
    """Universal sketches on every switch + controller-side merging."""

    def __init__(self, topology: NetworkTopology,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 key_function: KeyFunction = src_ip_key,
                 partition_responsibility: bool = False,
                 seed: int = 7) -> None:
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=12, rows=5, width=2048, heap_size=64, seed=1)
        self.topology = topology
        self.key_function = key_function
        self.partition_responsibility = partition_responsibility
        self.seed = seed
        self.sketches: Dict[str, UniversalSketch] = {
            name: sketch_factory() for name in topology.switches
        }
        if not self.sketches:
            raise ConfigurationError("topology has no switches to monitor")
        self._partition_hash = TabulationHash(seed=seed)
        probe = sketch_factory()
        if probe.seed is None:
            raise ConfigurationError(
                "distributed monitoring needs a seeded sketch factory "
                "(per-switch sketches must be mergeable)")

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    def process_trace(self, trace: Trace) -> None:
        """Ingress-assign the trace and sketch each share at its switch."""
        shares = self.topology.ingress_assignment(trace, seed=self.seed)
        for switch, share in shares.items():
            self.process_at(switch, share)

    def process_at(self, switch: str, trace: Trace) -> None:
        """Sketch a trace slice at one switch."""
        if switch not in self.sketches:
            raise ConfigurationError(f"unknown switch {switch!r}")
        keys = trace.key_array(self.key_function)
        if self.partition_responsibility and len(keys):
            names = self.topology.switches
            owner = (self._partition_hash.hash_array(keys)
                     % np.uint64(len(names))).astype(np.int64)
            keys = keys[owner == names.index(switch)]
        if len(keys):
            self.sketches[switch].update_array(keys)

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #

    def network_sketch(self) -> UniversalSketch:
        """The merged, network-wide universal sketch.

        Always an independent snapshot: the fold is seeded with a copy
        so a one-switch topology does not hand callers an alias of the
        live per-switch sketch.
        """
        merged = None
        for name in self.topology.switches:
            sketch = self.sketches[name]
            merged = sketch.copy() if merged is None else merged.merge(sketch)
        return merged

    def heavy_hitters(self, fraction: float):
        return self.network_sketch().heavy_hitters(fraction)

    def cardinality(self) -> float:
        return self.network_sketch().cardinality()

    def entropy(self, base: float = 2.0) -> float:
        return self.network_sketch().entropy(base=base)

    def load_per_switch(self) -> Dict[str, int]:
        """Packets sketched at each switch (load-balance diagnostics)."""
        return {name: sketch.packets
                for name, sketch in self.sketches.items()}

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.sketches.values())
