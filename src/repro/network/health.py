"""Switch health tracking: failure detection and recovery probing.

The paper's controller "periodically retrieves the counters" from every
switch; a production controller must also decide *which* switches are
worth asking.  :class:`HealthTracker` runs a small per-switch state
machine driven entirely by observed poll outcomes and epoch ticks — no
wall clock — so the whole degradation/recovery story is deterministic
and testable:

    HEALTHY --failure x suspect_after--> SUSPECT
    SUSPECT --failure x fail_after----->  FAILED
    FAILED  --successful probe--------->  HEALTHY

A FAILED switch is excluded from the poll fan-out (its connection is
known-dead; hammering it slows the epoch), but every ``probe_every``
epochs it becomes *probe-due* and the coordinator sends a cheap ``PING``
to see whether it came back.  Any success — poll or probe — resets the
switch to HEALTHY.

With a ``probe_policy`` (a :class:`~repro.controlplane.rpc.RetryPolicy`
read in *epochs*: ``base_delay`` is the gap before the first probe,
doubling per failed probe up to ``max_delay``, with the policy's seeded
jitter), successive probes to a switch that stays dead back off instead
of firing every ``probe_every`` epochs — a rack that is down for an
hour costs a handful of probes, not one per switch per epoch.  The
schedule is still driven entirely by epoch ticks, so it stays
deterministic for a fixed seed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry


class HealthState(enum.Enum):
    """Where a switch sits in the failure-detection state machine."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass
class SwitchHealth:
    """Mutable per-switch record the tracker maintains."""

    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    recoveries: int = 0
    epochs_failed: int = 0  # epoch ticks spent FAILED since the transition
    probe_attempts: int = 0  # failed probes since the FAILED transition
    next_probe_tick: int = 0  # earliest tick the next probe is due

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "recoveries": self.recoveries,
            "probe_attempts": self.probe_attempts,
        }


class HealthTracker:
    """Consecutive-failure thresholds plus epoch-driven recovery probes.

    Parameters
    ----------
    switches:
        The names to track; unknown names raise
        :class:`~repro.errors.ConfigurationError` on every method.
    suspect_after:
        Consecutive failures before a HEALTHY switch turns SUSPECT.
    fail_after:
        Consecutive failures before a switch turns FAILED (must be
        >= ``suspect_after``; a poll is still attempted while SUSPECT).
    probe_every:
        A FAILED switch becomes probe-due every this-many epoch ticks
        (1 = probe every epoch).  Ignored when ``probe_policy`` is set.
    probe_policy:
        Optional backoff schedule for recovery probes — any object with
        the :class:`~repro.controlplane.rpc.RetryPolicy` surface
        (``backoff(attempt_index, rng)`` and ``seed``), interpreted in
        *epochs*: the gap before probe ``k+1`` of a still-dead switch is
        ``max(1, round(policy.backoff(k, rng)))`` ticks.  Without it,
        probes fire at the fixed ``probe_every`` cadence — a probe storm
        when hundreds of switches stay dead for hours.
    """

    def __init__(self, switches: Iterable[str], suspect_after: int = 1,
                 fail_after: int = 3, probe_every: int = 1,
                 probe_policy: Optional[object] = None) -> None:
        if suspect_after < 1:
            raise ConfigurationError(
                f"suspect_after must be >= 1, got {suspect_after}")
        if fail_after < suspect_after:
            raise ConfigurationError(
                f"fail_after ({fail_after}) must be >= suspect_after "
                f"({suspect_after})")
        if probe_every < 1:
            raise ConfigurationError(
                f"probe_every must be >= 1, got {probe_every}")
        self.suspect_after = suspect_after
        self.fail_after = fail_after
        self.probe_every = probe_every
        self.probe_policy = probe_policy
        self._probe_rng = random.Random(
            getattr(probe_policy, "seed", 0)) if probe_policy else None
        self._tick = 0
        self._records: Dict[str, SwitchHealth] = {
            name: SwitchHealth() for name in switches}
        if not self._records:
            raise ConfigurationError("no switches to track")

    # ------------------------------------------------------------------ #
    # outcome recording
    # ------------------------------------------------------------------ #

    def _record(self, name: str) -> SwitchHealth:
        try:
            return self._records[name]
        except KeyError:
            raise ConfigurationError(f"unknown switch {name!r}") from None

    @staticmethod
    def _transition(record: SwitchHealth, to: HealthState) -> None:
        """Move ``record`` to ``to``, exporting the edge as a counter."""
        get_registry().counter(
            "univmon_health_transitions_total",
            help="switch health state-machine transitions",
            from_state=record.state.value, to_state=to.value).inc()
        record.state = to

    def _schedule_probe(self, record: SwitchHealth) -> None:
        """Set the tick the next recovery probe becomes due."""
        gap = max(1, round(self.probe_policy.backoff(
            record.probe_attempts, self._probe_rng)))
        record.next_probe_tick = self._tick + gap

    def record_success(self, name: str) -> HealthState:
        record = self._record(name)
        record.successes += 1
        record.consecutive_failures = 0
        if record.state is not HealthState.HEALTHY:
            if record.state is HealthState.FAILED:
                record.recoveries += 1
            self._transition(record, HealthState.HEALTHY)
            record.epochs_failed = 0
            record.probe_attempts = 0
        return record.state

    def record_failure(self, name: str) -> HealthState:
        record = self._record(name)
        record.failures += 1
        record.consecutive_failures += 1
        if record.state is HealthState.FAILED:
            # A failed recovery probe: back the next one off.
            record.probe_attempts += 1
            if self.probe_policy is not None:
                self._schedule_probe(record)
            return record.state
        if record.consecutive_failures >= self.fail_after:
            self._transition(record, HealthState.FAILED)
            record.epochs_failed = 0
            record.probe_attempts = 0
            if self.probe_policy is not None:
                self._schedule_probe(record)
        elif record.consecutive_failures >= self.suspect_after:
            if record.state is HealthState.HEALTHY:
                self._transition(record, HealthState.SUSPECT)
        return record.state

    def tick(self) -> None:
        """Advance one epoch: FAILED switches age toward their next probe."""
        self._tick += 1
        for record in self._records.values():
            if record.state is HealthState.FAILED:
                record.epochs_failed += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def state(self, name: str) -> HealthState:
        return self._record(name).state

    def is_live(self, name: str) -> bool:
        """Live switches are polled every epoch (HEALTHY or SUSPECT)."""
        return self._record(name).state is not HealthState.FAILED

    def should_probe(self, name: str) -> bool:
        """True when a FAILED switch is due its periodic recovery probe."""
        record = self._record(name)
        if record.state is not HealthState.FAILED:
            return False
        if self.probe_policy is not None:
            return self._tick >= record.next_probe_tick
        return record.epochs_failed % self.probe_every == 0

    def live(self) -> List[str]:
        return sorted(n for n, r in self._records.items()
                      if r.state is not HealthState.FAILED)

    def failed(self) -> List[str]:
        return sorted(n for n, r in self._records.items()
                      if r.state is HealthState.FAILED)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-switch health for inclusion in an epoch report."""
        return {name: record.as_dict()
                for name, record in sorted(self._records.items())}
