"""CSV trace format: one packet per line, human-inspectable.

Columns: ``timestamp,src,dst,sport,dport,proto,size`` with dotted-quad
addresses.  Round-trips exactly with :class:`~repro.dataplane.trace.Trace`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.dataplane.packet import format_ipv4, parse_ipv4
from repro.dataplane.trace import Trace

_HEADER = ["timestamp", "src", "dst", "sport", "dport", "proto", "size"]


def save_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the CSV trace format."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for i in range(len(trace)):
            writer.writerow([
                f"{trace.timestamps[i]:.6f}",
                format_ipv4(int(trace.src[i])),
                format_ipv4(int(trace.dst[i])),
                int(trace.sport[i]),
                int(trace.dport[i]),
                int(trace.proto[i]),
                int(trace.size[i]),
            ])


def load_csv(path: Union[str, Path]) -> Trace:
    """Read a CSV trace written by :func:`save_csv`."""
    timestamps, src, dst, sport, dport, proto, size = \
        [], [], [], [], [], [], []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise TraceFormatError(
                f"{path}: expected header {_HEADER}, got {header}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_HEADER):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected {len(_HEADER)} fields, "
                    f"got {len(row)}")
            try:
                timestamps.append(float(row[0]))
                src.append(parse_ipv4(row[1]))
                dst.append(parse_ipv4(row[2]))
                sport.append(int(row[3]))
                dport.append(int(row[4]))
                proto.append(int(row[5]))
                size.append(int(row[6]))
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
    return Trace(
        np.array(timestamps, dtype=np.float64),
        np.array(src, dtype=np.uint32),
        np.array(dst, dtype=np.uint32),
        np.array(sport, dtype=np.uint16),
        np.array(dport, dtype=np.uint16),
        np.array(proto, dtype=np.uint8),
        np.array(size, dtype=np.uint16),
    )
