"""Flow-key extraction: the "feature" a metric is computed over.

The paper's evaluation computes every metric over the source IP; the
multidimensional extension (§5) wants other projections of the 5-tuple.
A :class:`KeyFunction` maps packets (scalar path) or trace columns
(vectorised path) to ``uint64`` keys the sketches hash.

Keys are built by *packing*, not hashing, wherever the fields fit in 64
bits (src, dst, src-dst pair) so they stay reversible for reporting; the
full 5-tuple (104 bits) is mixed down to 64 bits with a splitmix-style
finalizer, which keeps collisions at the 2**-64 scale of the key space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.dataplane.packet import FiveTuple, Packet

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer — a fast, well-mixed 64-bit permutation."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return x ^ (x >> np.uint64(31))


@dataclass(frozen=True)
class KeyFunction:
    """A named projection of packets to integer keys.

    Attributes
    ----------
    name:
        Identifier used in configs and reports (e.g. ``"src_ip"``).
    scalar:
        ``FiveTuple -> int`` for the per-packet path.
    vector:
        ``Trace -> np.ndarray[uint64]`` for the bulk path; receives the
        trace object and uses its columns directly.
    reversible:
        Whether keys can be decoded back to the original field(s).
    """

    name: str
    scalar: Callable[[FiveTuple], int]
    vector: Callable[["object"], np.ndarray]
    reversible: bool = True

    def __call__(self, packet_or_flow) -> int:
        flow = packet_or_flow.flow if isinstance(packet_or_flow, Packet) \
            else packet_or_flow
        return self.scalar(flow)

    def of_trace(self, trace) -> np.ndarray:
        return self.vector(trace)


# --------------------------------------------------------------------- #
# scalar projections
# --------------------------------------------------------------------- #

def _src_scalar(flow: FiveTuple) -> int:
    return flow.src_ip


def _dst_scalar(flow: FiveTuple) -> int:
    return flow.dst_ip


def _pair_scalar(flow: FiveTuple) -> int:
    return (flow.src_ip << 32) | flow.dst_ip


def _five_tuple_scalar(flow: FiveTuple) -> int:
    packed = ((flow.src_ip << 32) | flow.dst_ip)
    ports = (flow.src_port << 24) | (flow.dst_port << 8) | flow.protocol
    return _splitmix64(packed) ^ _splitmix64(ports)


# --------------------------------------------------------------------- #
# vectorised projections (operate on Trace columns)
# --------------------------------------------------------------------- #

def _src_vector(trace) -> np.ndarray:
    return trace.src.astype(np.uint64)


def _dst_vector(trace) -> np.ndarray:
    return trace.dst.astype(np.uint64)


def _pair_vector(trace) -> np.ndarray:
    return ((trace.src.astype(np.uint64) << np.uint64(32))
            | trace.dst.astype(np.uint64))


def _five_tuple_vector(trace) -> np.ndarray:
    packed = ((trace.src.astype(np.uint64) << np.uint64(32))
              | trace.dst.astype(np.uint64))
    ports = ((trace.sport.astype(np.uint64) << np.uint64(24))
             | (trace.dport.astype(np.uint64) << np.uint64(8))
             | trace.proto.astype(np.uint64))
    return _splitmix64_array(packed) ^ _splitmix64_array(ports)


#: Metric computed over source addresses — the paper's evaluation feature.
src_ip_key = KeyFunction("src_ip", _src_scalar, _src_vector)

#: Metric computed over destination addresses (HH "per destination").
dst_ip_key = KeyFunction("dst_ip", _dst_scalar, _dst_vector)

#: Source-destination pair (origin-destination flows).
src_dst_key = KeyFunction("src_dst", _pair_scalar, _pair_vector)

#: Full 5-tuple flows (mixed to 64 bits; not reversible).
five_tuple_key = KeyFunction("five_tuple", _five_tuple_scalar,
                             _five_tuple_vector, reversible=False)

def src_prefix_key(prefix_len: int) -> KeyFunction:
    """Source address truncated to ``prefix_len`` bits — the key family
    hierarchical heavy hitters aggregate over (§5 "Multidimensional
    data").  ``src_prefix_key(32)`` equals :data:`src_ip_key`."""
    if not 0 < prefix_len <= 32:
        raise ValueError(f"prefix_len must be in (0, 32], got {prefix_len}")
    shift = 32 - prefix_len
    np_shift = np.uint64(shift)

    def scalar(flow: FiveTuple) -> int:
        return (flow.src_ip >> shift) << shift

    def vector(trace) -> np.ndarray:
        src = trace.src.astype(np.uint64)
        return (src >> np_shift) << np_shift

    return KeyFunction(f"src_prefix_{prefix_len}", scalar, vector)


KEY_FUNCTIONS: Dict[str, KeyFunction] = {
    kf.name: kf
    for kf in (src_ip_key, dst_ip_key, src_dst_key, five_tuple_key)
}


def decode_src_dst(key: int) -> tuple:
    """Invert :data:`src_dst_key`: key -> (src_ip, dst_ip)."""
    return (key >> 32) & 0xFFFFFFFF, key & 0xFFFFFFFF
