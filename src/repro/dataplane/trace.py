"""Column-oriented packet traces and the synthetic workload generator.

The paper evaluates on a proprietary CAIDA 2015 backbone trace.  The
substitute here is a generator producing the statistical structure the
evaluated metrics actually depend on:

- **Zipf-distributed flow sizes** (heavy-tailed: a few elephants, many
  mice) — backbone traces fit Zipf with skew ~1.0-1.3;
- realistic random 5-tuples over configurable address pools;
- injectable **DDoS events** (a victim destination suddenly contacted by
  thousands of fresh sources) for Figure 5;
- injectable **change events** (a set of flows surging or vanishing at an
  epoch boundary) for Figure 6.

A :class:`Trace` stores packets as parallel numpy columns (timestamps,
src, dst, ports, protocol, size), which is what makes trace-scale
experiments tractable in Python: sketches consume the vectorised key
arrays, and epoch slicing is an O(1) view.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.dataplane.packet import FiveTuple, Packet, PROTO_TCP, PROTO_UDP


class Trace:
    """An ordered packet trace stored as parallel numpy columns."""

    __slots__ = ("timestamps", "src", "dst", "sport", "dport", "proto", "size")

    def __init__(self, timestamps: np.ndarray, src: np.ndarray,
                 dst: np.ndarray, sport: np.ndarray, dport: np.ndarray,
                 proto: np.ndarray, size: Optional[np.ndarray] = None) -> None:
        n = len(timestamps)
        if size is None:
            size = np.full(n, 64, dtype=np.uint16)
        columns = (timestamps, src, dst, sport, dport, proto, size)
        if any(len(c) != n for c in columns):
            raise TraceFormatError("trace columns have mismatched lengths")
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.src = np.asarray(src, dtype=np.uint32)
        self.dst = np.asarray(dst, dtype=np.uint32)
        self.sport = np.asarray(sport, dtype=np.uint16)
        self.dport = np.asarray(dport, dtype=np.uint16)
        self.proto = np.asarray(proto, dtype=np.uint8)
        self.size = np.asarray(size, dtype=np.uint16)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.timestamps)

    def packet(self, i: int) -> Packet:
        return Packet(
            flow=FiveTuple(int(self.src[i]), int(self.dst[i]),
                           int(self.sport[i]), int(self.dport[i]),
                           int(self.proto[i])),
            timestamp=float(self.timestamps[i]),
            size=int(self.size[i]),
        )

    def __iter__(self) -> Iterator[Packet]:
        for i in range(len(self)):
            yield self.packet(i)

    @property
    def duration(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def key_array(self, key_function) -> np.ndarray:
        """The uint64 key column for a given key function (bulk path)."""
        return key_function.of_trace(self)

    def distinct(self, key_function) -> int:
        """Exact number of distinct keys (ground-truth helper)."""
        return int(len(np.unique(self.key_array(key_function))))

    # ------------------------------------------------------------------ #
    # slicing / combination
    # ------------------------------------------------------------------ #

    def _take(self, index) -> "Trace":
        return Trace(self.timestamps[index], self.src[index],
                     self.dst[index], self.sport[index], self.dport[index],
                     self.proto[index], self.size[index])

    def slice_time(self, start: float, end: float) -> "Trace":
        """Packets with ``start <= t < end`` (assumes time-sorted trace)."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="left"))
        return self._take(slice(lo, hi))

    def epochs(self, epoch_seconds: float) -> List["Trace"]:
        """Split into consecutive fixed-length epochs (the controller's
        5-second polling intervals)."""
        if epoch_seconds <= 0:
            raise ConfigurationError(
                f"epoch_seconds must be > 0, got {epoch_seconds}")
        if len(self) == 0:
            return []
        t0 = float(self.timestamps[0])
        t_end = float(self.timestamps[-1])
        out = []
        t = t0
        while t <= t_end:
            out.append(self.slice_time(t, t + epoch_seconds))
            t += epoch_seconds
        return out

    def sorted_by_time(self) -> "Trace":
        order = np.argsort(self.timestamps, kind="stable")
        return self._take(order)

    @classmethod
    def concat(cls, traces: Sequence["Trace"]) -> "Trace":
        traces = [t for t in traces if len(t) > 0]
        if not traces:
            return cls.empty()
        return cls(
            np.concatenate([t.timestamps for t in traces]),
            np.concatenate([t.src for t in traces]),
            np.concatenate([t.dst for t in traces]),
            np.concatenate([t.sport for t in traces]),
            np.concatenate([t.dport for t in traces]),
            np.concatenate([t.proto for t in traces]),
            np.concatenate([t.size for t in traces]),
        ).sorted_by_time()

    @classmethod
    def empty(cls) -> "Trace":
        z = np.zeros(0)
        return cls(z, z, z, z, z, z, z)

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "Trace":
        n = len(packets)
        out = cls(
            np.fromiter((p.timestamp for p in packets), np.float64, n),
            np.fromiter((p.flow.src_ip for p in packets), np.uint32, n),
            np.fromiter((p.flow.dst_ip for p in packets), np.uint32, n),
            np.fromiter((p.flow.src_port for p in packets), np.uint16, n),
            np.fromiter((p.flow.dst_port for p in packets), np.uint16, n),
            np.fromiter((p.flow.protocol for p in packets), np.uint8, n),
            np.fromiter((p.size for p in packets), np.uint16, n),
        )
        return out


# --------------------------------------------------------------------- #
# synthetic workload generation
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class DDoSEvent:
    """A burst of fresh sources hitting one victim destination.

    During ``[start, end)`` seconds, ``num_sources`` previously unseen
    source addresses each send ``packets_per_source`` packets to the
    victim — the workload Figure 5's detector must flag.
    """

    start: float
    end: float
    num_sources: int
    packets_per_source: int = 2
    victim: Optional[int] = None  # dst IP; drawn randomly when None


@dataclass(frozen=True)
class ChangeEvent:
    """A volume shift at time ``time``: ``num_flows`` flows surge by
    ``factor`` (half of them) or go quiet (the other half) afterwards —
    the heavy-change keys Figure 6's detectors must find.

    ``rank_lo``/``rank_hi`` bound the Zipf ranks the changed flows are
    drawn from (default: mid-rank flows, ``[flows/100, flows/4)``), so
    experiments can control how large the injected changes are relative
    to the noise floor of multinomial re-sampling."""

    time: float
    num_flows: int
    factor: float = 8.0
    rank_lo: Optional[int] = None
    rank_hi: Optional[int] = None


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs of the CAIDA-substitute generator.

    Attributes
    ----------
    packets:
        Total baseline packets (events add more).
    flows:
        Number of distinct 5-tuple flows in the baseline traffic.
    zipf_skew:
        Zipf exponent of the flow-size distribution (backbone ~1.0-1.3).
    duration:
        Trace length in seconds.
    seed:
        Generator seed (each distinct seed is an independent trace).
    """

    packets: int = 100_000
    flows: int = 10_000
    zipf_skew: float = 1.1
    duration: float = 60.0
    seed: int = 0
    ddos_events: Tuple[DDoSEvent, ...] = ()
    change_events: Tuple[ChangeEvent, ...] = ()

    def with_seed(self, seed: int) -> "SyntheticTraceConfig":
        return replace(self, seed=seed)


def zipf_probabilities(flows: int, skew: float) -> np.ndarray:
    """Normalised Zipf(``skew``) rank probabilities for ``flows`` flows —
    the popularity model shared by the synthetic generator, the workload
    scenario library, and the fleet simulator."""
    if flows < 1:
        raise ConfigurationError(f"flows must be >= 1, got {flows}")
    ranks = np.arange(1, flows + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def _draw_flow_table(rng: np.random.Generator, flows: int):
    """Random distinct 5-tuples: sources/destinations from scattered /16s,
    ephemeral source ports, service-ish destination ports."""
    src = rng.integers(0x0A000000, 0xDF000000, size=flows, dtype=np.uint32)
    dst = rng.integers(0x0A000000, 0xDF000000, size=flows, dtype=np.uint32)
    sport = rng.integers(1024, 65535, size=flows, dtype=np.uint16)
    dport = rng.choice(
        np.array([80, 443, 53, 22, 25, 8080, 3306, 123], dtype=np.uint16),
        size=flows)
    proto = rng.choice(np.array([PROTO_TCP, PROTO_UDP], dtype=np.uint8),
                       size=flows, p=[0.8, 0.2])
    return src, dst, sport, dport, proto


def _segment(rng: np.random.Generator, flow_cols, probs: np.ndarray,
             packets: int, t0: float, t1: float) -> Trace:
    """One time segment: multinomial packet counts per flow, then shuffle."""
    src, dst, sport, dport, proto = flow_cols
    counts = rng.multinomial(packets, probs)
    flow_idx = np.repeat(np.arange(len(probs)), counts)
    rng.shuffle(flow_idx)
    ts = np.sort(rng.uniform(t0, t1, size=len(flow_idx)))
    sizes = rng.choice(np.array([64, 576, 1500], dtype=np.uint16),
                       size=len(flow_idx), p=[0.5, 0.25, 0.25])
    return Trace(ts, src[flow_idx], dst[flow_idx], sport[flow_idx],
                 dport[flow_idx], proto[flow_idx], sizes)


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a synthetic backbone-like trace per ``config``.

    Baseline traffic is piecewise stationary between change-event
    boundaries; DDoS bursts are appended and the result re-sorted by time.
    """
    if config.packets < 1 or config.flows < 1:
        raise ConfigurationError("packets and flows must be >= 1")
    rng = np.random.default_rng(config.seed)
    flow_cols = _draw_flow_table(rng, config.flows)
    probs = zipf_probabilities(config.flows, config.zipf_skew)

    boundaries = sorted({0.0, config.duration}
                        | {e.time for e in config.change_events
                           if 0.0 < e.time < config.duration})
    segments: List[Trace] = []
    seg_probs = probs.copy()
    # Pre-draw which flows each change event touches (mid-rank flows so
    # they are detectable but not already the top elephants).
    event_flows = {}
    for event in config.change_events:
        lo = event.rank_lo if event.rank_lo is not None else config.flows // 100
        hi = event.rank_hi if event.rank_hi is not None \
            else max(config.flows // 4, lo + 2)
        hi = min(hi, config.flows)
        lo = max(0, min(lo, hi - 1))
        chosen = rng.choice(np.arange(lo, hi), size=min(event.num_flows,
                                                        hi - lo),
                            replace=False)
        event_flows[event] = chosen

    for t0, t1 in zip(boundaries[:-1], boundaries[1:]):
        for event in config.change_events:
            if abs(event.time - t0) < 1e-12:
                chosen = event_flows[event]
                half = len(chosen) // 2
                seg_probs = seg_probs.copy()
                seg_probs[chosen[:half]] *= event.factor   # surge
                seg_probs[chosen[half:]] /= event.factor   # quiet
                seg_probs = seg_probs / seg_probs.sum()
        seg_packets = int(round(config.packets
                                * (t1 - t0) / config.duration))
        if seg_packets > 0:
            segments.append(_segment(rng, flow_cols, seg_probs,
                                     seg_packets, t0, t1))

    for event in config.ddos_events:
        segments.append(_ddos_burst(rng, event))

    return Trace.concat(segments)


def _ddos_burst(rng: np.random.Generator, event: DDoSEvent) -> Trace:
    if event.end <= event.start:
        raise ConfigurationError(
            f"DDoS event end {event.end} must be after start {event.start}")
    victim = event.victim if event.victim is not None else int(
        rng.integers(0x0A000000, 0xDF000000))
    n = event.num_sources * event.packets_per_source
    # Fresh sources from a high range the baseline generator never uses.
    sources = rng.integers(0xE0000000, 0xFFFFFFF0, size=event.num_sources,
                           dtype=np.uint32)
    src = np.repeat(sources, event.packets_per_source)
    rng.shuffle(src)
    ts = np.sort(rng.uniform(event.start, event.end, size=n))
    return Trace(
        ts, src,
        np.full(n, victim, dtype=np.uint32),
        rng.integers(1024, 65535, size=n, dtype=np.uint16),
        np.full(n, 80, dtype=np.uint16),
        np.full(n, PROTO_TCP, dtype=np.uint8),
        np.full(n, 64, dtype=np.uint16),
    )


def generate_epoch_pair(packets: int, flows: int, zipf_skew: float,
                        num_changes: int, change_factor: float,
                        seed: int,
                        rank_lo: Optional[int] = None,
                        rank_hi: Optional[int] = None) -> Tuple[Trace, Trace]:
    """Two adjacent 5-second epochs sharing a flow table, with
    ``num_changes`` flows shifting volume by ``change_factor`` between
    them — the Figure 6 workload in its minimal form."""
    config = SyntheticTraceConfig(
        packets=packets * 2, flows=flows, zipf_skew=zipf_skew,
        duration=10.0, seed=seed,
        change_events=(ChangeEvent(time=5.0, num_flows=num_changes,
                                   factor=change_factor,
                                   rank_lo=rank_lo, rank_hi=rank_hi),),
    )
    trace = generate_trace(config)
    return trace.slice_time(0.0, 5.0), trace.slice_time(5.0, 10.0)
