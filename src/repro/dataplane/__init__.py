"""The traffic substrate: packets, flow keys, traces, and switches.

This package is the stand-in for the paper's measurement environment —
the CAIDA backbone trace and the router the sketches run on:

- :mod:`~repro.dataplane.packet` — 5-tuples and packets.
- :mod:`~repro.dataplane.keys` — flow-key extraction (the "feature" a
  metric is computed over; the paper's evaluation uses source IP).
- :mod:`~repro.dataplane.trace` — column-oriented traces, epoch slicing,
  and the synthetic CAIDA-like workload generator (Zipf flow sizes,
  injectable DDoS and heavy-change events).
- :mod:`~repro.dataplane.csvtrace` / :mod:`~repro.dataplane.pcap` —
  on-disk formats (CSV and libpcap).
- :mod:`~repro.dataplane.switch` — the monitored switch: programs
  (sketch + key function) attached to a packet stream, with memory and
  op-cost accounting.
- :mod:`~repro.dataplane.parallel` — sharded multi-core ingest: split a
  key stream across worker processes over shared memory and merge the
  equal-seed shard sketches back into one (exact, by linearity).
- :mod:`~repro.dataplane.scenarios` — workload scenario library:
  empirical flow-size CDF mixes (websearch / data-mining) and seeded
  adversarial scenarios (DDoS ramp, flash crowd, port scan, heavy-key
  churn, key-space shift) with exact per-epoch ground truth.
"""

from repro.dataplane.keys import (
    KEY_FUNCTIONS,
    KeyFunction,
    dst_ip_key,
    five_tuple_key,
    src_dst_key,
    src_ip_key,
    src_prefix_key,
)
from repro.dataplane.netflow import SampledFlowTable
from repro.dataplane.parallel import (
    ShardedIngest,
    ShardedIngestReport,
    ShardWorkerPool,
    shard_of,
    shared_memory_available,
)
from repro.dataplane.packet import FiveTuple, Packet, format_ipv4, parse_ipv4
from repro.dataplane.scenarios import (
    DATAMINING_CDF,
    WEBSEARCH_CDF,
    EpochTruth,
    FlowSizeCDF,
    SCENARIOS,
    Scenario,
    make_scenario,
    scenario_names,
)
from repro.dataplane.replay import (
    BatchIngest,
    IngestReport,
    LoopingChunkSource,
    TraceReplayer,
)
from repro.dataplane.switch import MonitoredSwitch, SwitchProgram
from repro.dataplane.trace import (
    ChangeEvent,
    DDoSEvent,
    SyntheticTraceConfig,
    Trace,
    generate_trace,
)

__all__ = [
    "FiveTuple",
    "Packet",
    "parse_ipv4",
    "format_ipv4",
    "KeyFunction",
    "KEY_FUNCTIONS",
    "src_ip_key",
    "dst_ip_key",
    "src_dst_key",
    "five_tuple_key",
    "src_prefix_key",
    "SampledFlowTable",
    "TraceReplayer",
    "BatchIngest",
    "IngestReport",
    "LoopingChunkSource",
    "ShardedIngest",
    "ShardedIngestReport",
    "ShardWorkerPool",
    "shard_of",
    "shared_memory_available",
    "Trace",
    "SyntheticTraceConfig",
    "DDoSEvent",
    "ChangeEvent",
    "generate_trace",
    "FlowSizeCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "EpochTruth",
    "Scenario",
    "SCENARIOS",
    "make_scenario",
    "scenario_names",
    "MonitoredSwitch",
    "SwitchProgram",
]
