"""NetFlow-style sampled flow monitoring — the "generic" strawman.

Section 1 and 2.1 of the paper contrast sketching against classical
packet-sampled flow export (NetFlow/sFlow): good for coarse volume,
"poor accuracy for more fine-grained metrics" unless the sampling rate
is impractically high.  This module implements that baseline so the
claim is testable: sample packets with probability ``1/N``, keep a flow
table of sampled counts, and answer the same queries the sketches do by
inverse-probability scaling.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost


class SampledFlowTable(Sketch):
    """1-in-N packet-sampled flow table (NetFlow-style).

    Parameters
    ----------
    sampling_rate:
        Packet sampling probability ``p`` (NetFlow's ``1/N``).
    capacity:
        Flow-table slots; when full, new flows are dropped (counted in
        :attr:`evictions`), as real exporters under pressure do.
    """

    def __init__(self, sampling_rate: float, capacity: int = 1 << 20,
                 seed: Optional[int] = None) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ConfigurationError(
                f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.sampling_rate = sampling_rate
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed)
        self._flows: Dict[int, int] = {}
        self.sampled_packets = 0
        self.total_packets = 0
        self.evictions = 0

    def update(self, key: int, weight: int = 1) -> None:
        self.total_packets += weight
        if self._rng.random() >= self.sampling_rate:
            return
        self.sampled_packets += weight
        if key in self._flows:
            self._flows[key] += weight
        elif len(self._flows) < self.capacity:
            self._flows[key] = weight
        else:
            self.evictions += 1

    # ------------------------------------------------------------------ #
    # estimation by inverse-probability scaling
    # ------------------------------------------------------------------ #

    def estimate_frequency(self, key: int) -> float:
        """Estimated packets of ``key``: sampled count / p."""
        return self._flows.get(key, 0) / self.sampling_rate

    def heavy_hitters(self, fraction: float) -> List[Tuple[int, float]]:
        threshold = fraction * self.total_packets
        out = [(k, c / self.sampling_rate) for k, c in self._flows.items()
               if c / self.sampling_rate >= threshold]
        out.sort(key=lambda kv: -kv[1])
        return out

    def estimate_cardinality(self) -> float:
        """Distinct flows, corrected for flows that dodged every sample.

        A flow of size f is seen with probability ``1 - (1-p)**f``; with
        no size information the standard single-parameter correction
        assumes the observed mean sampled size, which keeps the estimator
        simple and demonstrably biased — the paper's point about generic
        monitoring and fine-grained metrics.
        """
        seen = len(self._flows)
        if seen == 0:
            return 0.0
        mean_sampled = self.sampled_packets / seen
        mean_true = max(mean_sampled / self.sampling_rate, 1.0)
        p_seen = 1.0 - (1.0 - self.sampling_rate) ** mean_true
        return seen / max(p_seen, 1e-12)

    def estimate_entropy(self, base: float = 2.0) -> float:
        """Plug-in entropy of the scaled sampled distribution."""
        if not self._flows:
            return 0.0
        total = sum(self._flows.values())
        log_base = math.log(base)
        return -sum((c / total) * (math.log(c / total) / log_base)
                    for c in self._flows.values())

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def flows_tracked(self) -> int:
        return len(self._flows)

    def memory_bytes(self) -> int:
        # Actual occupancy (flow tables are DRAM-resident and demand-
        # allocated, unlike SRAM sketches).
        return len(self._flows) * 16

    def update_cost(self) -> UpdateCost:
        # Amortised: every packet pays the sampling coin flip; sampled
        # packets (fraction p) pay a table touch.
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)
