"""Workload scenario library: empirical flow-size mixes and seeded
adversarial traffic scenarios with exact per-epoch ground truth.

The synthetic generator in :mod:`~repro.dataplane.trace` produces one
workload shape — stationary Zipf — which means every statistical
guarantee in the repo is only ever validated against the traffic it was
calibrated on.  This module widens the workload space along the two axes
the measurement literature cares about:

- **Empirical flow-size mixes** (:class:`FlowSizeCDF`): inverse-CDF
  sampling over the classic *websearch* (DCTCP) and *data-mining* (VL2)
  flow-size tables, vectorised with ``np.searchsorted`` like the rest of
  the ingest path.  These are the heavy-tailed-but-not-Zipf shapes real
  datacenter fabrics see.
- **Adversarial scenarios**: volumetric DDoS ramp, flash crowd, port
  scan (distinct-source explosion), heavy-key churn across epochs, and
  a key-space shift that stresses the sliding-window sketch.  Each is
  the canonical traffic of one attack/operations event class (StreaMon's
  event taxonomy) and each stresses a *different* statistic.

Every scenario is **seeded and epoch-segmented**, and reports **exact
ground truth** per epoch — per-key packet counts, F0, entropy, heavy
hitters, and heavy-change sets between adjacent epochs — computed from
the generator's own draws *before* packets are materialised.  The
property suite (``tests/dataplane/test_scenarios.py``) cross-checks this
reported truth against a ``collections.Counter`` over the emitted
packets, so the acceptance matrix can trust it.

Ground truth is reported over the **source-IP key** (the paper's
evaluation feature and what ``univmon run`` monitors by default).

Usage::

    scenario = make_scenario("ddos_ramp", seed=3)
    for epoch_index, (trace, truth) in enumerate(
            zip(scenario.epoch_traces(), scenario.truths)):
        sketch.update_array(trace.key_array(src_ip_key))
        ...  # compare estimates against truth.distinct / truth.entropy()
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dataplane.packet import PROTO_TCP, PROTO_UDP
from repro.dataplane.trace import Trace, zipf_probabilities

__all__ = [
    "FlowSizeCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "EpochTruth",
    "Scenario",
    "ScenarioSpec",
    "SCENARIOS",
    "scenario_names",
    "make_scenario",
]


# --------------------------------------------------------------------- #
# empirical flow-size CDFs
# --------------------------------------------------------------------- #

class FlowSizeCDF:
    """Inverse-CDF sampler over an empirical flow-size table.

    ``table`` is a sequence of ``(cdf_value, size_packets)`` pairs with
    strictly ascending CDF values ending at 1.0 — the usual published
    form of datacenter flow-size distributions.  Sampling treats the
    table as a step distribution: size ``s_i`` is drawn with probability
    ``cdf_i - cdf_{i-1}`` (the rotorsim/PrintQueue convention), via one
    vectorised ``searchsorted`` over uniform draws.
    """

    def __init__(self, name: str, table: Sequence[Tuple[float, int]]) -> None:
        if not table:
            raise ConfigurationError("flow-size CDF table is empty")
        cdf = np.asarray([c for c, _ in table], dtype=np.float64)
        sizes = np.asarray([s for _, s in table], dtype=np.int64)
        if np.any(np.diff(cdf) <= 0) or cdf[0] <= 0:
            raise ConfigurationError(
                f"CDF values of {name!r} must be strictly ascending "
                f"and positive")
        if abs(cdf[-1] - 1.0) > 1e-12:
            raise ConfigurationError(
                f"CDF of {name!r} must end at 1.0, got {cdf[-1]}")
        if np.any(sizes < 1):
            raise ConfigurationError(
                f"flow sizes of {name!r} must be >= 1 packet")
        self.name = name
        self.cdf = cdf
        self.sizes = sizes
        self.probs = np.diff(np.concatenate([[0.0], cdf]))

    def mean(self) -> float:
        """Analytic mean flow size in packets (``sum p_i * s_i``)."""
        return float(self.probs @ self.sizes)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` flow sizes (packets, ``int64``) drawn from the table."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        u = rng.random(n)
        return self.sizes[np.searchsorted(self.cdf, u, side="left")]

    def sample_total(self, rng: np.random.Generator,
                     target_packets: int) -> np.ndarray:
        """Flow sizes drawn until their sum reaches ``target_packets``.

        The last flow is clamped so the total lands exactly on target —
        scenarios size their epochs in packets, not flows, and the
        data-mining tail (single flows of ~400k packets) would otherwise
        blow any epoch budget.
        """
        if target_packets < 1:
            raise ConfigurationError(
                f"target_packets must be >= 1, got {target_packets}")
        out: List[np.ndarray] = []
        total = 0
        # Draw in batches sized by the analytic mean; the loop almost
        # always terminates in one round.
        while total < target_packets:
            need = target_packets - total
            batch = max(8, int(need / max(self.mean(), 1.0)) + 1)
            sizes = self.sample(rng, batch)
            out.append(sizes)
            total += int(sizes.sum())
        sizes = np.concatenate(out)
        cumulative = np.cumsum(sizes)
        last = int(np.searchsorted(cumulative, target_packets, side="left"))
        sizes = sizes[:last + 1].copy()
        sizes[last] -= int(cumulative[last]) - target_packets
        return sizes[sizes > 0]


#: DCTCP-style websearch flow mix (sizes in packets, ~1.5 KB MSS).
WEBSEARCH_CDF = FlowSizeCDF("websearch", [
    (0.15, 4), (0.20, 9), (0.30, 13), (0.40, 22), (0.53, 36),
    (0.60, 89), (0.70, 445), (0.80, 889), (0.90, 2222),
    (0.97, 4445), (1.00, 13334),
])

#: VL2-style data-mining flow mix: mostly single-packet mice with an
#: extreme elephant tail.
DATAMINING_CDF = FlowSizeCDF("datamining", [
    (0.50, 1), (0.60, 2), (0.70, 3), (0.80, 5), (0.90, 178),
    (0.95, 1405), (0.99, 44445), (1.00, 444445),
])


# --------------------------------------------------------------------- #
# exact ground truth
# --------------------------------------------------------------------- #

class EpochTruth:
    """Exact per-epoch ground truth over the source-IP key.

    Built from the generator's *drawn* per-flow counts, independently of
    packet materialisation — duplicate keys are aggregated, zero counts
    dropped.  All statistics below are exact (no estimation anywhere).
    """

    __slots__ = ("keys", "counts")

    def __init__(self, keys: np.ndarray, counts: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        counts = np.asarray(counts, dtype=np.int64)
        if len(keys) != len(counts):
            raise ConfigurationError(
                f"keys/counts length mismatch: {len(keys)}/{len(counts)}")
        if np.any(counts < 0):
            raise ConfigurationError("negative ground-truth counts")
        uniq, inverse = np.unique(keys, return_inverse=True)
        agg = np.bincount(inverse, weights=counts,
                          minlength=len(uniq)).astype(np.int64)
        keep = agg > 0
        self.keys = uniq[keep]
        self.counts = agg[keep]

    # -- scalar statistics --------------------------------------------- #

    @property
    def packets(self) -> int:
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Exact F0 (number of distinct source keys)."""
        return int(len(self.keys))

    def counter(self) -> Dict[int, int]:
        """Per-key packet counts as a plain dict (key -> count)."""
        return {int(k): int(c) for k, c in zip(self.keys, self.counts)}

    def entropy(self, base: float = 2.0) -> float:
        """Exact empirical Shannon entropy of the key distribution."""
        m = self.packets
        if m == 0:
            return 0.0
        p = self.counts / m
        return float(-(p * (np.log(p) / math.log(base))).sum())

    def heavy_hitter_keys(self, alpha: float) -> Set[int]:
        """Keys with at least ``alpha`` of the epoch's packets
        (``>=`` threshold, matching :class:`ExactCounter`)."""
        threshold = alpha * self.packets
        return {int(k) for k in self.keys[self.counts >= threshold]}

    # -- two-epoch statistics ------------------------------------------ #

    def _deltas(self, prev: "EpochTruth") -> Tuple[np.ndarray, np.ndarray]:
        union = np.union1d(self.keys, prev.keys)
        delta = np.zeros(len(union), dtype=np.int64)
        delta[np.searchsorted(union, self.keys)] += self.counts
        delta[np.searchsorted(union, prev.keys)] -= prev.counts
        return union, delta

    def total_change(self, prev: "EpochTruth") -> int:
        """Exact L1 change ``D = sum_x |f_now(x) - f_prev(x)|``."""
        _, delta = self._deltas(prev)
        return int(np.abs(delta).sum())

    def heavy_change_keys(self, prev: "EpochTruth", phi: float) -> Set[int]:
        """Keys with ``|delta| >= phi * D`` versus ``prev`` (matching
        :meth:`ExactCounter.heavy_changes`)."""
        union, delta = self._deltas(prev)
        magnitude = np.abs(delta)
        total = magnitude.sum()
        if total == 0:
            return set()
        return {int(k) for k in union[magnitude >= phi * total]}

    @classmethod
    def merged(cls, truths: Sequence["EpochTruth"]) -> "EpochTruth":
        """Union truth over several epochs (sliding-window ground truth)."""
        if not truths:
            return cls(np.zeros(0, dtype=np.uint64),
                       np.zeros(0, dtype=np.int64))
        return cls(np.concatenate([t.keys for t in truths]),
                   np.concatenate([t.counts for t in truths]))


# --------------------------------------------------------------------- #
# scenario container
# --------------------------------------------------------------------- #

@dataclass
class Scenario:
    """One generated scenario: an epoch-segmented trace plus the exact
    ground truth and event annotations the acceptance harness consumes.

    ``events`` is scenario-specific metadata (attack epochs, victims,
    per-epoch elephant sets, ...) — everything a detection assertion
    needs that is not a per-key count.
    """

    name: str
    seed: int
    epoch_seconds: float
    trace: Trace
    truths: List[EpochTruth]
    events: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    @property
    def n_epochs(self) -> int:
        return len(self.truths)

    def epoch_traces(self) -> List[Trace]:
        """Per-epoch trace slices at exact ``[i*e, (i+1)*e)`` bounds."""
        return [self.trace.slice_time(i * self.epoch_seconds,
                                      (i + 1) * self.epoch_seconds)
                for i in range(self.n_epochs)]

    def epoch_keys(self) -> List[np.ndarray]:
        """Per-epoch ``uint64`` source-key arrays, ready for
        :meth:`UniversalSketch.update_array` (and the fleet simulator)."""
        from repro.dataplane.keys import src_ip_key
        return [t.key_array(src_ip_key) for t in self.epoch_traces()]

    def window_truth(self, end_epoch: int, window: int) -> EpochTruth:
        """Exact union truth of the ``window`` epochs ending at
        ``end_epoch`` inclusive (sliding-window ground truth)."""
        lo = max(0, end_epoch - window + 1)
        return EpochTruth.merged(self.truths[lo:end_epoch + 1])


# --------------------------------------------------------------------- #
# epoch assembly
# --------------------------------------------------------------------- #

class _EpochSink:
    """Accumulates per-flow components of one epoch and materialises the
    packet columns.

    Components are ``(src, count, dst, sport, dport, proto)`` arrays of
    one row per flow.  The truth is aggregated from the *same* arrays
    the packets are repeated from, which is what makes the generator's
    reported ground truth exact by construction."""

    def __init__(self) -> None:
        self._parts: List[Tuple[np.ndarray, ...]] = []

    def add(self, src: np.ndarray, counts: np.ndarray, dst: np.ndarray,
            sport: np.ndarray, dport: np.ndarray,
            proto: np.ndarray) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        keep = counts > 0
        if not np.any(keep):
            return
        self._parts.append((
            np.asarray(src, dtype=np.uint32)[keep], counts[keep],
            np.asarray(dst, dtype=np.uint32)[keep],
            np.asarray(sport, dtype=np.uint16)[keep],
            np.asarray(dport, dtype=np.uint16)[keep],
            np.asarray(proto, dtype=np.uint8)[keep]))

    def truth(self) -> EpochTruth:
        if not self._parts:
            return EpochTruth(np.zeros(0, dtype=np.uint64),
                              np.zeros(0, dtype=np.int64))
        src = np.concatenate([p[0] for p in self._parts])
        counts = np.concatenate([p[1] for p in self._parts])
        return EpochTruth(src.astype(np.uint64), counts)

    def materialise(self, rng: np.random.Generator, t0: float,
                    t1: float) -> Trace:
        if not self._parts:
            return Trace.empty()
        counts = np.concatenate([p[1] for p in self._parts])
        columns = []
        for index in (0, 2, 3, 4, 5):  # src, dst, sport, dport, proto
            column = np.concatenate([p[index] for p in self._parts])
            columns.append(np.repeat(column, counts))
        n = len(columns[0])
        order = rng.permutation(n)
        # Stay strictly inside [t0, t1) so epoch slicing is exact even
        # under floating-point rounding at the upper bound.
        ts = np.sort(rng.uniform(t0, np.nextafter(t1, t0), size=n))
        sizes = rng.choice(np.array([64, 576, 1500], dtype=np.uint16),
                           size=n, p=[0.5, 0.25, 0.25])
        src, dst, sport, dport, proto = (c[order] for c in columns)
        return Trace(ts, src, dst, sport, dport, proto, sizes)


class _ZipfPopulation:
    """A fixed flow table with Zipf popularity, shared across epochs —
    the same baseline model as :func:`~repro.dataplane.trace.generate_trace`."""

    #: Baseline sources/destinations live below the attack ranges.
    ADDRESS_LO, ADDRESS_HI = 0x0A000000, 0xDF000000

    def __init__(self, rng: np.random.Generator, flows: int,
                 skew: float) -> None:
        if flows < 1:
            raise ConfigurationError(f"flows must be >= 1, got {flows}")
        self.flows = flows
        self.src = rng.integers(self.ADDRESS_LO, self.ADDRESS_HI,
                                size=flows, dtype=np.uint32)
        self.dst = rng.integers(self.ADDRESS_LO, self.ADDRESS_HI,
                                size=flows, dtype=np.uint32)
        self.sport = rng.integers(1024, 65535, size=flows, dtype=np.uint16)
        self.dport = rng.choice(
            np.array([80, 443, 53, 22, 25, 8080, 3306, 123],
                     dtype=np.uint16), size=flows)
        self.proto = rng.choice(
            np.array([PROTO_TCP, PROTO_UDP], dtype=np.uint8),
            size=flows, p=[0.8, 0.2])
        self.probs = zipf_probabilities(flows, skew)

    def add_epoch(self, sink: _EpochSink, rng: np.random.Generator,
                  packets: int,
                  window: Optional[Tuple[int, int]] = None) -> None:
        """One epoch of baseline traffic: multinomial packet counts per
        flow.  ``window=(lo, hi)`` restricts the active population to
        the flow-index window (key-space shift), re-anchoring the Zipf
        ranks to the window start."""
        if packets <= 0:
            return
        if window is None:
            lo, hi = 0, self.flows
            probs = self.probs
        else:
            lo, hi = window
            if not 0 <= lo < hi <= self.flows:
                raise ConfigurationError(
                    f"window {window} outside flow table "
                    f"[0, {self.flows})")
            probs = self.probs[:hi - lo]
            probs = probs / probs.sum()
        counts = rng.multinomial(packets, probs)
        index = slice(lo, hi)
        sink.add(self.src[index], counts, self.dst[index],
                 self.sport[index], self.dport[index], self.proto[index])


def _fresh_sources(rng: np.random.Generator, n: int,
                   lo: int = 0xE0000000, hi: int = 0xFFFFFFF0) -> np.ndarray:
    """``n`` distinct attack sources from the high range the baseline
    population never uses (deduplicated, re-drawn until distinct)."""
    sources = np.unique(rng.integers(lo, hi, size=n, dtype=np.uint32))
    while len(sources) < n:
        extra = rng.integers(lo, hi, size=n - len(sources),
                             dtype=np.uint32)
        sources = np.unique(np.concatenate([sources, extra]))
    return sources[:n]


# --------------------------------------------------------------------- #
# scenario builders
# --------------------------------------------------------------------- #

#: Baseline epoch shape shared by the adversarial scenarios (the
#: acceptance workload: 30k packets / 5k flows / skew 1.1 per 5 s epoch).
EPOCH_SECONDS = 5.0
BASE_PACKETS = 30_000
BASE_FLOWS = 5_000
BASE_SKEW = 1.1


def _scaled(value: int, scale: float) -> int:
    return max(1, int(round(value * scale)))


def _assemble(name: str, seed: int, epoch_seconds: float,
              sinks: Sequence[_EpochSink], rng: np.random.Generator,
              events: Dict[str, object], description: str) -> Scenario:
    truths = [sink.truth() for sink in sinks]
    epoch_traces = [
        sink.materialise(rng, i * epoch_seconds, (i + 1) * epoch_seconds)
        for i, sink in enumerate(sinks)]
    return Scenario(name=name, seed=seed, epoch_seconds=epoch_seconds,
                    trace=Trace.concat(epoch_traces), truths=truths,
                    events=events, description=description)


def _rng_for(name: str, seed: int) -> np.random.Generator:
    # Stable per-scenario stream: same (name, seed) -> same draws,
    # different scenarios at the same seed stay independent.
    digest = sum(ord(c) * 131 ** i for i, c in enumerate(name))
    return np.random.default_rng([seed, digest % (2 ** 32)])


def _build_mix(cdf: FlowSizeCDF,
               flows: int) -> Callable[[int, float], Scenario]:
    """An epoch population whose flow sizes follow the empirical CDF.

    Published tables are per-flow packet counts on 10G+ fabrics; at the
    test-scale link (30k packets / 5s epoch) drawing flows until the
    budget is spent would leave a handful of elephants and no population
    to estimate over.  Instead each epoch draws a *fixed* flow count
    from the CDF and rescales sizes proportionally onto the packet
    budget (mice clamp at 1 packet), preserving the distribution's
    relative structure — which is what HH/entropy/F0 depend on.

    ``flows`` is tuned per table so the top size class — the scenario's
    true heavy-hitter set — stays smaller than the acceptance sketch's
    top-k heap (64 at the 256 KB budget); a true set larger than the
    heap makes the HH task structurally unanswerable rather than hard.
    """
    def build(seed: int, scale: float) -> Scenario:
        name = f"{cdf.name}_mix"
        rng = _rng_for(name, seed)
        epochs = 3
        packets = _scaled(BASE_PACKETS, scale)
        n_flows = _scaled(flows, scale)
        sinks = []
        flows_per_epoch = []
        for _ in range(epochs):
            sink = _EpochSink()
            raw = cdf.sample(rng, n_flows).astype(np.float64)
            sizes = np.maximum(
                1, np.round(raw * packets / raw.sum())).astype(np.int64)
            n = len(sizes)
            sink.add(
                rng.integers(_ZipfPopulation.ADDRESS_LO,
                             _ZipfPopulation.ADDRESS_HI, size=n,
                             dtype=np.uint32),
                sizes,
                rng.integers(_ZipfPopulation.ADDRESS_LO,
                             _ZipfPopulation.ADDRESS_HI, size=n,
                             dtype=np.uint32),
                rng.integers(1024, 65535, size=n, dtype=np.uint16),
                rng.choice(np.array([80, 443, 8080, 3306],
                                    dtype=np.uint16), size=n),
                np.full(n, PROTO_TCP, dtype=np.uint8))
            flows_per_epoch.append(n)
            sinks.append(sink)
        return _assemble(
            name, seed, EPOCH_SECONDS, sinks, rng,
            events={"cdf": cdf.name, "mean_flow_packets": cdf.mean(),
                    "flows_per_epoch": flows_per_epoch},
            description=f"empirical {cdf.name} flow-size mix "
                        f"({packets} packets/epoch)")
    return build


def _build_ddos_ramp(seed: int, scale: float) -> Scenario:
    """Volumetric DDoS that ramps across epochs: 2 clean epochs, then
    a fresh-source flood doubling each epoch.  Stresses F0."""
    rng = _rng_for("ddos_ramp", seed)
    population = _ZipfPopulation(rng, _scaled(BASE_FLOWS, scale), BASE_SKEW)
    packets = _scaled(BASE_PACKETS, scale)
    ramp = {2: _scaled(2_000, scale), 3: _scaled(4_000, scale),
            4: _scaled(8_000, scale)}
    victim = int(rng.integers(_ZipfPopulation.ADDRESS_LO,
                              _ZipfPopulation.ADDRESS_HI))
    sinks = []
    for epoch in range(5):
        sink = _EpochSink()
        population.add_epoch(sink, rng, packets)
        if epoch in ramp:
            n = ramp[epoch]
            sources = _fresh_sources(rng, n)
            sink.add(sources,
                     np.full(n, 2, dtype=np.int64),
                     np.full(n, victim, dtype=np.uint32),
                     rng.integers(1024, 65535, size=n, dtype=np.uint16),
                     np.full(n, 80, dtype=np.uint16),
                     np.full(n, PROTO_TCP, dtype=np.uint8))
        sinks.append(sink)
    return _assemble(
        "ddos_ramp", seed, EPOCH_SECONDS, sinks, rng,
        events={"attack_epochs": tuple(sorted(ramp)), "victim": victim,
                "attack_sources": ramp},
        description="volumetric DDoS ramp: fresh-source flood doubling "
                    "per epoch (F0 explosion)")


def _build_flash_crowd(seed: int, scale: float) -> Scenario:
    """A legitimate flash crowd: a burst of clients with websearch-sized
    flows converging on one destination.  Volume concentrates on few
    sources — entropy drops and new heavy hitters appear."""
    rng = _rng_for("flash_crowd", seed)
    population = _ZipfPopulation(rng, _scaled(BASE_FLOWS, scale), BASE_SKEW)
    packets = _scaled(BASE_PACKETS, scale)
    crowd_epochs = (2, 3)
    victim = int(rng.integers(_ZipfPopulation.ADDRESS_LO,
                              _ZipfPopulation.ADDRESS_HI))
    crowd_sources: Dict[int, int] = {}
    sinks = []
    for epoch in range(4):
        sink = _EpochSink()
        population.add_epoch(sink, rng, packets)
        if epoch in crowd_epochs:
            sizes = WEBSEARCH_CDF.sample_total(rng, 2 * packets)
            n = len(sizes)
            sink.add(_fresh_sources(rng, n, lo=0xE8000000),
                     sizes,
                     np.full(n, victim, dtype=np.uint32),
                     rng.integers(1024, 65535, size=n, dtype=np.uint16),
                     np.full(n, 443, dtype=np.uint16),
                     np.full(n, PROTO_TCP, dtype=np.uint8))
            crowd_sources[epoch] = n
        sinks.append(sink)
    return _assemble(
        "flash_crowd", seed, EPOCH_SECONDS, sinks, rng,
        events={"crowd_epochs": crowd_epochs, "victim": victim,
                "crowd_sources": crowd_sources},
        description="flash crowd: websearch-sized flows converging on "
                    "one destination (entropy drop, new heavy hitters)")


def _build_port_scan(seed: int, scale: float) -> Scenario:
    """A horizontal scan from spoofed sources: every probe arrives from
    a distinct address, one packet each — a distinct-source explosion
    at almost no volume."""
    rng = _rng_for("port_scan", seed)
    population = _ZipfPopulation(rng, _scaled(BASE_FLOWS, scale), BASE_SKEW)
    packets = _scaled(BASE_PACKETS, scale)
    probes = _scaled(15_000, scale)
    scan_epochs = (1, 2, 3)
    victim = int(rng.integers(_ZipfPopulation.ADDRESS_LO,
                              _ZipfPopulation.ADDRESS_HI))
    sinks = []
    for epoch in range(4):
        sink = _EpochSink()
        population.add_epoch(sink, rng, packets)
        if epoch in scan_epochs:
            sources = _fresh_sources(rng, probes)
            sink.add(sources,
                     np.ones(probes, dtype=np.int64),
                     np.full(probes, victim, dtype=np.uint32),
                     rng.integers(1024, 65535, size=probes,
                                  dtype=np.uint16),
                     (np.arange(probes, dtype=np.uint32)
                      % 64510 + 1025).astype(np.uint16),
                     np.full(probes, PROTO_TCP, dtype=np.uint8))
        sinks.append(sink)
    return _assemble(
        "port_scan", seed, EPOCH_SECONDS, sinks, rng,
        events={"scan_epochs": scan_epochs, "victim": victim,
                "probes_per_epoch": probes},
        description="spoofed port scan: one packet per fresh source "
                    "(distinct-source explosion at low volume)")


def _build_heavy_churn(seed: int, scale: float) -> Scenario:
    """The heavy-key set rotates every epoch: a disjoint elephant cohort
    rises while the previous one vanishes — every adjacent epoch pair
    has a large, exactly-known heavy-change set."""
    rng = _rng_for("heavy_churn", seed)
    population = _ZipfPopulation(rng, _scaled(BASE_FLOWS, scale), BASE_SKEW)
    packets = _scaled(BASE_PACKETS, scale)
    cohort, weight = 12, _scaled(1_500, scale)
    epochs = 5
    elephants: Dict[int, List[int]] = {}
    sinks = []
    for epoch in range(epochs):
        sink = _EpochSink()
        population.add_epoch(sink, rng, packets)
        # Disjoint cohorts: each epoch draws from its own /24-sized
        # block (random within the block — sequential addresses can
        # correlate under a fixed hash seed and bias the estimators).
        block = 0xF0000000 + (epoch << 16)
        sources = _fresh_sources(rng, cohort, lo=block,
                                 hi=block + 0x10000)
        sink.add(sources,
                 np.full(cohort, weight, dtype=np.int64),
                 rng.integers(_ZipfPopulation.ADDRESS_LO,
                              _ZipfPopulation.ADDRESS_HI, size=cohort,
                              dtype=np.uint32),
                 rng.integers(1024, 65535, size=cohort, dtype=np.uint16),
                 np.full(cohort, 443, dtype=np.uint16),
                 np.full(cohort, PROTO_TCP, dtype=np.uint8))
        elephants[epoch] = [int(s) for s in sources]
        sinks.append(sink)
    return _assemble(
        "heavy_churn", seed, EPOCH_SECONDS, sinks, rng,
        events={"elephants": elephants, "cohort": cohort,
                "weight": weight},
        description="heavy-key churn: a disjoint elephant cohort per "
                    "epoch (large exact heavy-change sets)")


def _build_keyspace_shift(seed: int, scale: float) -> Scenario:
    """The active key population drifts half a window per epoch:
    adjacent epochs share 50% of their keys, so the union cardinality
    over a sliding window keeps growing — the workload that stresses
    the epoch-ring sliding-window sketch."""
    rng = _rng_for("keyspace_shift", seed)
    window_flows = _scaled(BASE_FLOWS, scale)
    epochs, shift = 6, window_flows // 2
    population = _ZipfPopulation(
        rng, window_flows + shift * (epochs - 1), BASE_SKEW)
    packets = _scaled(BASE_PACKETS, scale)
    sinks = []
    for epoch in range(epochs):
        sink = _EpochSink()
        lo = epoch * shift
        population.add_epoch(sink, rng, packets,
                             window=(lo, lo + window_flows))
        sinks.append(sink)
    return _assemble(
        "keyspace_shift", seed, EPOCH_SECONDS, sinks, rng,
        events={"window_flows": window_flows, "shift": shift,
                "overlap": 1.0 - shift / window_flows},
        description="key-space shift: the active population slides half "
                    "a window per epoch (sliding-window stress)")


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario builder (``build(seed, scale) -> Scenario``)."""

    name: str
    description: str
    build: Callable[[int, float], Scenario]


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec("websearch_mix",
                     "empirical DCTCP websearch flow-size mix",
                     _build_mix(WEBSEARCH_CDF, flows=1_200)),
        ScenarioSpec("datamining_mix",
                     "empirical VL2 data-mining flow-size mix",
                     _build_mix(DATAMINING_CDF, flows=2_500)),
        ScenarioSpec("ddos_ramp",
                     "volumetric DDoS ramp (fresh-source flood, "
                     "F0 explosion)", _build_ddos_ramp),
        ScenarioSpec("flash_crowd",
                     "flash crowd onto one destination (entropy drop, "
                     "new heavy hitters)", _build_flash_crowd),
        ScenarioSpec("port_scan",
                     "spoofed horizontal scan (distinct-source "
                     "explosion)", _build_port_scan),
        ScenarioSpec("heavy_churn",
                     "rotating elephant cohorts (heavy-change sets)",
                     _build_heavy_churn),
        ScenarioSpec("keyspace_shift",
                     "sliding key population (sliding-window stress)",
                     _build_keyspace_shift),
    )
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def make_scenario(name: str, seed: int = 0, scale: float = 1.0) -> Scenario:
    """Build the named scenario at ``seed``.

    ``scale`` multiplies every packet volume and population size (0.1 =
    a ten-times-smaller scenario for smoke tests and benchmarks).
    """
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r} (have {', '.join(scenario_names())})"
        ) from None
    if not scale > 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    return spec.build(seed, scale)
