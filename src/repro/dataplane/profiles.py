"""Named workload profiles for the synthetic trace generator.

The generator's knobs (`SyntheticTraceConfig`) parameterise one
heavy-tailed model; these presets pin them to the regimes the
measurement literature usually distinguishes, so examples and
experiments can say ``profile("backbone")`` instead of re-deriving
skews.  Values follow common characterisations: backbone links are the
most aggregated (many flows, skew ~1.1); datacenter traffic is mousier
but with pronounced elephants (higher skew); an IXP sees extreme fan-in
(more flows per packet); an enterprise edge is small and bursty.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.dataplane.trace import SyntheticTraceConfig

#: Per-5-second-epoch profiles (packets scale with duration).
PROFILES: Dict[str, SyntheticTraceConfig] = {
    # Tier-1 backbone link (the paper's CAIDA setting).
    "backbone": SyntheticTraceConfig(
        packets=30_000, flows=5_000, zipf_skew=1.1, duration=5.0),
    # Datacenter aggregation: fewer concurrent flows, heavier elephants.
    "datacenter": SyntheticTraceConfig(
        packets=40_000, flows=2_000, zipf_skew=1.4, duration=5.0),
    # Internet exchange point: extreme flow fan-in, flatter sizes.
    "ixp": SyntheticTraceConfig(
        packets=30_000, flows=12_000, zipf_skew=0.9, duration=5.0),
    # Enterprise edge: small and comparatively flat.
    "enterprise": SyntheticTraceConfig(
        packets=8_000, flows=1_200, zipf_skew=1.0, duration=5.0),
}


def profile(name: str, duration: float = 5.0,
            seed: int = 0) -> SyntheticTraceConfig:
    """A named profile scaled to ``duration`` seconds.

    Packets scale linearly with duration; flow count scales with its
    square root (longer windows see more distinct flows, sublinearly).
    """
    try:
        base = PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r} (have {sorted(PROFILES)})") from None
    scale = duration / base.duration
    packets = max(1, int(round(base.packets * scale)))
    # Sublinear flow scaling can cross the packet count for tiny
    # durations (flows shrink as sqrt(scale), packets linearly); the
    # generator needs flows <= packets to give every flow a packet.
    flows = min(packets, max(1, int(round(base.flows * scale ** 0.5))))
    return replace(
        base,
        packets=packets,
        flows=flows,
        duration=duration,
        seed=seed,
    )
