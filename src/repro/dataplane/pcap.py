"""Minimal libpcap reader/writer (pure stdlib ``struct``).

Writes traces as Ethernet/IPv4/{TCP,UDP} frames in classic pcap format
(magic ``0xa1b2c3d4``, microsecond timestamps) and reads them back,
tolerating both byte orders.  Only the fields a :class:`Trace` carries are
preserved; payloads are zero-padded to the recorded packet size.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.dataplane.packet import PROTO_TCP, PROTO_UDP
from repro.dataplane.trace import Trace

_PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1
_ETH_HEADER = b"\x02\x00\x00\x00\x00\x01" + b"\x02\x00\x00\x00\x00\x02" + b"\x08\x00"
_ETH_LEN = 14
_IP_LEN = 20


def save_pcap(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as a classic pcap capture."""
    with open(path, "wb") as fh:
        fh.write(struct.pack("<IHHiIII", _PCAP_MAGIC, 2, 4, 0, 0, 65535,
                             _LINKTYPE_ETHERNET))
        for i in range(len(trace)):
            ts = float(trace.timestamps[i])
            sec = int(ts)
            usec = int(round((ts - sec) * 1_000_000))
            if usec >= 1_000_000:
                sec, usec = sec + 1, usec - 1_000_000
            proto = int(trace.proto[i])
            l4 = _l4_header(proto, int(trace.sport[i]), int(trace.dport[i]))
            total_ip = max(int(trace.size[i]) - _ETH_LEN, _IP_LEN + len(l4))
            ip = _ipv4_header(int(trace.src[i]), int(trace.dst[i]),
                              proto, total_ip)
            payload_len = total_ip - _IP_LEN - len(l4)
            frame = _ETH_HEADER + ip + l4 + b"\x00" * payload_len
            fh.write(struct.pack("<IIII", sec, usec, len(frame), len(frame)))
            fh.write(frame)


def _ipv4_header(src: int, dst: int, proto: int, total_len: int) -> bytes:
    header = struct.pack(">BBHHHBBHII", 0x45, 0, total_len, 0, 0, 64,
                         proto, 0, src, dst)
    checksum = _ip_checksum(header)
    return header[:10] + struct.pack(">H", checksum) + header[12:]


def _ip_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _l4_header(proto: int, sport: int, dport: int) -> bytes:
    if proto == PROTO_TCP:
        return struct.pack(">HHIIBBHHH", sport, dport, 0, 0, 0x50, 0x10,
                           65535, 0, 0)
    if proto == PROTO_UDP:
        return struct.pack(">HHHH", sport, dport, 8, 0)
    return b""


def load_pcap(path: Union[str, Path]) -> Trace:
    """Read a pcap capture into a :class:`Trace`.

    Non-IPv4 frames are skipped; TCP/UDP ports are extracted when present.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < 24:
        raise TraceFormatError(f"{path}: truncated pcap header")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == _PCAP_MAGIC:
        endian = "<"
    elif magic == 0xD4C3B2A1:
        endian = ">"
    else:
        raise TraceFormatError(f"{path}: not a pcap file (magic {magic:#x})")
    linktype = struct.unpack(endian + "I", data[20:24])[0]
    if linktype != _LINKTYPE_ETHERNET:
        raise TraceFormatError(
            f"{path}: unsupported linktype {linktype} (want Ethernet)")

    ts_list, src, dst, sport, dport, proto, size = \
        [], [], [], [], [], [], []
    offset = 24
    while offset + 16 <= len(data):
        sec, usec, caplen, origlen = struct.unpack(
            endian + "IIII", data[offset:offset + 16])
        offset += 16
        frame = data[offset:offset + caplen]
        offset += caplen
        if len(frame) < _ETH_LEN + _IP_LEN:
            continue
        ethertype = struct.unpack(">H", frame[12:14])[0]
        if ethertype != 0x0800:
            continue
        ip = frame[_ETH_LEN:]
        version_ihl = ip[0]
        if version_ihl >> 4 != 4:
            continue
        ihl = (version_ihl & 0x0F) * 4
        if len(ip) < ihl + 4:
            continue
        p = ip[9]
        s_ip, d_ip = struct.unpack(">II", ip[12:20])
        sp = dp = 0
        if p in (PROTO_TCP, PROTO_UDP) and len(ip) >= ihl + 4:
            sp, dp = struct.unpack(">HH", ip[ihl:ihl + 4])
        ts_list.append(sec + usec / 1_000_000)
        src.append(s_ip)
        dst.append(d_ip)
        sport.append(sp)
        dport.append(dp)
        proto.append(p)
        size.append(origlen)
    return Trace(
        np.array(ts_list, dtype=np.float64),
        np.array(src, dtype=np.uint32),
        np.array(dst, dtype=np.uint32),
        np.array(sport, dtype=np.uint16),
        np.array(dport, dtype=np.uint16),
        np.array(proto, dtype=np.uint8),
        np.array(size, dtype=np.uint16),
    )
