"""Sharded multi-core ingest over sketch linearity (§5).

The universal sketch is linear: equal-seed instances built over disjoint
substreams merge into exactly the sketch of the concatenated stream.
This module exploits that to scale :class:`BatchIngest` past one core —
and, since PR 6, to do it at a profit: the original driver spawned N
processes, allocated a fresh ``SharedMemory`` block, and pickled every
shard sketch back *per call*, which made 30k-packet runs slower than
serial ingest.  The redesign amortises all of that:

- :class:`ShardWorkerPool` — N worker processes spawned **once** that
  persist across epochs and traces.  Each worker folds its shard of
  every batch into an epoch-local equal-seed
  :class:`~repro.core.universal.UniversalSketch` via the vectorised
  ``update_array`` path and ships bytes only when the driver seals the
  epoch, so steady-state cost is pure ``update_array`` work.
- A reusable **double-buffered slab**: two shared-memory blocks sized
  once (keys + weights regions), refilled batch by batch — the driver
  copies the next batch into one slab while the workers chew the other,
  and no key array ever crosses a pipe or is reallocated per run.
- ``seal()`` ships each worker's sealed sketch bytes to the driver's
  binary merge-tree reducer; the merged level counters are bit-identical
  to serial ingest of the same stream (partitioning only reorders the
  int64 additions).

:class:`ShardedIngest` keeps its PR-4 surface (same constructor, same
``ingest_keys`` -> :class:`ShardedIngestReport`) but now lazily owns a
pool that it reuses across calls; pass ``pool=`` to share one pool
between drivers (the switch does this across programs and epochs).

Two shard policies:

- ``"range"`` (default): worker ``i`` reads the contiguous slice
  ``batch[m*i//N : m*(i+1)//N]`` straight out of the slab — zero scan,
  zero copy, best throughput;
- ``"hash"``: worker ``i`` takes the keys whose mixed hash lands in
  residue ``i`` — per-key determinism (a flow always lands on the same
  shard), the policy a keyed NIC RSS / eBPF steering stage would apply.

The driver degrades gracefully to in-process :class:`BatchIngest` when
``workers == 1``, the stream is empty, or the platform lacks POSIX
shared memory.  Failure semantics are exact-or-nothing: a worker that
dies (any exit code — a clean ``exit(0)`` without a result is just as
fatal), errors, or stalls surfaces as a typed
:class:`~repro.errors.ShardFailureError`, the pool tears itself down
(and restarts transparently on the next run), and partial shards are
never merged — that would silently undercount everything.

Observability (driver-side, through the ambient registry): the PR-4
``univmon_shard_*`` families are retained (per-shard series are cleared
at the start of every run so a narrow run never exports stale shard
labels from a wider one), plus pool lifecycle metrics:
``univmon_pool_starts_total``, ``univmon_pool_spawns_total``,
``univmon_pool_stops_total``, ``univmon_pool_workers``,
``univmon_pool_slab_bytes``, ``univmon_pool_batches_total``,
``univmon_pool_slab_refills_total``, ``univmon_pool_epochs_total``,
``univmon_pool_slab_wait_seconds`` and ``univmon_pool_seal_seconds``.
"""

from __future__ import annotations

import os
import queue as _queue
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShardFailureError
from repro.obs.metrics import get_registry
from repro.core.universal import UniversalSketch
from repro.dataplane.replay import BatchIngest, IngestReport

#: Shard policies: contiguous slices vs hash-of-key residues.
RANGE = "range"
HASH = "hash"
_POLICIES = (RANGE, HASH)

#: Packets per slab buffer.  Each slab holds a uint64 key region plus an
#: int64 weight region (16 bytes/packet); two slabs per pool.  256k
#: packets (8 MB/slab) is large enough that the one ack message per
#: batch per worker is noise, small enough for cramped /dev/shm mounts.
DEFAULT_SLAB_PACKETS = 1 << 18

_SHM_AVAILABLE: Optional[bool] = None


def shared_memory_available() -> bool:
    """True when POSIX shared memory blocks can actually be created
    (probed once per process; e.g. containers without /dev/shm fail)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory
            block = shared_memory.SharedMemory(create=True, size=8)
        except Exception:
            _SHM_AVAILABLE = False
        else:
            block.close()
            block.unlink()
            _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def shard_of(keys: np.ndarray, workers: int) -> np.ndarray:
    """The hash-policy shard of every key: ``mix64(key) % workers``.

    A raw ``key % workers`` would send sequential IP blocks to one
    shard; the splitmix64 finaliser spreads any key structure evenly
    while staying a pure (deterministic) function of the key.
    """
    x = np.asarray(keys, dtype=np.uint64).copy()
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E9B5)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x % np.uint64(workers)).astype(np.int64)


def _range_bounds(n: int, workers: int) -> List[int]:
    return [n * i // workers for i in range(workers + 1)]


def _sketch_params(sketch: UniversalSketch) -> Dict[str, int]:
    """The constructor arguments workers rebuild their sketch from
    (geometry + seed travel instead of a pickled factory, so lambdas
    work under the spawn start method too)."""
    return dict(levels=sketch.num_levels, rows=sketch.rows,
                width=sketch.width, heap_size=sketch.heap_size,
                seed=sketch.seed, counter_bytes=sketch.counter_bytes)


def _merge_tree(sketches: List[UniversalSketch]) -> UniversalSketch:
    """Binary reduction: log2(N) merge rounds, deterministic pairing."""
    while len(sketches) > 1:
        paired = [sketches[i].merge(sketches[i + 1])
                  for i in range(0, len(sketches) - 1, 2)]
        if len(sketches) % 2:
            paired.append(sketches[-1])
        sketches = paired
    return sketches[0]


def _ingest_shard(params: Dict[str, int], keys: np.ndarray,
                  weights: Optional[np.ndarray], shard: int, workers: int,
                  policy: str, chunk_size: int
                  ) -> Tuple[UniversalSketch, IngestReport]:
    """Fold shard ``shard`` of one batch into a fresh sketch.

    Runs inside the worker process; ``keys``/``weights`` are views over
    the slab (range slices stay zero-copy, hash masks copy only the
    shard's own keys).  The worker merges the returned sketch into its
    epoch-local accumulator.
    """
    if policy == HASH:
        mask = shard_of(keys, workers) == shard
        keys = keys[mask]
        weights = None if weights is None else weights[mask]
    else:
        bounds = _range_bounds(len(keys), workers)
        lo, hi = bounds[shard], bounds[shard + 1]
        keys = keys[lo:hi]
        weights = None if weights is None else weights[lo:hi]
    sketch = UniversalSketch(**params)
    report = BatchIngest(sketch, chunk_size=chunk_size).ingest_keys(
        keys, weights)
    return sketch, report


def _worker_entry(task_queue, result_queue, slab_names: List[str],
                  slab_packets: int, shard: int, workers: int) -> None:
    """Pool worker main loop: attach the slabs once, then serve
    ``batch`` / ``seal`` / ``stop`` commands until shutdown.

    The worker folds every batch's shard into an epoch-local sketch and
    ships serialized bytes only at seal time — the steady-state cost per
    batch is one ``update_array`` fold plus a tiny ack message.
    """
    from multiprocessing import shared_memory

    from repro.core import serialization

    slabs = [shared_memory.SharedMemory(name=name) for name in slab_names]
    weight_offset = slab_packets * 8
    sketch = None
    params = None
    policy = RANGE
    chunk_size = 8192
    packets = chunks = 0
    seconds = 0.0
    keys = weights = None
    try:
        while True:
            command = task_queue.get()
            op = command[0]
            if op == "stop":
                break
            try:
                if op == "batch":
                    (_, slab_index, n, has_weights, new_params,
                     new_policy, new_chunk_size, batch_id) = command
                    if new_params is not None:  # first batch of an epoch
                        params = new_params
                        policy = new_policy
                        chunk_size = new_chunk_size
                        sketch = None
                        packets = chunks = 0
                        seconds = 0.0
                    buf = slabs[slab_index].buf
                    keys = np.ndarray((n,), dtype=np.uint64, buffer=buf)
                    weights = np.ndarray(
                        (n,), dtype=np.int64, buffer=buf,
                        offset=weight_offset) if has_weights else None
                    try:
                        batch_sketch, report = _ingest_shard(
                            params, keys, weights, shard, workers, policy,
                            chunk_size)
                    finally:
                        # Views into the slab must not outlive the batch:
                        # a mapped buffer with live exports cannot be
                        # released at shutdown.
                        keys = weights = None  # noqa: F841
                    sketch = batch_sketch if sketch is None \
                        else sketch.merge(batch_sketch)
                    packets += report.packets
                    chunks += report.chunks
                    seconds += report.seconds
                    result_queue.put(("batch_done", shard, batch_id,
                                      report.packets))
                elif op == "seal":
                    epoch_id = command[1]
                    if sketch is None and params is not None:
                        sketch = UniversalSketch(**params)
                    payload = b"" if sketch is None \
                        else serialization.dumps(sketch)
                    result_queue.put(("sealed", shard, epoch_id, payload,
                                      packets, chunks, seconds))
                    sketch = None
                    params = None
                    packets = chunks = 0
                    seconds = 0.0
            except BaseException as exc:  # surfaced as ShardFailureError
                result_queue.put(("error", shard,
                                  f"{type(exc).__name__}: {exc}"))
    finally:
        keys = weights = None  # noqa: F841
        for slab in slabs:
            slab.close()


class ShardWorkerPool:
    """N persistent worker processes fed through two reusable slabs.

    The pool is the amortisation boundary: workers are spawned once and
    the slabs allocated once, then any number of epochs (and traces) run
    through them.  Within an epoch the two slabs double-buffer — the
    driver refills one while the workers chew the other — and
    :meth:`run_epoch` seals the workers' epoch-local sketches and merges
    the results.

    Parameters
    ----------
    workers:
        Worker process count; defaults to ``os.cpu_count()``.
    slab_packets:
        Capacity of each slab in packets (keys + weights regions).
        Streams longer than this are fed in multiple batches.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        tests exercise both ``"fork"`` and ``"spawn"``).
    timeout:
        Wall-clock budget for any single wait on the workers; a shard
        still silent past it raises :class:`ShardFailureError` (never a
        hang).

    The pool restarts transparently: any failure tears the workers and
    slabs down, and the next :meth:`run_epoch` (or explicit
    :meth:`start`) spawns a fresh generation.
    """

    def __init__(self, workers: Optional[int] = None,
                 slab_packets: int = DEFAULT_SLAB_PACKETS,
                 start_method: Optional[str] = None,
                 timeout: float = 300.0,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if slab_packets < 1:
            raise ConfigurationError(
                f"slab_packets must be >= 1, got {slab_packets}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        self.workers = workers
        self.slab_packets = slab_packets
        self.start_method = start_method
        self.timeout = timeout
        self._clock = clock
        self._procs: List = []
        self._task_queues: List = []
        self._results = None
        self._slabs: List = []
        self._key_views: List[np.ndarray] = []
        self._weight_views: List[np.ndarray] = []
        self._slab_pending: List[set] = []
        self._slab_batch: List[Optional[int]] = []
        self._batch_seq = 0
        self._epoch_seq = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        return self._started

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker generation (tests pin persistence)."""
        return [proc.pid for proc in self._procs]

    def slab_names(self) -> List[str]:
        """Shared-memory block names of the live slabs."""
        return [slab.name for slab in self._slabs]

    def start(self) -> "ShardWorkerPool":
        """Spawn the workers and allocate the slabs (idempotent)."""
        if self._started:
            return self
        if not shared_memory_available():
            raise ConfigurationError(
                "ShardWorkerPool needs POSIX shared memory")
        import multiprocessing as mp
        from multiprocessing import shared_memory

        reg = get_registry()
        ctx = mp.get_context(self.start_method)
        slab_bytes = self.slab_packets * 16  # u64 keys + i64 weights
        try:
            for _ in range(2):
                block = shared_memory.SharedMemory(create=True,
                                                   size=slab_bytes)
                self._slabs.append(block)
                self._key_views.append(np.ndarray(
                    (self.slab_packets,), dtype=np.uint64, buffer=block.buf))
                self._weight_views.append(np.ndarray(
                    (self.slab_packets,), dtype=np.int64, buffer=block.buf,
                    offset=self.slab_packets * 8))
                self._slab_pending.append(set())
                self._slab_batch.append(None)
            self._results = ctx.Queue()
            names = [block.name for block in self._slabs]
            for shard in range(self.workers):
                task_queue = ctx.SimpleQueue()
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(task_queue, self._results, names,
                          self.slab_packets, shard, self.workers),
                    daemon=True)
                self._task_queues.append(task_queue)
                self._procs.append(proc)
                proc.start()
        except Exception:
            self._teardown()
            raise
        self._started = True
        reg.counter("univmon_pool_starts_total",
                    help="worker-pool generations started").inc()
        reg.counter("univmon_pool_spawns_total",
                    help="worker processes spawned over all pool "
                         "generations").inc(self.workers)
        reg.gauge("univmon_pool_workers",
                  help="live worker processes of the pool").set(self.workers)
        reg.gauge("univmon_pool_slab_bytes",
                  help="bytes of shared-memory slab the pool holds").set(
                      2 * slab_bytes)
        return self

    def close(self) -> None:
        """Stop the workers and release the slabs.

        Safe to call repeatedly; the pool may be started again
        afterwards (a fresh worker generation and fresh slabs).
        """
        if not self._started and not self._procs and not self._slabs:
            return
        for task_queue, proc in zip(self._task_queues, self._procs):
            if proc.is_alive():
                try:
                    task_queue.put(("stop",))
                except Exception:
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._teardown()
        reg = get_registry()
        reg.counter("univmon_pool_stops_total",
                    help="worker-pool generations stopped").inc()
        reg.gauge("univmon_pool_workers",
                  help="live worker processes of the pool").set(0)
        reg.gauge("univmon_pool_slab_bytes",
                  help="bytes of shared-memory slab the pool holds").set(0)

    def _teardown(self) -> None:
        """Force-release every process and shared-memory resource."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        for task_queue in self._task_queues:
            try:
                task_queue.close()
            except Exception:
                pass
        self._task_queues = []
        if self._results is not None:
            try:
                self._results.close()
                self._results.cancel_join_thread()
            except Exception:
                pass
            self._results = None
        # Views must drop before close(): a mapped buffer with live
        # exports cannot be released.
        self._key_views = []
        self._weight_views = []
        for slab in self._slabs:
            try:
                slab.close()
                slab.unlink()
            except Exception:
                pass
        self._slabs = []
        self._slab_pending = []
        self._slab_batch = []
        self._started = False

    def __enter__(self) -> "ShardWorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self._teardown()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # the epoch pipeline
    # ------------------------------------------------------------------ #

    def run_epoch(self, params: Dict[str, int], keys: np.ndarray,
                  weights: Optional[np.ndarray] = None,
                  policy: str = RANGE, chunk_size: int = 8192
                  ) -> Tuple[UniversalSketch, Tuple[IngestReport, ...],
                             float]:
        """Feed one epoch's key stream through the pool and seal it.

        Dispatches the stream slab-batch by slab-batch (double-buffered:
        the next batch is copied in while workers chew the previous
        one), seals every worker's epoch-local sketch, verifies packet
        conservation, and reduces the sealed bytes with a binary merge
        tree.  Returns ``(merged sketch, per-shard reports,
        merge_seconds)``.
        """
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r} (want one of {_POLICIES})")
        self.start()
        reg = get_registry()
        n = len(keys)
        epoch_id = self._epoch_seq
        self._epoch_seq += 1
        first = True
        try:
            for lo in range(0, n, self.slab_packets):
                hi = min(n, lo + self.slab_packets)
                slab = self._acquire_slab(reg)
                m = hi - lo
                with reg.span("univmon_shard_scatter_seconds",
                              help="refilling a slab with the next batch"):
                    self._key_views[slab][:m] = keys[lo:hi]
                    if weights is not None:
                        self._weight_views[slab][:m] = weights[lo:hi]
                batch_id = self._batch_seq
                self._batch_seq += 1
                message = ("batch", slab, m, weights is not None,
                           params if first else None,
                           policy if first else None,
                           chunk_size if first else None, batch_id)
                first = False
                self._slab_pending[slab] = set(range(self.workers))
                self._slab_batch[slab] = batch_id
                for task_queue in self._task_queues:
                    task_queue.put(message)
                reg.counter("univmon_pool_batches_total",
                            help="slab batches dispatched to the pool").inc()
            sealed = self._seal(epoch_id, reg)
        except ShardFailureError:
            raise
        except Exception:
            self._teardown()
            raise
        total = sum(sealed[i][1] for i in range(self.workers))
        if total != n:
            self._fail(reg, f"shards processed {total} of {n} packets — "
                            f"the {policy} partition dropped data")
        shards = tuple(IngestReport(packets=sealed[i][1],
                                    chunks=sealed[i][2],
                                    seconds=sealed[i][3])
                       for i in range(self.workers))
        from repro.core import serialization
        merge_start = self._clock()
        with reg.span("univmon_shard_merge_seconds",
                      help="binary merge-tree reduction of sealed shard "
                           "sketches"):
            merged = _merge_tree([serialization.loads(sealed[i][0])
                                  for i in range(self.workers)])
        merge_seconds = self._clock() - merge_start
        reg.counter("univmon_pool_epochs_total",
                    help="epochs sealed by the pool").inc()
        return merged, shards, merge_seconds

    def _free_slab(self) -> Optional[int]:
        for index, pending in enumerate(self._slab_pending):
            if not pending:
                return index
        return None

    def _acquire_slab(self, reg) -> int:
        """Index of a slab with no batch in flight (waits for acks)."""
        index = self._free_slab()
        if index is None:
            deadline = time.monotonic() + self.timeout
            wait_start = self._clock()
            while index is None:
                self._pump(deadline, reg)
                index = self._free_slab()
            reg.histogram(
                "univmon_pool_slab_wait_seconds",
                help="backpressure: time the driver waited for workers "
                     "to free a slab").observe(
                         max(self._clock() - wait_start, 0.0))
        if self._slab_batch[index] is not None:
            reg.counter(
                "univmon_pool_slab_refills_total",
                help="batches that reused an already-filled slab "
                     "(steady-state double buffering)").inc()
        return index

    def _seal(self, epoch_id: int, reg) -> Dict[int, tuple]:
        """Ship ``seal`` to every worker and collect the sealed bytes."""
        for task_queue in self._task_queues:
            task_queue.put(("seal", epoch_id))
        sealed: Dict[int, tuple] = {}
        deadline = time.monotonic() + self.timeout
        with reg.span("univmon_pool_seal_seconds",
                      help="seal round-trip: flush acks, collect sealed "
                           "shard sketches"):
            while len(sealed) < self.workers:
                self._pump(deadline, reg, sealed=sealed, epoch_id=epoch_id)
        return sealed

    def _pump(self, deadline: float, reg,
              sealed: Optional[Dict[int, tuple]] = None,
              epoch_id: Optional[int] = None) -> None:
        """Process one worker message (or detect dead/stalled shards)."""
        try:
            item = self._results.get(timeout=0.2)
        except _queue.Empty:
            self._check_dead(reg, sealed)
            if time.monotonic() > deadline:
                missing = sorted(self._expecting(sealed))
                self._fail(reg, f"shard(s) {missing} produced no result "
                                f"within {self.timeout:.0f}s")
            return
        kind = item[0]
        if kind == "error":
            self._fail(reg, f"shard {item[1]} failed: {item[2]}")
        elif kind == "batch_done":
            _, shard, batch_id, _packets = item
            for index, in_flight in enumerate(self._slab_batch):
                if in_flight == batch_id:
                    self._slab_pending[index].discard(shard)
        elif kind == "sealed" and sealed is not None:
            _, shard, sealed_epoch, payload, packets, chunks, seconds = item
            if sealed_epoch == epoch_id:
                sealed[shard] = (payload, packets, chunks, seconds)
                # A sealed reply is the worker's last message of the
                # epoch: every batch it acked is implicitly complete.
                for pending in self._slab_pending:
                    pending.discard(shard)

    def _expecting(self, sealed: Optional[Dict[int, tuple]]) -> set:
        """Shards that still owe the driver a message."""
        owe: set = set()
        for pending in self._slab_pending:
            owe |= pending
        if sealed is not None:
            owe |= set(range(self.workers)) - set(sealed)
        return owe

    def _check_dead(self, reg, sealed: Optional[Dict[int, tuple]]) -> None:
        """Fail fast on any fully-exited worker that still owes a result.

        *Any* exit counts — a worker that exits 0 without posting (e.g.
        ``os._exit(0)`` in user code, or a lost queue feeder) would
        otherwise stall the driver for the full timeout.
        """
        owe = self._expecting(sealed)
        dead = [index for index in sorted(owe)
                if self._procs[index].exitcode is not None]
        if dead:
            codes = [self._procs[index].exitcode for index in dead]
            self._fail(reg, f"worker(s) {dead} exited with exit code(s) "
                            f"{codes} before posting a result")

    def _fail(self, reg, message: str) -> None:
        reg.counter("univmon_shard_failures_total",
                    help="sharded-ingest runs that failed").inc()
        self._teardown()
        raise ShardFailureError(message)


@dataclass(frozen=True)
class ShardedIngestReport:
    """Outcome of one :meth:`ShardedIngest.ingest_keys` run."""

    sketch: UniversalSketch
    packets: int
    workers: int
    policy: str
    parallel: bool
    seconds: float
    merge_seconds: float
    shards: Tuple[IngestReport, ...]
    fallback_reason: Optional[str] = None

    @property
    def packets_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf") if self.packets else 0.0
        return self.packets / self.seconds


class ShardedIngest:
    """Split a key stream across pooled worker processes and merge.

    Parameters
    ----------
    sketch_factory:
        Produces the per-shard :class:`UniversalSketch`.  Called once in
        the driver to read off geometry + seed (workers rebuild from
        those, so the factory itself never crosses a process boundary);
        an explicit seed is required whenever ``workers > 1`` — seedless
        shards could not merge.
    workers:
        Shard count; defaults to ``os.cpu_count()`` (or the shared
        pool's worker count).  ``workers == 1`` runs in-process through
        :class:`BatchIngest`.
    policy:
        ``"range"`` (contiguous slices, default) or ``"hash"``
        (per-key residue sharding); both partitions are exact by
        linearity, the choice only moves scan cost vs flow affinity.
    chunk_size:
        Per-worker :class:`BatchIngest` chunk size.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        tests exercise both ``"fork"`` and ``"spawn"``).
    timeout:
        Wall-clock budget for any single wait on the workers; a shard
        still missing past it raises :class:`ShardFailureError` (never a
        hang).
    pool:
        A shared :class:`ShardWorkerPool` to run on.  When omitted the
        driver lazily starts its own pool on the first parallel run and
        keeps it hot across calls — close the driver (or let it be
        garbage collected) to release the workers and slabs.
    slab_packets:
        Slab capacity for an owned pool (ignored with ``pool=``).
    """

    def __init__(self, sketch_factory: Callable[[], UniversalSketch],
                 workers: Optional[int] = None, policy: str = RANGE,
                 chunk_size: int = 8192,
                 start_method: Optional[str] = None,
                 timeout: float = 300.0,
                 clock: Callable[[], float] = time.perf_counter,
                 pool: Optional[ShardWorkerPool] = None,
                 slab_packets: int = DEFAULT_SLAB_PACKETS) -> None:
        if workers is None:
            workers = pool.workers if pool is not None \
                else (os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r} (want one of {_POLICIES})")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if pool is not None and pool.workers != workers:
            raise ConfigurationError(
                f"shared pool runs {pool.workers} workers, driver wants "
                f"{workers}")
        self.sketch_factory = sketch_factory
        self.workers = workers
        self.policy = policy
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.timeout = timeout
        self.slab_packets = slab_packets
        self._clock = clock
        self._pool = pool
        self._owns_pool = pool is None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @classmethod
    def like(cls, sketch: UniversalSketch, **kwargs) -> "ShardedIngest":
        """A driver whose shards share ``sketch``'s geometry and seed —
        the result merges exactly into (or replaces) ``sketch``."""
        if not isinstance(sketch, UniversalSketch):
            raise ConfigurationError(
                "ShardedIngest.like needs a UniversalSketch template, got "
                f"{type(sketch).__name__}")
        params = _sketch_params(sketch)
        return cls(lambda: UniversalSketch(**params), **kwargs)

    @property
    def pool(self) -> Optional[ShardWorkerPool]:
        """The pool this driver runs on (None until the first parallel
        run of an owned-pool driver)."""
        return self._pool

    def close(self) -> None:
        """Release an owned pool (workers + slabs); shared pools are the
        owner's to close.  The driver stays usable — the next parallel
        run starts a fresh pool."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedIngest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass

    def ingest_keys(self, keys: np.ndarray,
                    weights: Optional[np.ndarray] = None
                    ) -> ShardedIngestReport:
        """Shard, ingest, and merge a ``uint64`` key stream."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if weights is not None:
            weights = np.asarray(weights)
            if np.issubdtype(weights.dtype, np.floating) \
                    and not np.isfinite(weights).all():
                bad = int(np.count_nonzero(~np.isfinite(weights)))
                raise ConfigurationError(
                    f"weights must be finite: {bad} NaN/inf value(s) "
                    f"cannot be counted as int64 packet weights")
            weights = np.ascontiguousarray(
                weights.astype(np.int64, copy=False))
            if len(weights) != len(keys):
                raise ConfigurationError(
                    f"weights length {len(weights)} != keys length "
                    f"{len(keys)}")
        template = self.sketch_factory()
        if not isinstance(template, UniversalSketch):
            raise ConfigurationError(
                "ShardedIngest shards UniversalSketch ingest only, got "
                f"{type(template).__name__}")
        if self.workers > 1 and template.seed is None:
            raise ConfigurationError(
                "sharded ingest needs an explicit sketch seed (equal-seed "
                "shards are what makes the merge exact)")
        reason = None
        if self.workers == 1:
            reason = "workers=1"
        elif len(keys) == 0:
            reason = "empty stream"
        elif not shared_memory_available():
            reason = "no shared memory"
        if reason is not None:
            return self._ingest_in_process(template, keys, weights, reason)
        return self._ingest_parallel(template, keys, weights)

    # ------------------------------------------------------------------ #
    # degraded path
    # ------------------------------------------------------------------ #

    def _ingest_in_process(self, sketch: UniversalSketch, keys: np.ndarray,
                           weights: Optional[np.ndarray],
                           reason: str) -> ShardedIngestReport:
        reg = get_registry()
        reg.counter("univmon_shard_fallbacks_total",
                    help="sharded-ingest runs degraded to in-process "
                         "BatchIngest", reason=reason).inc()
        report = BatchIngest(sketch, chunk_size=self.chunk_size,
                             clock=self._clock).ingest_keys(keys, weights)
        self._record_run(reg, (report,), workers=1)
        return ShardedIngestReport(
            sketch=sketch, packets=report.packets, workers=1,
            policy=self.policy, parallel=False, seconds=report.seconds,
            merge_seconds=0.0, shards=(report,), fallback_reason=reason)

    # ------------------------------------------------------------------ #
    # pooled path
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> ShardWorkerPool:
        if self._pool is None:
            self._pool = ShardWorkerPool(
                workers=self.workers, slab_packets=self.slab_packets,
                start_method=self.start_method, timeout=self.timeout,
                clock=self._clock)
        return self._pool

    def _ingest_parallel(self, template: UniversalSketch, keys: np.ndarray,
                         weights: Optional[np.ndarray]
                         ) -> ShardedIngestReport:
        reg = get_registry()
        pool = self._ensure_pool()
        params = _sketch_params(template)
        n = len(keys)
        start = self._clock()
        merged, shards, merge_seconds = pool.run_epoch(
            params, keys, weights, policy=self.policy,
            chunk_size=self.chunk_size)
        self._record_run(reg, shards, workers=self.workers)
        return ShardedIngestReport(
            sketch=merged, packets=n, workers=self.workers,
            policy=self.policy, parallel=True,
            seconds=self._clock() - start, merge_seconds=merge_seconds,
            shards=shards)

    def _record_run(self, reg, shards: Tuple[IngestReport, ...],
                    workers: int) -> None:
        reg.counter("univmon_shard_runs_total",
                    help="completed sharded-ingest runs").inc()
        reg.gauge("univmon_shard_workers",
                  help="worker count of the last sharded-ingest run").set(
                      workers)
        # Per-shard series reset every run: a 2-worker run after a
        # 4-worker run must export exactly 2 shard series, not keep the
        # wider run's stale shard="2"/"3" values alive in scrapes.
        clear = getattr(reg, "clear_family", None)
        if clear is not None:
            clear("univmon_shard_packets_total")
            clear("univmon_shard_packets_per_second")
        for index, report in enumerate(shards):
            reg.counter("univmon_shard_packets_total",
                        help="packets folded in per shard",
                        shard=str(index)).inc(report.packets)
            reg.gauge("univmon_shard_packets_per_second",
                      help="per-shard rate of the last run",
                      shard=str(index)).set(report.packets_per_second)
