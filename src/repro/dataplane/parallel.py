"""Sharded multi-core ingest over sketch linearity (§5).

The universal sketch is linear: equal-seed instances built over disjoint
substreams merge into exactly the sketch of the concatenated stream.
:class:`ShardedIngest` exploits this to scale :class:`BatchIngest` past
one core.  The key stream is placed in a ``multiprocessing.shared_memory``
block once (no per-chunk pickling of key arrays), N worker processes each
fold a disjoint shard through their own equal-seed
:class:`~repro.core.universal.UniversalSketch` via the vectorised
``update_array`` path, and the driver reduces the shard sketches with a
binary merge tree.  The merged sketch's level counters are bit-identical
to serial ingest of the same stream — partitioning only reorders the
int64 additions.

Two shard policies:

- ``"range"`` (default): worker ``i`` reads the contiguous slice
  ``keys[n*i//N : n*(i+1)//N]`` straight out of shared memory — zero
  scan, zero copy, best throughput;
- ``"hash"``: worker ``i`` takes the keys whose mixed hash lands in
  residue ``i`` — per-key determinism (a flow always lands on the same
  shard), the policy a keyed NIC RSS / eBPF steering stage would apply.

The driver degrades gracefully to in-process :class:`BatchIngest` when
``workers == 1``, the stream is empty, or the platform lacks POSIX shared
memory; a worker that dies, errors, or stalls surfaces as a typed
:class:`~repro.errors.ShardFailureError` instead of a hang (exact-or-
nothing: merging partial shards would silently undercount everything).

Observability (driver-side, through the ambient registry):
``univmon_shard_runs_total``, ``univmon_shard_fallbacks_total{reason=}``,
``univmon_shard_failures_total``, ``univmon_shard_packets_total{shard=}``,
``univmon_shard_packets_per_second{shard=}``, ``univmon_shard_workers``,
``univmon_shard_scatter_seconds`` and ``univmon_shard_merge_seconds``.
"""

from __future__ import annotations

import os
import queue as _queue
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShardFailureError
from repro.obs.metrics import get_registry
from repro.core.universal import UniversalSketch
from repro.dataplane.replay import BatchIngest, IngestReport

#: Shard policies: contiguous slices vs hash-of-key residues.
RANGE = "range"
HASH = "hash"
_POLICIES = (RANGE, HASH)

_SHM_AVAILABLE: Optional[bool] = None


def shared_memory_available() -> bool:
    """True when POSIX shared memory blocks can actually be created
    (probed once per process; e.g. containers without /dev/shm fail)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory
            block = shared_memory.SharedMemory(create=True, size=8)
        except Exception:
            _SHM_AVAILABLE = False
        else:
            block.close()
            block.unlink()
            _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def shard_of(keys: np.ndarray, workers: int) -> np.ndarray:
    """The hash-policy shard of every key: ``mix64(key) % workers``.

    A raw ``key % workers`` would send sequential IP blocks to one
    shard; the splitmix64 finaliser spreads any key structure evenly
    while staying a pure (deterministic) function of the key.
    """
    x = np.asarray(keys, dtype=np.uint64).copy()
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E9B5)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x % np.uint64(workers)).astype(np.int64)


def _range_bounds(n: int, workers: int) -> List[int]:
    return [n * i // workers for i in range(workers + 1)]


def _sketch_params(sketch: UniversalSketch) -> Dict[str, int]:
    """The constructor arguments workers rebuild their sketch from
    (geometry + seed travel instead of a pickled factory, so lambdas
    work under the spawn start method too)."""
    return dict(levels=sketch.num_levels, rows=sketch.rows,
                width=sketch.width, heap_size=sketch.heap_size,
                seed=sketch.seed, counter_bytes=sketch.counter_bytes)


def _merge_tree(sketches: List[UniversalSketch]) -> UniversalSketch:
    """Binary reduction: log2(N) merge rounds, deterministic pairing."""
    while len(sketches) > 1:
        paired = [sketches[i].merge(sketches[i + 1])
                  for i in range(0, len(sketches) - 1, 2)]
        if len(sketches) % 2:
            paired.append(sketches[-1])
        sketches = paired
    return sketches[0]


def _ingest_shard(params: Dict[str, int], keys: np.ndarray,
                  weights: Optional[np.ndarray], shard: int, workers: int,
                  policy: str, chunk_size: int
                  ) -> Tuple[UniversalSketch, IngestReport]:
    """Fold shard ``shard`` of the full stream into a fresh sketch.

    Runs inside the worker process; ``keys``/``weights`` are views over
    the shared-memory blocks (range slices stay zero-copy, hash masks
    copy only the shard's own keys).
    """
    if policy == HASH:
        mask = shard_of(keys, workers) == shard
        keys = keys[mask]
        weights = None if weights is None else weights[mask]
    else:
        bounds = _range_bounds(len(keys), workers)
        lo, hi = bounds[shard], bounds[shard + 1]
        keys = keys[lo:hi]
        weights = None if weights is None else weights[lo:hi]
    sketch = UniversalSketch(**params)
    report = BatchIngest(sketch, chunk_size=chunk_size).ingest_keys(
        keys, weights)
    return sketch, report


def _worker_entry(result_queue, key_block: str, weight_block: Optional[str],
                  n: int, params: Dict[str, int], shard: int, workers: int,
                  policy: str, chunk_size: int) -> None:
    """Worker process body: attach, ingest one shard, post the sealed
    sketch back as serialized bytes (results are pickled once; the key
    arrays themselves never are)."""
    from multiprocessing import shared_memory

    from repro.core import serialization

    key_shm = shared_memory.SharedMemory(name=key_block)
    weight_shm = None if weight_block is None \
        else shared_memory.SharedMemory(name=weight_block)
    keys = weights = None
    try:
        try:
            keys = np.ndarray((n,), dtype=np.uint64, buffer=key_shm.buf)
            if weight_shm is not None:
                weights = np.ndarray((n,), dtype=np.int64,
                                     buffer=weight_shm.buf)
            sketch, report = _ingest_shard(params, keys, weights, shard,
                                           workers, policy, chunk_size)
            result_queue.put(("ok", shard, serialization.dumps(sketch),
                              report.packets, report.chunks,
                              report.seconds))
        except BaseException as exc:  # surfaced as ShardFailureError
            result_queue.put(("error", shard,
                              f"{type(exc).__name__}: {exc}"))
    finally:
        # Drop the numpy views before close(): a mapped buffer with live
        # exports cannot be released.
        keys = weights = None  # noqa: F841
        key_shm.close()
        if weight_shm is not None:
            weight_shm.close()


@dataclass(frozen=True)
class ShardedIngestReport:
    """Outcome of one :meth:`ShardedIngest.ingest_keys` run."""

    sketch: UniversalSketch
    packets: int
    workers: int
    policy: str
    parallel: bool
    seconds: float
    merge_seconds: float
    shards: Tuple[IngestReport, ...]
    fallback_reason: Optional[str] = None

    @property
    def packets_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf") if self.packets else 0.0
        return self.packets / self.seconds


class ShardedIngest:
    """Split a key stream across worker processes and merge the shards.

    Parameters
    ----------
    sketch_factory:
        Produces the per-shard :class:`UniversalSketch`.  Called once in
        the driver to read off geometry + seed (workers rebuild from
        those, so the factory itself never crosses a process boundary);
        an explicit seed is required whenever ``workers > 1`` — seedless
        shards could not merge.
    workers:
        Shard count; defaults to ``os.cpu_count()``.  ``workers == 1``
        runs in-process through :class:`BatchIngest`.
    policy:
        ``"range"`` (contiguous slices, default) or ``"hash"``
        (per-key residue sharding); both partitions are exact by
        linearity, the choice only moves scan cost vs flow affinity.
    chunk_size:
        Per-worker :class:`BatchIngest` chunk size.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        tests exercise both ``"fork"`` and ``"spawn"``).
    timeout:
        Wall-clock budget for the worker phase; a shard still missing
        past it raises :class:`ShardFailureError` (never a hang).
    """

    def __init__(self, sketch_factory: Callable[[], UniversalSketch],
                 workers: Optional[int] = None, policy: str = RANGE,
                 chunk_size: int = 8192,
                 start_method: Optional[str] = None,
                 timeout: float = 300.0,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r} (want one of {_POLICIES})")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        self.sketch_factory = sketch_factory
        self.workers = workers
        self.policy = policy
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.timeout = timeout
        self._clock = clock

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @classmethod
    def like(cls, sketch: UniversalSketch, **kwargs) -> "ShardedIngest":
        """A driver whose shards share ``sketch``'s geometry and seed —
        the result merges exactly into (or replaces) ``sketch``."""
        if not isinstance(sketch, UniversalSketch):
            raise ConfigurationError(
                "ShardedIngest.like needs a UniversalSketch template, got "
                f"{type(sketch).__name__}")
        params = _sketch_params(sketch)
        return cls(lambda: UniversalSketch(**params), **kwargs)

    def ingest_keys(self, keys: np.ndarray,
                    weights: Optional[np.ndarray] = None
                    ) -> ShardedIngestReport:
        """Shard, ingest, and merge a ``uint64`` key stream."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if weights is not None:
            weights = np.ascontiguousarray(
                np.asarray(weights).astype(np.int64, copy=False))
            if len(weights) != len(keys):
                raise ConfigurationError(
                    f"weights length {len(weights)} != keys length "
                    f"{len(keys)}")
        template = self.sketch_factory()
        if not isinstance(template, UniversalSketch):
            raise ConfigurationError(
                "ShardedIngest shards UniversalSketch ingest only, got "
                f"{type(template).__name__}")
        if self.workers > 1 and template.seed is None:
            raise ConfigurationError(
                "sharded ingest needs an explicit sketch seed (equal-seed "
                "shards are what makes the merge exact)")
        reason = None
        if self.workers == 1:
            reason = "workers=1"
        elif len(keys) == 0:
            reason = "empty stream"
        elif not shared_memory_available():
            reason = "no shared memory"
        if reason is not None:
            return self._ingest_in_process(template, keys, weights, reason)
        return self._ingest_parallel(template, keys, weights)

    # ------------------------------------------------------------------ #
    # degraded path
    # ------------------------------------------------------------------ #

    def _ingest_in_process(self, sketch: UniversalSketch, keys: np.ndarray,
                           weights: Optional[np.ndarray],
                           reason: str) -> ShardedIngestReport:
        reg = get_registry()
        reg.counter("univmon_shard_fallbacks_total",
                    help="sharded-ingest runs degraded to in-process "
                         "BatchIngest", reason=reason).inc()
        report = BatchIngest(sketch, chunk_size=self.chunk_size,
                             clock=self._clock).ingest_keys(keys, weights)
        self._record_run(reg, (report,), workers=1)
        return ShardedIngestReport(
            sketch=sketch, packets=report.packets, workers=1,
            policy=self.policy, parallel=False, seconds=report.seconds,
            merge_seconds=0.0, shards=(report,), fallback_reason=reason)

    # ------------------------------------------------------------------ #
    # parallel path
    # ------------------------------------------------------------------ #

    def _ingest_parallel(self, template: UniversalSketch, keys: np.ndarray,
                         weights: Optional[np.ndarray]
                         ) -> ShardedIngestReport:
        import multiprocessing as mp
        from multiprocessing import shared_memory

        from repro.core import serialization

        reg = get_registry()
        ctx = mp.get_context(self.start_method)
        params = _sketch_params(template)
        n = len(keys)
        start = self._clock()

        key_shm = weight_shm = None
        key_view = weight_view = None
        procs: List = []
        try:
            with reg.span("univmon_shard_scatter_seconds",
                          help="copying the stream into shared memory"):
                key_shm = shared_memory.SharedMemory(create=True,
                                                     size=keys.nbytes)
                key_view = np.ndarray((n,), dtype=np.uint64,
                                      buffer=key_shm.buf)
                key_view[:] = keys
                if weights is not None:
                    weight_shm = shared_memory.SharedMemory(
                        create=True, size=weights.nbytes)
                    weight_view = np.ndarray((n,), dtype=np.int64,
                                             buffer=weight_shm.buf)
                    weight_view[:] = weights

            results = ctx.Queue()
            for shard in range(self.workers):
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(results, key_shm.name,
                          None if weight_shm is None else weight_shm.name,
                          n, params, shard, self.workers, self.policy,
                          self.chunk_size),
                    daemon=True)
                procs.append(proc)
                proc.start()
            collected = self._collect(results, procs, reg)
            for proc in procs:
                proc.join(timeout=5.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            key_view = weight_view = None  # noqa: F841  (release exports)
            if key_shm is not None:
                key_shm.close()
                key_shm.unlink()
            if weight_shm is not None:
                weight_shm.close()
                weight_shm.unlink()

        shards = tuple(IngestReport(packets=collected[i][1],
                                    chunks=collected[i][2],
                                    seconds=collected[i][3])
                       for i in range(self.workers))
        if sum(r.packets for r in shards) != n:
            reg.counter("univmon_shard_failures_total",
                        help="sharded-ingest runs that failed").inc()
            raise ShardFailureError(
                f"shards processed {sum(r.packets for r in shards)} of "
                f"{n} packets — the {self.policy} partition dropped data")

        merge_start = self._clock()
        with reg.span("univmon_shard_merge_seconds",
                      help="binary merge-tree reduction of shard sketches"):
            merged = _merge_tree([serialization.loads(collected[i][0])
                                  for i in range(self.workers)])
        merge_seconds = self._clock() - merge_start

        self._record_run(reg, shards, workers=self.workers)
        return ShardedIngestReport(
            sketch=merged, packets=n, workers=self.workers,
            policy=self.policy, parallel=True,
            seconds=self._clock() - start, merge_seconds=merge_seconds,
            shards=shards)

    def _collect(self, results, procs, reg) -> Dict[int, tuple]:
        """Drain one result per worker; any dead or silent shard raises."""
        collected: Dict[int, tuple] = {}
        deadline = time.monotonic() + self.timeout
        while len(collected) < self.workers:
            try:
                item = results.get(timeout=0.2)
            except _queue.Empty:
                dead = [i for i, p in enumerate(procs)
                        if i not in collected
                        and p.exitcode not in (None, 0)]
                if dead:
                    self._fail(reg, f"worker(s) {dead} died with exit "
                               f"code(s) {[procs[i].exitcode for i in dead]}")
                if time.monotonic() > deadline:
                    missing = [i for i in range(self.workers)
                               if i not in collected]
                    self._fail(reg, f"shard(s) {missing} produced no "
                               f"result within {self.timeout:.0f}s")
                continue
            if item[0] == "error":
                self._fail(reg, f"shard {item[1]} failed: {item[2]}")
            collected[item[1]] = item[2:]
        return collected

    def _fail(self, reg, message: str) -> None:
        reg.counter("univmon_shard_failures_total",
                    help="sharded-ingest runs that failed").inc()
        raise ShardFailureError(message)

    def _record_run(self, reg, shards: Tuple[IngestReport, ...],
                    workers: int) -> None:
        reg.counter("univmon_shard_runs_total",
                    help="completed sharded-ingest runs").inc()
        reg.gauge("univmon_shard_workers",
                  help="worker count of the last sharded-ingest run").set(
                      workers)
        for index, report in enumerate(shards):
            reg.counter("univmon_shard_packets_total",
                        help="packets folded in per shard",
                        shard=str(index)).inc(report.packets)
            reg.gauge("univmon_shard_packets_per_second",
                      help="per-shard rate of the last run",
                      shard=str(index)).set(report.packets_per_second)
