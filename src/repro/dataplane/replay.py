"""Timed trace replay — feeding a consumer at (scaled) capture rate.

The CLI's switch agent and any live-ish demo need a trace pushed at
realistic pacing rather than all at once.  :class:`TraceReplayer` walks
a trace in chunks, sleeping so that inter-packet gaps match the capture
timestamps divided by ``speedup``, and invokes a callback per chunk.

Pacing is best-effort (coarse sleeps, no busy-wait): the guarantee is
that a chunk is never delivered *early*, and delivery lag is reported
so callers can detect when they cannot keep up.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.dataplane.trace import Trace


class TraceReplayer:
    """Replay a trace against a callback at scaled capture pacing.

    Parameters
    ----------
    trace:
        The (time-sorted) trace to replay.
    speedup:
        Time compression factor; ``inf`` (or ``0``) replays as fast as
        possible, 1.0 replays in real time, 60 replays an hour-long
        trace in a minute.
    chunk_seconds:
        Capture-time granularity of the callback batches.
    """

    def __init__(self, trace: Trace, speedup: float = float("inf"),
                 chunk_seconds: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if speedup < 0:
            raise ConfigurationError(f"speedup must be >= 0, got {speedup}")
        if chunk_seconds <= 0:
            raise ConfigurationError(
                f"chunk_seconds must be > 0, got {chunk_seconds}")
        self.trace = trace
        self.speedup = speedup if speedup > 0 else float("inf")
        self.chunk_seconds = chunk_seconds
        self._clock = clock
        self._sleep = sleep
        self.max_lag = 0.0
        self.chunks_delivered = 0

    def run(self, consume: Callable[[Trace], None],
            stop: Optional[Callable[[], bool]] = None) -> int:
        """Replay; calls ``consume(chunk)`` per chunk.  Returns packets
        delivered.  ``stop()`` is checked between chunks."""
        trace = self.trace
        if len(trace) == 0:
            return 0
        start_wall = self._clock()
        start_capture = float(trace.timestamps[0])
        delivered = 0
        for chunk in trace.epochs(self.chunk_seconds):
            if stop is not None and stop():
                break
            if len(chunk) == 0:
                self.chunks_delivered += 1
                continue
            if self.speedup != float("inf"):
                due = (float(chunk.timestamps[0]) - start_capture) \
                    / self.speedup
                now = self._clock() - start_wall
                if now < due:
                    self._sleep(due - now)
                else:
                    self.max_lag = max(self.max_lag, now - due)
            consume(chunk)
            delivered += len(chunk)
            self.chunks_delivered += 1
        return delivered
