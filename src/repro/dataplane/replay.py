"""Trace ingest drivers: timed replay and maximum-rate batched ingest.

The CLI's switch agent and any live-ish demo need a trace pushed at
realistic pacing rather than all at once.  :class:`TraceReplayer` walks
a trace in chunks, sleeping so that inter-packet gaps match the capture
timestamps divided by ``speedup``, and invokes a callback per chunk.

Pacing is best-effort (coarse sleeps, no busy-wait): the guarantee is
that a chunk is never delivered *early*, and delivery lag is reported
so callers can detect when they cannot keep up.

:class:`BatchIngest` is the opposite regime: no pacing at all.  It
slices the key stream into fixed-size chunks, feeds each chunk to the
sketch's vectorised bulk path (falling back to the scalar loop for
sketches without one), and reports achieved packets/second — the number
the throughput benchmarks track release over release.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.dataplane.trace import Trace


class TraceReplayer:
    """Replay a trace against a callback at scaled capture pacing.

    Parameters
    ----------
    trace:
        The (time-sorted) trace to replay.
    speedup:
        Time compression factor; ``inf`` (or ``0``) replays as fast as
        possible, 1.0 replays in real time, 60 replays an hour-long
        trace in a minute.
    chunk_seconds:
        Capture-time granularity of the callback batches.
    """

    def __init__(self, trace: Trace, speedup: float = float("inf"),
                 chunk_seconds: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if speedup < 0:
            raise ConfigurationError(f"speedup must be >= 0, got {speedup}")
        if chunk_seconds <= 0:
            raise ConfigurationError(
                f"chunk_seconds must be > 0, got {chunk_seconds}")
        self.trace = trace
        self.speedup = speedup if speedup > 0 else float("inf")
        self.chunk_seconds = chunk_seconds
        self._clock = clock
        self._sleep = sleep
        self.max_lag = 0.0
        self.chunks_delivered = 0

    def run(self, consume: Callable[[Trace], None],
            stop: Optional[Callable[[], bool]] = None) -> int:
        """Replay; calls ``consume(chunk)`` per chunk.  Returns packets
        delivered.  ``stop()`` is checked between chunks."""
        trace = self.trace
        if len(trace) == 0:
            return 0
        start_wall = self._clock()
        start_capture = float(trace.timestamps[0])
        delivered = 0
        for chunk in trace.epochs(self.chunk_seconds):
            if stop is not None and stop():
                break
            if len(chunk) == 0:
                self.chunks_delivered += 1
                continue
            if self.speedup != float("inf"):
                due = (float(chunk.timestamps[0]) - start_capture) \
                    / self.speedup
                now = self._clock() - start_wall
                if now < due:
                    self._sleep(due - now)
                else:
                    self.max_lag = max(self.max_lag, now - due)
            consume(chunk)
            delivered += len(chunk)
            self.chunks_delivered += 1
        return delivered


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one :class:`BatchIngest` run."""

    packets: int
    chunks: int
    seconds: float

    @property
    def packets_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf") if self.packets else 0.0
        return self.packets / self.seconds


class BatchIngest:
    """Feed a key stream to a sketch in fixed-size chunks, as fast as
    the hardware allows.

    Parameters
    ----------
    sketch:
        Any sketch; chunks go through ``update_array`` when available,
        otherwise through the scalar ``update`` loop.
    chunk_size:
        Packets per bulk call.  Bounds peak working-set memory (hash
        matrices are ``rows x chunk_size``) and is the batching knob the
        throughput benchmark sweeps.
    key_function:
        A :class:`~repro.dataplane.keys.KeyFunction`; required by
        :meth:`ingest` (trace input), unused by :meth:`ingest_keys`.
    """

    def __init__(self, sketch, chunk_size: int = 8192,
                 key_function=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.sketch = sketch
        self.chunk_size = chunk_size
        self.key_function = key_function
        self._clock = clock

    def ingest_keys(self, keys: np.ndarray,
                    weights: Optional[np.ndarray] = None) -> IngestReport:
        """Push a ``uint64`` key array through the sketch in chunks."""
        keys = np.asarray(keys, dtype=np.uint64)
        sketch = self.sketch
        bulk = getattr(sketch, "update_array", None)
        reg = get_registry()
        chunks = 0
        start = self._clock()
        for lo in range(0, len(keys), self.chunk_size):
            chunk = keys[lo:lo + self.chunk_size]
            wchunk = None if weights is None \
                else weights[lo:lo + self.chunk_size]
            with reg.span("univmon_ingest_chunk_seconds",
                          help="wall time per ingest chunk"):
                if bulk is not None:
                    bulk(chunk, wchunk)
                elif wchunk is None:
                    for k in chunk.tolist():
                        sketch.update(int(k))
                else:
                    for k, w in zip(chunk.tolist(), wchunk.tolist()):
                        sketch.update(int(k), int(w))
            chunks += 1
        report = IngestReport(packets=len(keys), chunks=chunks,
                              seconds=self._clock() - start)
        reg.counter("univmon_ingest_packets_total",
                    help="packets pushed through BatchIngest").inc(
                        report.packets)
        reg.counter("univmon_ingest_chunks_total",
                    help="chunks pushed through BatchIngest").inc(chunks)
        reg.gauge("univmon_ingest_packets_per_second",
                  help="achieved rate of the last ingest run").set(
                      report.packets_per_second)
        return report

    def ingest(self, trace: Trace,
               weights: Optional[np.ndarray] = None) -> IngestReport:
        """Extract the trace's key column and ingest it."""
        if self.key_function is None:
            raise ConfigurationError(
                "BatchIngest needs a key_function to ingest a trace; "
                "use ingest_keys() for pre-extracted keys")
        return self.ingest_keys(trace.key_array(self.key_function), weights)


class LoopingChunkSource:
    """An endless chunk stream cycled from a finite trace.

    The always-on monitoring service ingests forever but test and demo
    deployments only have a finite trace on disk; this source re-plays
    it in fixed-size row slices, shifting the timestamp column forward
    by one trace-span per wrap so capture time keeps advancing (epoch
    slicing and detection baselines never see time jump backwards).

    Iteration is infinite — callers stop by breaking out (the service's
    ingest loop checks its stop flag between chunks).  ``wraps`` counts
    completed passes over the source trace.
    """

    def __init__(self, trace: Trace, chunk_size: int = 4096) -> None:
        if len(trace) == 0:
            raise ConfigurationError(
                "LoopingChunkSource needs a non-empty trace")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.trace = trace.sorted_by_time()
        self.chunk_size = chunk_size
        self.wraps = 0
        # Span includes one mean inter-packet gap so the first packet of
        # a wrap lands after the last packet of the previous one.
        t = self.trace.timestamps
        span = float(t[-1] - t[0])
        gap = span / max(len(t) - 1, 1)
        self._span = span + max(gap, 1e-9)

    def __iter__(self):
        return self.chunks()

    def chunks(self):
        """Yield row-sliced :class:`Trace` chunks forever."""
        trace = self.trace
        n = len(trace)
        while True:
            offset = self.wraps * self._span
            for lo in range(0, n, self.chunk_size):
                hi = min(lo + self.chunk_size, n)
                yield Trace(trace.timestamps[lo:hi] + offset,
                            trace.src[lo:hi], trace.dst[lo:hi],
                            trace.sport[lo:hi], trace.dport[lo:hi],
                            trace.proto[lo:hi], trace.size[lo:hi])
            self.wraps += 1
