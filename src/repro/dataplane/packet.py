"""Packets and IP 5-tuples.

Addresses are plain integers internally (``uint32`` for IPv4) because the
sketches hash integers; the dotted-quad helpers exist for I/O and display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import TraceFormatError

#: IANA protocol numbers used throughout the traces.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1


def parse_ipv4(text: str) -> int:
    """Dotted-quad string -> uint32 (raises TraceFormatError on junk)."""
    parts = text.split(".")
    if len(parts) != 4:
        raise TraceFormatError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise TraceFormatError(f"bad IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise TraceFormatError(f"bad IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """uint32 -> dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise TraceFormatError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class FiveTuple(NamedTuple):
    """The classic flow identifier."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    @classmethod
    def from_strings(cls, src_ip: str, dst_ip: str, src_port: int,
                     dst_port: int, protocol: int) -> "FiveTuple":
        return cls(parse_ipv4(src_ip), parse_ipv4(dst_ip),
                   int(src_port), int(dst_port), int(protocol))

    def reversed(self) -> "FiveTuple":
        """The reverse direction of the same conversation."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port,
                         self.src_port, self.protocol)

    def __str__(self) -> str:
        return (f"{format_ipv4(self.src_ip)}:{self.src_port} -> "
                f"{format_ipv4(self.dst_ip)}:{self.dst_port} "
                f"proto={self.protocol}")


@dataclass(frozen=True)
class Packet:
    """One observed packet: a 5-tuple, arrival time, and wire size."""

    flow: FiveTuple
    timestamp: float = 0.0
    size: int = 64

    def __post_init__(self) -> None:
        if self.size < 0:
            raise TraceFormatError(f"negative packet size {self.size}")
