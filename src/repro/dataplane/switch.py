"""The monitored switch: sketches attached to a packet stream.

A :class:`MonitoredSwitch` hosts named :class:`SwitchProgram`s (a sketch
plus the key function it monitors).  Processing a trace drives every
program, bulk-vectorised when the sketch supports ``update_array``; the
switch accounts total memory and the op-cost the Intel-PCM substitute
(``repro.eval.cost``) converts to cycles.

The controller (``repro.controlplane``) polls programs at epoch
boundaries — "the controller periodically polls the switch for the sketch
every 5 seconds" — swapping in a fresh sketch per epoch via each
program's factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost
from repro.dataplane.keys import KeyFunction
from repro.dataplane.trace import Trace


@dataclass
class SwitchProgram:
    """One measurement program: a sketch factory bound to a key function.

    Attributes
    ----------
    name:
        Program identifier (unique per switch).
    factory:
        Zero-argument callable producing a fresh sketch for each epoch.
    key_function:
        The flow feature the sketch monitors (e.g. source IP).
    by_bytes:
        Weight updates by packet size instead of packet count — the
        paper's heavy hitter definition ("a fraction of the link
        *capacity*") is byte-denominated.
    """

    name: str
    factory: Callable[[], Sketch]
    key_function: KeyFunction
    by_bytes: bool = False
    sketch: Sketch = field(init=False)
    packets_processed: int = field(init=False, default=0)
    total_cost: UpdateCost = field(init=False,
                                   default_factory=UpdateCost)

    def __post_init__(self) -> None:
        self.sketch = self.factory()

    def reset(self) -> Sketch:
        """Swap in a fresh sketch; return the sealed one (epoch poll)."""
        sealed = self.sketch
        self.sketch = self.factory()
        return sealed


class MonitoredSwitch:
    """A switch running one or more measurement programs."""

    def __init__(self, name: str = "switch") -> None:
        self.name = name
        self._programs: Dict[str, SwitchProgram] = {}
        self.packets_seen = 0
        self._shard_pool = None  # lazy ShardWorkerPool, hot across epochs

    # ------------------------------------------------------------------ #
    # program management
    # ------------------------------------------------------------------ #

    def attach(self, name: str, factory: Callable[[], Sketch],
               key_function: KeyFunction,
               by_bytes: bool = False) -> SwitchProgram:
        """Install a measurement program; returns it."""
        if name in self._programs:
            raise ConfigurationError(
                f"switch {self.name!r} already has a program {name!r}")
        program = SwitchProgram(name=name, factory=factory,
                                key_function=key_function,
                                by_bytes=by_bytes)
        self._programs[name] = program
        return program

    def detach(self, name: str) -> None:
        if name not in self._programs:
            raise ConfigurationError(
                f"switch {self.name!r} has no program {name!r}")
        del self._programs[name]

    def program(self, name: str) -> SwitchProgram:
        try:
            return self._programs[name]
        except KeyError:
            raise ConfigurationError(
                f"switch {self.name!r} has no program {name!r}") from None

    def programs(self) -> List[SwitchProgram]:
        return list(self._programs.values())

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    def process_packet(self, packet) -> None:
        """Per-packet path (used by the network simulator)."""
        self.packets_seen += 1
        for program in self._programs.values():
            key = program.key_function(packet)
            weight = packet.size if program.by_bytes else 1
            program.sketch.update(key, weight)
            program.packets_processed += 1
            program.total_cost = program.total_cost \
                + program.sketch.update_cost()

    def process_trace(self, trace: Trace, workers: int = 1,
                      shard_policy: str = "range") -> None:
        """Bulk path: vectorised when the sketch supports it.

        With ``workers > 1``, programs whose sketch is a seeded
        :class:`~repro.core.universal.UniversalSketch` are fed through
        :class:`~repro.dataplane.parallel.ShardedIngest` — the trace is
        sharded across a switch-held persistent
        :class:`~repro.dataplane.parallel.ShardWorkerPool` (workers stay
        hot across epochs and traces; the pool is geometry-agnostic, so
        one pool serves every program) and the merged result (exact, by
        linearity) is folded into the program's live sketch.  Other
        programs, and platforms without shared memory, silently take the
        in-process path.  :meth:`close` releases the pool.
        """
        import numpy as np
        n = len(trace)
        if n == 0:
            return
        self.packets_seen += n
        for program in self._programs.values():
            keys = trace.key_array(program.key_function)
            weights = trace.size.astype(np.int64) if program.by_bytes \
                else None
            sketch = program.sketch
            if workers > 1 and self._shardable(sketch):
                from repro.dataplane.parallel import ShardedIngest
                result = ShardedIngest.like(
                    sketch, workers=workers, policy=shard_policy,
                    pool=self._ingest_pool(workers)).ingest_keys(
                        keys, weights)
                program.sketch = sketch.merge(result.sketch)
            elif hasattr(sketch, "update_array"):
                if weights is None:
                    sketch.update_array(keys)
                else:
                    sketch.update_array(keys, weights)
            else:
                if weights is None:
                    for key in keys.tolist():
                        sketch.update(int(key))
                else:
                    for key, weight in zip(keys.tolist(), weights.tolist()):
                        sketch.update(int(key), int(weight))
            program.packets_processed += n
            program.total_cost = program.total_cost \
                + sketch.update_cost().scaled(n)

    @staticmethod
    def _shardable(sketch) -> bool:
        """Only seeded universal sketches can shard: the merge that
        reassembles the shards needs equal-seed instances."""
        from repro.core.universal import UniversalSketch
        return isinstance(sketch, UniversalSketch) and sketch.seed is not None

    def _ingest_pool(self, workers: int):
        """The switch's persistent worker pool, rebuilt only when the
        requested worker count changes."""
        from repro.dataplane.parallel import ShardWorkerPool
        pool = self._shard_pool
        if pool is None or pool.workers != workers:
            if pool is not None:
                pool.close()
            pool = self._shard_pool = ShardWorkerPool(workers=workers)
        return pool

    def close(self) -> None:
        """Release the shard worker pool (workers + shared-memory
        slabs).  The switch stays usable; the next sharded
        ``process_trace`` starts a fresh pool."""
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None

    def __enter__(self) -> "MonitoredSwitch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # control-plane interface
    # ------------------------------------------------------------------ #

    def poll(self, name: str) -> Sketch:
        """Retrieve-and-reset one program's sketch (epoch boundary)."""
        return self.program(name).reset()

    def poll_all(self) -> Dict[str, Sketch]:
        return {name: prog.reset() for name, prog in self._programs.items()}

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Total data-plane memory across programs."""
        return sum(p.sketch.memory_bytes() for p in self._programs.values())

    def total_cost(self) -> UpdateCost:
        """Accumulated op counts across programs (the PCM substitute)."""
        total = UpdateCost()
        for program in self._programs.values():
            total = total + program.total_cost
        return total
