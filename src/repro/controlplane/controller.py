"""The UnivMon controller: epoch-driven poll loop over a monitored switch.

Mirrors Figure 2: the data plane (a :class:`MonitoredSwitch` running a
universal-sketch program) is polled every ``epoch_seconds``; the sealed
sketch is handed to every registered estimation app, and the per-epoch
results are collected into :class:`EpochReport`s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import observe_sketch
from repro.obs.metrics import get_registry
from repro.controlplane.apps.base import MonitoringApp
from repro.dataplane.keys import KeyFunction, src_ip_key
from repro.dataplane.switch import MonitoredSwitch
from repro.dataplane.trace import Trace
from repro.core.query import QueryEngine
from repro.core.universal import UniversalSketch


@dataclass
class EpochReport:
    """Everything the control plane learned from one polling interval."""

    epoch_index: int
    start_time: float
    end_time: float
    packets: int
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __getitem__(self, app_name: str) -> Dict[str, Any]:
        return self.results[app_name]


class Controller:
    """Drives the poll loop and fans sealed sketches out to the apps.

    Parameters
    ----------
    sketch_factory:
        Produces the per-epoch universal sketch; defaults to a moderate
        :class:`UniversalSketch` geometry.
    key_function:
        The feature to monitor (the paper's evaluation uses source IP).
    epoch_seconds:
        Polling interval (the paper uses 5 seconds).
    workers:
        Shard each epoch's ingest across this many worker processes
        (sketch linearity makes the shard merge exact; see
        :mod:`repro.dataplane.parallel`).  1 = in-process ingest.
    """

    def __init__(self,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None,
                 key_function: KeyFunction = src_ip_key,
                 epoch_seconds: float = 5.0,
                 switch: Optional[MonitoredSwitch] = None,
                 workers: int = 1) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError(
                f"epoch_seconds must be > 0, got {epoch_seconds}")
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        self.workers = workers
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=12, rows=5, width=2048, heap_size=64, seed=1)
        self.epoch_seconds = epoch_seconds
        self.switch = switch or MonitoredSwitch("s1")
        self.program = self.switch.attach("univmon", sketch_factory,
                                          key_function)
        self._apps: List[MonitoringApp] = []

    def register(self, app: MonitoringApp) -> "Controller":
        """Add an estimation app (chainable)."""
        if any(existing.name == app.name for existing in self._apps):
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self._apps.append(app)
        return self

    @property
    def apps(self) -> List[MonitoringApp]:
        return list(self._apps)

    # ------------------------------------------------------------------ #
    # the poll loop
    # ------------------------------------------------------------------ #

    def run_trace(self, trace: Trace) -> List[EpochReport]:
        """Process a whole trace epoch by epoch; returns all reports."""
        reports = []
        for index, epoch in enumerate(trace.epochs(self.epoch_seconds)):
            reports.append(self.run_epoch(epoch, index))
        return reports

    def run_epoch(self, epoch_trace: Trace, epoch_index: int) -> EpochReport:
        """Feed one epoch through the switch, poll, and estimate."""
        self.ingest(epoch_trace)
        _sealed, report = self.seal_epoch(epoch_index, trace=epoch_trace)
        return report

    # ------------------------------------------------------------------ #
    # the epoch loop, decomposed (reused by repro.service)
    # ------------------------------------------------------------------ #

    def ingest(self, trace: Trace) -> None:
        """Feed packets into the live sketch (no epoch boundary).

        The batch loop calls this once per epoch; the always-on service
        calls it per arriving chunk and seals on a wall-clock timer via
        :meth:`seal_epoch` — same data path, different pacing.
        """
        with get_registry().span(
                "univmon_epoch_ingest_seconds",
                help="wall time feeding one epoch into the switch"):
            self.switch.process_trace(trace, workers=self.workers)

    def seal_epoch(self, epoch_index: int,
                   trace: Optional[Trace] = None) -> tuple:
        """Poll the live sketch (sealing the epoch) and run every app.

        Returns ``(sealed_sketch, EpochReport)`` — callers that need the
        sealed sketch itself (the service publishes its query snapshot)
        get it without a second poll.  ``trace`` is optional: it powers
        the per-epoch timestamps and trace-aware apps (detection zoom /
        recovery); timer-driven callers that do not retain packets pass
        None and those apps degrade as documented.
        """
        sealed = self.switch.poll("univmon")
        report = self.evaluate_sealed(sealed, epoch_index, trace=trace)
        return sealed, report

    def evaluate_sealed(self, sealed, epoch_index: int,
                        trace: Optional[Trace] = None) -> EpochReport:
        """Account one sealed sketch and fan it out to the apps."""
        reg = get_registry()
        observe_sketch(sealed, reg)
        packets = len(trace) if trace is not None \
            else int(getattr(sealed, "packets", 0))
        reg.counter("univmon_epochs_total",
                    help="epochs sealed by the controller").inc()
        reg.counter("univmon_epoch_packets_total",
                    help="packets covered across all sealed epochs").inc(
                        packets)
        reg.gauge("univmon_epoch_packets",
                  help="packets in the last sealed epoch").set(packets)
        # min/max, not [0]/[-1]: traces are not guaranteed time-sorted.
        t0 = float(trace.timestamps.min()) \
            if trace is not None and len(trace) else 0.0
        t1 = float(trace.timestamps.max()) \
            if trace is not None and len(trace) else 0.0
        report = EpochReport(epoch_index=epoch_index, start_time=t0,
                             end_time=t1, packets=packets)
        if self._apps:
            # Materialise the epoch's query snapshot once, up front: every
            # app below reads the sealed (immutable-from-here) sketch, so
            # they all share this build via the version-guarded cache.
            QueryEngine(sealed).warm()
        if trace is not None:
            for app in self._apps:
                # Trace-aware apps (e.g. the detection pipeline, which
                # feeds zoom and reversible sketches from raw packets) get
                # the epoch's trace before estimation; sketch-only apps
                # don't implement the hook.
                observe = getattr(app, "observe_trace", None)
                if observe is not None:
                    observe(trace)
        for app in self._apps:
            with reg.span("univmon_app_seconds",
                          help="per-app estimation latency",
                          app=app.name):
                report.results[app.name] = app.on_sketch(sealed, epoch_index)
        return report

    def reset(self) -> None:
        """Drop cross-epoch app state (trace boundary)."""
        for app in self._apps:
            app.reset()

    def close(self) -> None:
        """Release the switch's persistent shard worker pool (no-op for
        ``workers=1`` controllers that never started one)."""
        self.switch.close()

    def __enter__(self) -> "Controller":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
