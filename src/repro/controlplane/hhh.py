"""Hierarchical heavy hitters over universal sketches (§5
"Multidimensional data").

The discussion section points at hierarchical heavy hitters (Cormode et
al., Zhang et al.) as a UnivMon extension.  The construction here is the
natural one: one universal sketch per prefix granularity (/8, /16, /24,
/32 by default) over the *same* traffic, all queries answered offline.

Reported are the **discounted** hierarchical heavy hitters: a prefix is
an HHH if its traffic *minus the traffic of its reported HHH
descendants* still exceeds the threshold.  Discounting is what keeps the
report non-redundant (an elephant host does not automatically promote
its whole /8 chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.dataplane.keys import src_prefix_key
from repro.dataplane.trace import Trace
from repro.core.gsum import g_core
from repro.core.universal import UniversalSketch

DEFAULT_LADDER = (8, 16, 24, 32)


@dataclass(frozen=True)
class HHHItem:
    """One reported hierarchical heavy hitter."""

    prefix: int
    prefix_len: int
    estimate: float          # the prefix's own estimated traffic
    discounted: float        # after subtracting reported descendants

    def cidr(self) -> str:
        from repro.dataplane.packet import format_ipv4
        return f"{format_ipv4(self.prefix)}/{self.prefix_len}"


class HierarchicalHeavyHitterMonitor:
    """One universal sketch per prefix length of the ladder."""

    def __init__(self, ladder: Sequence[int] = DEFAULT_LADDER,
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None
                 ) -> None:
        if not ladder or list(ladder) != sorted(set(ladder)):
            raise ConfigurationError(
                f"ladder must be strictly increasing, got {ladder}")
        if any(not 0 < p <= 32 for p in ladder):
            raise ConfigurationError(f"prefix lengths must be in (0, 32]")
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=10, rows=5, width=1024, heap_size=64, seed=1)
        self.ladder = tuple(ladder)
        self._keys = {p: src_prefix_key(p) for p in ladder}
        self.sketches: Dict[int, UniversalSketch] = {
            p: sketch_factory() for p in ladder
        }

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    def process_trace(self, trace: Trace) -> None:
        for prefix_len, sketch in self.sketches.items():
            sketch.update_array(trace.key_array(self._keys[prefix_len]))

    def update_packet(self, packet) -> None:
        for prefix_len, sketch in self.sketches.items():
            sketch.update(self._keys[prefix_len](packet))

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #

    def hierarchical_heavy_hitters(self, fraction: float) -> List[HHHItem]:
        """Discounted HHHs above ``fraction`` of total traffic.

        Works bottom-up: report /32 heavy hitters first; at each coarser
        level, subtract the traffic of already-reported descendants from
        the prefix's estimate before thresholding it.
        """
        total = self.sketches[self.ladder[0]].total_weight
        threshold = fraction * total
        reported: List[HHHItem] = []
        # descendant traffic charged to each (prefix value at level) —
        # accumulated as we move up the ladder.
        charged: Dict[Tuple[int, int], float] = {}

        for idx in range(len(self.ladder) - 1, -1, -1):
            prefix_len = self.ladder[idx]
            sketch = self.sketches[prefix_len]
            for key, estimate in g_core(sketch, fraction / 4):
                # fraction/4 pre-filter: candidates must be examined even
                # if their discounted value later falls below threshold.
                discount = charged.get((int(key), prefix_len), 0.0)
                discounted = estimate - discount
                if discounted >= threshold:
                    item = HHHItem(prefix=int(key), prefix_len=prefix_len,
                                   estimate=float(estimate),
                                   discounted=float(discounted))
                    reported.append(item)
                    self._charge_ancestors(charged, item, idx)
        reported.sort(key=lambda item: (-item.discounted, item.prefix_len))
        return reported

    def _charge_ancestors(self, charged: Dict[Tuple[int, int], float],
                          item: HHHItem, ladder_index: int) -> None:
        for idx in range(ladder_index - 1, -1, -1):
            plen = self.ladder[idx]
            shift = 32 - plen
            ancestor = (item.prefix >> shift) << shift
            charged[(ancestor, plen)] = \
                charged.get((ancestor, plen), 0.0) + item.discounted

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.sketches.values())
