"""DDoS victim detection (§3.4 "DDoS").

``g(x) = x**0`` so ``G-sum = F0`` — the number of distinct keys (sources).
"If G-sum is estimated to be larger than k, a specific host is a
potential DDoS victim."
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import estimate_cardinality


class DDoSApp(MonitoringApp):
    """Flag epochs whose distinct-source count exceeds ``threshold_k``."""

    name = "ddos"

    def __init__(self, threshold_k: int) -> None:
        if threshold_k < 1:
            raise ConfigurationError(
                f"threshold_k must be >= 1, got {threshold_k}")
        self.threshold_k = threshold_k

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        distinct = estimate_cardinality(sketch)
        return {
            "distinct_sources": distinct,
            "threshold_k": self.threshold_k,
            "victim": distinct > self.threshold_k,
        }
