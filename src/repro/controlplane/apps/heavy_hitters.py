"""Heavy hitter estimation (§3.4 "Heavy Hitters").

``g(x) = x``; the G-core — the level-0 heavy hitter set filtered at the
threshold — directly yields the flows above an ``alpha`` fraction of the
link, with their (1 ± eps)-approximate frequencies.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import g_core


class HeavyHitterApp(MonitoringApp):
    """Report flows consuming more than ``alpha`` of total traffic."""

    name = "heavy_hitters"

    def __init__(self, alpha: float = 0.005) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0,1), got {alpha}")
        self.alpha = alpha

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        hitters = g_core(sketch, self.alpha)
        return {
            "alpha": self.alpha,
            "threshold": self.alpha * sketch.total_weight,
            "hitters": hitters,
            "keys": [k for k, _ in hitters],
        }
