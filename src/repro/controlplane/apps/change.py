"""Heavy change detection (§3.4 "Change Detection").

Adjacent epoch sketches are subtracted (Count Sketch linearity); the
difference sketch's G-sum with ``g(x)=|x|`` estimates the total change D,
and its G-core yields the keys with ``|delta| >= phi * D``.  The previous
epoch's sketch is stored in the control plane "without impacting online
performance", exactly as the paper describes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import heavy_changes


class ChangeDetectionApp(MonitoringApp):
    """Report heavy-change keys between each epoch and its predecessor."""

    name = "change"

    def __init__(self, phi: float = 0.05) -> None:
        if not 0.0 < phi < 1.0:
            raise ConfigurationError(f"phi must be in (0,1), got {phi}")
        self.phi = phi
        self._previous = None

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        if self._previous is None:
            self._previous = self._retain(sketch)
            return {"changes": [], "total_change": 0.0, "ready": False}
        changes, total = heavy_changes(sketch, self._previous, self.phi)
        self._previous = self._retain(sketch)
        return {
            "phi": self.phi,
            "changes": changes,
            "keys": [k for k, _ in changes],
            "total_change": total,
            "ready": True,
        }

    @staticmethod
    def _retain(sketch):
        """Defensive snapshot of the epoch sketch.

        Holding the live object is an aliasing hazard: if the host
        mutates (or recycles) the sealed sketch after the epoch, the
        next difference is silently computed against corrupted state.
        Duck-typed sketches without ``copy()`` are kept as-is — the
        legacy behaviour, at the caller's own risk.
        """
        copy = getattr(sketch, "copy", None)
        return copy() if copy is not None else sketch

    def reset(self) -> None:
        self._previous = None
