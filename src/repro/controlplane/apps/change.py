"""Heavy change detection (§3.4 "Change Detection").

Adjacent epoch sketches are subtracted (Count Sketch linearity); the
difference sketch's G-sum with ``g(x)=|x|`` estimates the total change D,
and its G-core yields the keys with ``|delta| >= phi * D``.  The previous
epoch's sketch is stored in the control plane "without impacting online
performance", exactly as the paper describes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import heavy_changes


class ChangeDetectionApp(MonitoringApp):
    """Report heavy-change keys between each epoch and its predecessor."""

    name = "change"

    def __init__(self, phi: float = 0.05) -> None:
        if not 0.0 < phi < 1.0:
            raise ConfigurationError(f"phi must be in (0,1), got {phi}")
        self.phi = phi
        self._previous = None

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        if self._previous is None:
            self._previous = sketch
            return {"changes": [], "total_change": 0.0, "ready": False}
        changes, total = heavy_changes(sketch, self._previous, self.phi)
        self._previous = sketch
        return {
            "phi": self.phi,
            "changes": changes,
            "keys": [k for k, _ in changes],
            "total_change": total,
            "ready": True,
        }

    def reset(self) -> None:
        self._previous = None
