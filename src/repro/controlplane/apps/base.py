"""The estimation-app protocol."""

from __future__ import annotations

import abc
from typing import Any, Dict


class MonitoringApp(abc.ABC):
    """One offline estimation function over a polled universal sketch.

    Subclasses set :attr:`name` and implement :meth:`on_sketch`; stateful
    apps (e.g. change detection, which compares adjacent epochs) keep
    their own state across calls.
    """

    name: str = "app"

    @abc.abstractmethod
    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        """Estimate this app's metric from the sealed epoch sketch.

        Returns a flat dict of named results; the controller collects
        them into the epoch report under :attr:`name`.
        """

    def reset(self) -> None:
        """Drop any cross-epoch state (e.g. at trace boundaries)."""
