"""Distinct-count (F0) estimation as a standalone app.

The same ``g(x) = x**0`` estimate the DDoS app thresholds, reported raw —
useful for flow-cardinality dashboards and the Figure 5 error curves.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import estimate_cardinality


class CardinalityApp(MonitoringApp):
    """Report the estimated number of distinct keys per epoch."""

    name = "cardinality"

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        return {"distinct": estimate_cardinality(sketch)}
