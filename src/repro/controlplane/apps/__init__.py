"""Estimation apps: one offline translation function per monitoring task.

Every app consumes the *same* polled universal sketch — that is the
paper's point.  Adding a monitoring task is adding a file here; the data
plane does not change.
"""

from repro.controlplane.apps.base import MonitoringApp

__all__ = ["MonitoringApp"]
